"""SQL planner: lower a parsed SELECT to a physical plan and execute it.

Planning follows the paper's processing strategy for reporting functions
(section 1, "Related Work"): first joins and selections, then the optional
*global* GROUP BY, then — on that output — the reporting functions with
their column-wise partitioning/ordering/windowing, and finally the global
ORDER BY / LIMIT.

Join planning is deliberately modest (the queries at hand join at most a
few tables): WHERE conjuncts are pushed to single-table filters where
possible, cross-table equality conjuncts drive hash joins, everything else
becomes a nested-loop residual.

Two window-execution strategies implement Table 1's comparison:

* ``window_strategy="native"`` (default) — the
  :class:`~repro.sql.window_exec.WindowOperator` (reporting functionality
  inside the engine);
* ``window_strategy="selfjoin"`` — rewrite the reporting function to the
  fig. 2 self-join pattern (single-table queries over dense integer
  positions; honours ``use_index``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import BindError, PlanError, SchemaError, UnsupportedSqlError
from repro.relational.aggregate import AggSpec, HashAggregate
from repro.relational.engine import Database, Result
from repro.relational.expr import And, ColumnRef, Comparison, Expr, col
from repro.relational.join import HashJoin, NestedLoopJoin
from repro.relational.operators import Alias, Filter, Limit, Operator, Project, Sort, TableScan
from repro.sql.ast_nodes import (
    AggregateCall,
    OrderItem,
    SelectItem,
    SelectStmt,
    WindowCall,
)
from repro.sql.parser import parse_select
from repro.sql.patterns import self_join_window
from repro.sql.window_exec import WindowColumnSpec, WindowOperator

__all__ = ["build_plan", "execute_sql", "explain_sql"]


def execute_sql(db: Database, text: str, **options: Any) -> Result:
    """Parse, plan and run a SELECT statement (or UNION ALL compound)."""
    from repro.sql.parser import parse_query

    plan = build_plan(db, parse_query(text), **options)
    return db.run(plan)


def explain_sql(db: Database, text: str, **options: Any) -> str:
    """Plan a statement and render the operator tree (no execution)."""
    from repro.sql.parser import parse_query

    plan = build_plan(db, parse_query(text), **options)
    return plan.explain()


def build_plan(
    db: Database,
    stmt,
    *,
    window_strategy: str = "native",
    use_index: Any = "auto",
    exec_config: Any = None,
) -> Operator:
    """Lower a SELECT (or UNION ALL compound) AST to an operator tree.

    Args:
        exec_config: optional
            :class:`~repro.parallel.config.ExecutionConfig`; when parallel,
            native window operators evaluate their frames through the
            partition-parallel subsystem.  A backend that the health
            registry (:mod:`repro.parallel.health`) has recorded as broken
            — e.g. a process pool that crashed earlier in this process —
            is downgraded to serial execution at plan time, so queries
            self-heal instead of re-triggering the crash path.
    """
    from repro.obs import runtime
    from repro.relational.operators import UnionAll
    from repro.sql.ast_nodes import CompoundSelect

    if window_strategy not in ("native", "selfjoin"):
        raise PlanError(f"unknown window strategy {window_strategy!r}")
    with runtime.get_tracer().span(
        "query.plan", window_strategy=window_strategy
    ):
        return _build_plan(
            db,
            stmt,
            window_strategy=window_strategy,
            use_index=use_index,
            exec_config=exec_config,
        )


def _build_plan(
    db: Database,
    stmt,
    *,
    window_strategy: str,
    use_index: Any,
    exec_config: Any,
) -> Operator:
    from repro.relational.operators import UnionAll
    from repro.sql.ast_nodes import CompoundSelect

    exec_config = _route_exec_config(exec_config)
    if isinstance(stmt, CompoundSelect):
        branches = [
            build_plan(
                db,
                sub,
                window_strategy=window_strategy,
                use_index=use_index,
                exec_config=exec_config,
            )
            for sub in stmt.selects
        ]
        plan: Operator = UnionAll(branches)
        if stmt.order_by:
            keys = []
            for item in stmt.order_by:
                if not _binds(item.expr, plan.schema):
                    raise BindError(
                        f"compound ORDER BY expression {item.expr} does not "
                        "bind to the union's output columns"
                    )
                keys.append((item.expr, item.ascending))
            plan = Sort(plan, keys)
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan
    builder = _Builder(db, stmt, window_strategy, use_index, exec_config)
    return builder.build()


def _route_exec_config(exec_config: Any) -> Any:
    """Self-healing backend routing: avoid pool backends known to be broken.

    Keeps the rest of the configuration (kernel, chunking) intact — only
    the placement changes, so results stay identical.
    """
    if exec_config is None or not getattr(exec_config, "is_parallel", False):
        return exec_config
    from dataclasses import replace

    from repro.parallel import health

    if health.is_broken(exec_config.backend):
        return replace(exec_config, backend="serial")
    return exec_config


def _binds(expr: Expr, schema) -> bool:
    try:
        expr.bind(schema)
        return True
    except SchemaError:
        return False


class _Builder:
    def __init__(
        self,
        db: Database,
        stmt: SelectStmt,
        window_strategy: str,
        use_index: Any,
        exec_config: Any = None,
    ) -> None:
        self.db = db
        self.stmt = stmt
        self.window_strategy = window_strategy
        self.use_index = use_index
        self.exec_config = exec_config

    # -- entry point -------------------------------------------------------------

    def build(self) -> Operator:
        stmt = self.stmt
        plan = self._from_where()
        from_schema = plan.schema

        has_group = bool(stmt.group_by) or bool(stmt.aggregate_calls())
        if has_group:
            plan = self._aggregate(plan)

        window_calls = stmt.window_calls()
        if window_calls and self.window_strategy == "selfjoin":
            return self._selfjoin_query(window_calls)
        window_names: List[str] = []
        if window_calls:
            plan, window_names = self._windows(plan, window_calls)

        plan = self._project(plan, from_schema, has_group, window_names)
        if stmt.distinct:
            from repro.relational.operators import Distinct

            plan = Distinct(plan)
        plan = self._order_limit(plan)
        return plan

    # -- FROM / WHERE --------------------------------------------------------------

    def _from_where(self) -> Operator:
        stmt = self.stmt
        scans: List[Operator] = []
        for t in stmt.tables:
            if t.is_subquery:
                sub = build_plan(
                    self.db,
                    t.subquery,
                    window_strategy="native",
                    use_index=self.use_index,
                    exec_config=self.exec_config,
                )
                scans.append(Alias(sub, t.binding))
            else:
                scans.append(TableScan(self.db.table(t.name), t.binding))
        conjuncts = _split_and(stmt.where)

        # Push single-table conjuncts down to their scan.
        remaining: List[Expr] = []
        for conj in conjuncts:
            pushed = False
            for i, scan in enumerate(scans):
                if _binds(conj, scan.schema):
                    scans[i] = Filter(scan, conj)
                    pushed = True
                    break
            if not pushed:
                remaining.append(conj)

        plan = scans[0]
        for scan in scans[1:]:
            combined = plan.schema.concat(scan.schema)
            applicable = [c for c in remaining if _binds(c, combined)]
            remaining = [c for c in remaining if c not in applicable]
            eq_left: List[Expr] = []
            eq_right: List[Expr] = []
            residual: List[Expr] = []
            for conj in applicable:
                pair = _equi_pair(conj, plan.schema, scan.schema)
                if pair is not None:
                    eq_left.append(pair[0])
                    eq_right.append(pair[1])
                else:
                    residual.append(conj)
            res = And(*residual) if residual else None
            if eq_left:
                plan = HashJoin(plan, scan, eq_left, eq_right, residual=res)
            else:
                plan = NestedLoopJoin(plan, scan, res)
        if remaining:
            leftover = And(*remaining) if len(remaining) > 1 else remaining[0]
            if not _binds(leftover, plan.schema):
                raise BindError(
                    f"WHERE clause references unknown columns: {leftover}"
                )
            plan = Filter(plan, leftover)
        return plan

    # -- GROUP BY / aggregates --------------------------------------------------------

    def _aggregate(self, plan: Operator) -> Operator:
        stmt = self.stmt
        group_outputs: List[Tuple[Expr, str]] = []
        for i, expr in enumerate(stmt.group_by):
            group_outputs.append((expr, _output_name(expr, None, f"group_{i}")))

        agg_specs: List[AggSpec] = []
        for i, item in enumerate(stmt.items):
            if isinstance(item.value, AggregateCall):
                call = item.value
                if call.distinct:
                    raise UnsupportedSqlError("DISTINCT aggregates are not supported")
                name = item.alias or f"{call.func.lower()}_{i}"
                agg_specs.append(AggSpec(call.func, call.arg, name))
            elif isinstance(item.value, WindowCall):
                continue  # evaluated after grouping, over the aggregate output
            elif item.star:
                raise UnsupportedSqlError("SELECT * cannot be combined with GROUP BY")
        plan = HashAggregate(plan, group_outputs, agg_specs)

        if stmt.having is not None:
            if not _binds(stmt.having, plan.schema):
                raise BindError(
                    "HAVING must reference grouping columns or aggregate "
                    "aliases from the select list"
                )
            plan = Filter(plan, stmt.having)
        return plan

    # -- reporting functions -------------------------------------------------------------

    def _windows(self, plan: Operator, calls: Sequence[WindowCall]) -> Tuple[Operator, List[str]]:
        specs: List[WindowColumnSpec] = []
        names: List[str] = []
        used = set(c.qualified_name for c in plan.schema)
        for i, item in enumerate(self.stmt.items):
            if not isinstance(item.value, WindowCall):
                continue
            call = item.value
            name = item.alias or _fresh_name(f"{call.func.lower()}_over_{i}", used)
            used.add(name)
            names.append(name)
            from repro.sql.window_exec import RANKING_FUNCS

            frame = call.over.frame
            window = None
            range_frame = None
            if call.func in RANKING_FUNCS:
                pass
            elif frame is not None and frame.unit == "range":
                range_frame = frame.range_bounds()
            else:
                window = call.over.window()
            specs.append(
                WindowColumnSpec(
                    func=call.func,
                    arg=call.arg,
                    partition_by=call.over.partition_by,
                    order_by=call.over.order_by,
                    window=window,
                    name=name,
                    range_frame=range_frame,
                )
            )
        return WindowOperator(plan, specs, self.exec_config), names

    def _selfjoin_query(self, calls: Sequence[WindowCall]) -> Operator:
        """Table 1's "self join method": fig. 2 instead of the window operator.

        Restricted to the pattern's preconditions: a single table, one
        reporting function ordered by a dense integer position column, and a
        select list of the shape ``pos[, val], agg(val) OVER (...)``.
        """
        stmt = self.stmt
        if len(stmt.tables) != 1 or len(calls) != 1:
            raise UnsupportedSqlError(
                "the self-join strategy supports a single table and a single "
                "reporting function"
            )
        if stmt.where is not None or stmt.group_by or stmt.having is not None:
            raise UnsupportedSqlError(
                "the self-join strategy does not compose with WHERE/GROUP BY"
            )
        call = calls[0]
        over = call.over
        if len(over.order_by) != 1 or not isinstance(over.order_by[0].expr, ColumnRef):
            raise UnsupportedSqlError(
                "the self-join pattern needs ORDER BY a single position column"
            )
        if not over.order_by[0].ascending:
            raise UnsupportedSqlError("the self-join pattern needs an ascending order")
        pos_col = over.order_by[0].expr.name
        if call.arg is None or not isinstance(call.arg, ColumnRef):
            raise UnsupportedSqlError(
                "the self-join pattern needs a plain column argument"
            )
        partition_cols = []
        for p in over.partition_by:
            if not isinstance(p, ColumnRef):
                raise UnsupportedSqlError(
                    "the self-join pattern needs plain partition columns"
                )
            partition_cols.append(p.name)

        # Output name: alias of the window item, or a default.
        out_name = "wval"
        for item in stmt.items:
            if isinstance(item.value, WindowCall) and item.alias:
                out_name = item.alias
        plan = self_join_window(
            self.db,
            stmt.tables[0].name,
            window=over.window(),
            func=call.func,
            pos_col=pos_col,
            val_col=call.arg.name,
            partition_cols=partition_cols,
            use_index=self.use_index,
            output_name=out_name,
        )
        plan = self._order_limit(plan)
        return plan

    # -- projection / ordering ---------------------------------------------------------------

    def _project(
        self,
        plan: Operator,
        from_schema,
        has_group: bool,
        window_names: List[str],
    ) -> Operator:
        stmt = self.stmt
        outputs: List[Tuple[Expr, str]] = []
        w = 0
        for i, item in enumerate(stmt.items):
            if item.star:
                for column in from_schema:
                    outputs.append(
                        (ColumnRef(column.name, column.qualifier), column.name)
                    )
                continue
            if isinstance(item.value, WindowCall):
                outputs.append((col(window_names[w]), window_names[w]))
                w += 1
                continue
            if isinstance(item.value, AggregateCall):
                name = item.alias or f"{item.value.func.lower()}_{i}"
                outputs.append((col(name), name))
                continue
            expr = item.value
            name = _output_name(expr, item.alias, f"col_{i}")
            if has_group:
                # Plain expressions must match a grouping column (by its
                # rendered text) — standard GROUP BY semantics.
                target = _match_group_output(expr, stmt.group_by)
                if target is None:
                    raise BindError(
                        f"select item {expr} is neither aggregated nor in GROUP BY"
                    )
                outputs.append((col(target), name))
            else:
                outputs.append((expr, name))
        # Ensure unique output names.
        seen: dict = {}
        final: List[Tuple[Expr, str]] = []
        for expr, name in outputs:
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[name]}"
            else:
                seen[name] = 0
            final.append((expr, name))
        # Remember the projection inputs so ORDER BY can reach columns that
        # were not projected (standard SQL allows ordering by them).
        self._projection_child = plan
        self._projection_outputs = final
        return Project(plan, final)

    def _order_limit(self, plan: Operator) -> Operator:
        stmt = self.stmt
        if stmt.order_by:
            keys: List[Tuple[Expr, bool]] = []
            hidden: List[Tuple[Expr, bool]] = []
            for item in stmt.order_by:
                expr = item.expr
                if not _binds(expr, plan.schema):
                    # The projection strips qualifiers; a qualified reference
                    # to an output column still orders by it.
                    if isinstance(expr, ColumnRef) and expr.qualifier:
                        bare = ColumnRef(expr.name)
                        if _binds(bare, plan.schema):
                            expr = bare
                if _binds(expr, plan.schema):
                    keys.append((expr, item.ascending))
                    continue
                # Not an output column: sort by a hidden pre-projection
                # column (SQL permits ordering by non-projected columns).
                child = getattr(self, "_projection_child", None)
                if child is not None and _binds(item.expr, child.schema):
                    keys.append((item.expr, item.ascending))
                    hidden.append((item.expr, item.ascending))
                    continue
                raise BindError(
                    f"ORDER BY expression {item.expr} does not bind to the "
                    "query output or its input"
                )
            if hidden:
                plan = self._sort_with_hidden_columns(keys)
            else:
                plan = Sort(plan, keys)
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan

    def _sort_with_hidden_columns(self, keys: List[Tuple[Expr, bool]]) -> Operator:
        """Project visible + hidden sort columns, sort, strip the hidden ones."""
        child = self._projection_child
        outputs = list(self._projection_outputs)
        visible = [name for _, name in outputs]
        extended = list(outputs)
        rewritten_keys: List[Tuple[Expr, bool]] = []
        for i, (expr, asc) in enumerate(keys):
            if _binds(expr, Project(child, outputs).schema):
                rewritten_keys.append((expr, asc))
            else:
                hidden_name = f"__ord_{i}"
                extended.append((expr, hidden_name))
                rewritten_keys.append((col(hidden_name), asc))
        wide = Project(child, extended)
        ordered = Sort(wide, rewritten_keys)
        return Project(ordered, [(col(name), name) for name in visible])


# -- helpers ------------------------------------------------------------------------


def _fresh_name(base: str, used) -> str:
    if base not in used:
        return base
    i = 1
    while f"{base}_{i}" in used:
        i += 1
    return f"{base}_{i}"


def _split_and(expr: Optional[Expr]) -> List[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for item in expr.items:
            out.extend(_split_and(item))
        return out
    return [expr]


def _equi_pair(conj: Expr, left_schema, right_schema) -> Optional[Tuple[Expr, Expr]]:
    """``(left_key, right_key)`` when the conjunct is a cross-side equality."""
    if not (isinstance(conj, Comparison) and conj.op == "="):
        return None
    a, b = conj.left, conj.right
    if _binds(a, left_schema) and _binds(b, right_schema):
        return a, b
    if _binds(b, left_schema) and _binds(a, right_schema):
        return b, a
    return None


def _output_name(expr: Expr, alias: Optional[str], fallback: str) -> str:
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        return expr.name
    return fallback


def _match_group_output(expr: Expr, group_by: Sequence[Expr]) -> Optional[str]:
    text = str(expr)
    for i, g in enumerate(group_by):
        if str(g) == text:
            return _output_name(g, None, f"group_{i}")
        # Allow an unqualified select item to match a qualified group key.
        if isinstance(expr, ColumnRef) and isinstance(g, ColumnRef) and g.name == expr.name:
            return _output_name(g, None, f"group_{i}")
    return None
