"""SQL planner: lower a parsed SELECT to a physical plan and execute it.

Planning follows the paper's processing strategy for reporting functions
(section 1, "Related Work"): first joins and selections, then the optional
*global* GROUP BY, then — on that output — the reporting functions with
their column-wise partitioning/ordering/windowing, and finally the global
ORDER BY / LIMIT.

Since the cost-based optimizer landed, planning is an explicit two-phase
logical→physical split:

1. :func:`build_logical` lowers the AST to a tree of
   :mod:`repro.sql.logical` nodes (binding checks happen here — logical
   schemas mirror the physical operators exactly);
2. :class:`PhysicalPlanner` maps each logical node to a physical
   operator, estimating cardinality and cost per node from the
   :class:`~repro.stats.catalog.StatsCatalog` (annotated as
   ``analyze_est`` so EXPLAIN ANALYZE can show estimated vs. actual).

Two planner modes:

* ``planner="rule"`` (default) — the historical fixed rules: serial
  pipelined window kernels, parallelism exactly as configured.  Estimates
  are still annotated, but never change the plan.
* ``planner="cost"`` — the estimates *choose*: window kernel
  (pipelined vs. vectorized), parallelism placement (a parallel
  ExecutionConfig is dropped when the estimated rows cannot amortize the
  pool), and the multi-window factor-derivation sharing rewrite.  Stale
  or absent statistics degrade every choice back to the rule-based
  default, never to a wrong answer.

Join planning is deliberately modest (the queries at hand join at most a
few tables): WHERE conjuncts are pushed to single-table filters where
possible, cross-table equality conjuncts drive hash joins, everything else
becomes a nested-loop residual.

Two window-execution strategies implement Table 1's comparison:

* ``window_strategy="native"`` (default) — the
  :class:`~repro.sql.window_exec.WindowOperator` (reporting functionality
  inside the engine);
* ``window_strategy="selfjoin"`` — rewrite the reporting function to the
  fig. 2 self-join pattern (single-table queries over dense integer
  positions; honours ``use_index``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import BindError, PlanError, SchemaError, UnsupportedSqlError
from repro.relational.aggregate import AggSpec, HashAggregate
from repro.relational.engine import Database, Result
from repro.relational.expr import And, ColumnRef, Comparison, Expr, col
from repro.relational.join import HashJoin, NestedLoopJoin
from repro.relational.operators import (
    Alias,
    Distinct,
    Filter,
    Limit,
    Operator,
    Project,
    Sort,
    TableScan,
    UnionAll,
)
from repro.sql.ast_nodes import (
    AggregateCall,
    OrderItem,
    SelectItem,
    SelectStmt,
    WindowCall,
)
from repro.sql.logical import (
    LAggregate,
    LAlias,
    LDistinct,
    LFilter,
    LJoin,
    LLimit,
    LPhysical,
    LProject,
    LScan,
    LSort,
    LUnionAll,
    LWindow,
    LogicalNode,
)
from repro.sql.parser import parse_select
from repro.sql.patterns import self_join_window
from repro.sql.window_exec import WindowColumnSpec, WindowOperator
from repro.stats.collect import TableStats
from repro.stats.cost import (
    DEFAULT_SELECTIVITY,
    CostModel,
    predicate_selectivity,
)

__all__ = [
    "build_plan",
    "build_logical",
    "execute_sql",
    "explain_sql",
    "PhysicalPlanner",
]

PLANNER_MODES = ("rule", "cost")


def execute_sql(db: Database, text: str, **options: Any) -> Result:
    """Parse, plan and run a SELECT statement (or UNION ALL compound)."""
    from repro.sql.parser import parse_query

    plan = build_plan(db, parse_query(text), **options)
    return db.run(plan)


def explain_sql(db: Database, text: str, **options: Any) -> str:
    """Plan a statement and render the operator tree (no execution)."""
    from repro.sql.parser import parse_query

    plan = build_plan(db, parse_query(text), **options)
    return plan.explain()


def build_plan(
    db: Database,
    stmt,
    *,
    window_strategy: str = "native",
    use_index: Any = "auto",
    exec_config: Any = None,
    planner: str = "rule",
) -> Operator:
    """Lower a SELECT (or UNION ALL compound) AST to an operator tree.

    Args:
        exec_config: optional
            :class:`~repro.parallel.config.ExecutionConfig`; when parallel,
            native window operators evaluate their frames through the
            partition-parallel subsystem.  A backend that the health
            registry (:mod:`repro.parallel.health`) has recorded as broken
            — e.g. a process pool that crashed earlier in this process —
            is downgraded to serial execution at plan time, so queries
            self-heal instead of re-triggering the crash path.
        planner: ``"rule"`` (fixed rules, the historical behavior) or
            ``"cost"`` (statistics-driven strategy choice; degrades to the
            rule-based choice wherever statistics are absent or stale).
    """
    from repro.obs import runtime

    if window_strategy not in ("native", "selfjoin"):
        raise PlanError(f"unknown window strategy {window_strategy!r}")
    if planner not in PLANNER_MODES:
        raise PlanError(f"unknown planner mode {planner!r}")
    with runtime.get_tracer().span(
        "query.plan", window_strategy=window_strategy, planner=planner
    ):
        return _build_plan(
            db,
            stmt,
            window_strategy=window_strategy,
            use_index=use_index,
            exec_config=exec_config,
            planner=planner,
        )


def _build_plan(
    db: Database,
    stmt,
    *,
    window_strategy: str,
    use_index: Any,
    exec_config: Any,
    planner: str,
) -> Operator:
    exec_config = _route_exec_config(exec_config)
    logical = build_logical(
        db,
        stmt,
        window_strategy=window_strategy,
        use_index=use_index,
        exec_config=exec_config,
    )
    return PhysicalPlanner(db, planner=planner, exec_config=exec_config).lower_root(
        logical
    )


def build_logical(
    db: Database,
    stmt,
    *,
    window_strategy: str = "native",
    use_index: Any = "auto",
    exec_config: Any = None,
) -> LogicalNode:
    """Phase 1: lower the AST to a logical plan (no execution state)."""
    from repro.sql.ast_nodes import CompoundSelect

    if isinstance(stmt, CompoundSelect):
        branches = [
            build_logical(
                db,
                sub,
                window_strategy=window_strategy,
                use_index=use_index,
                exec_config=exec_config,
            )
            for sub in stmt.selects
        ]
        node: LogicalNode = LUnionAll(branches)
        if stmt.order_by:
            keys = []
            for item in stmt.order_by:
                if not _binds(item.expr, node.schema):
                    raise BindError(
                        f"compound ORDER BY expression {item.expr} does not "
                        "bind to the union's output columns"
                    )
                keys.append((item.expr, item.ascending))
            node = LSort(node, keys)
        if stmt.limit is not None:
            node = LLimit(node, stmt.limit)
        return node
    builder = _LogicalBuilder(db, stmt, window_strategy, use_index, exec_config)
    return builder.build()


def _route_exec_config(exec_config: Any) -> Any:
    """Self-healing backend routing: avoid pool backends known to be broken.

    Keeps the rest of the configuration (kernel, chunking) intact — only
    the placement changes, so results stay identical.
    """
    if exec_config is None or not getattr(exec_config, "is_parallel", False):
        return exec_config
    from dataclasses import replace

    from repro.parallel import health

    if health.is_broken(exec_config.backend):
        return replace(exec_config, backend="serial")
    return exec_config


def _binds(expr: Expr, schema) -> bool:
    try:
        expr.bind(schema)
        return True
    except SchemaError:
        return False


class _LogicalBuilder:
    """Lower one SELECT statement to a logical plan."""

    def __init__(
        self,
        db: Database,
        stmt: SelectStmt,
        window_strategy: str,
        use_index: Any,
        exec_config: Any = None,
    ) -> None:
        self.db = db
        self.stmt = stmt
        self.window_strategy = window_strategy
        self.use_index = use_index
        self.exec_config = exec_config

    # -- entry point -------------------------------------------------------------

    def build(self) -> LogicalNode:
        stmt = self.stmt
        plan = self._from_where()
        from_schema = plan.schema

        has_group = bool(stmt.group_by) or bool(stmt.aggregate_calls())
        if has_group:
            plan = self._aggregate(plan)

        window_calls = stmt.window_calls()
        if window_calls and self.window_strategy == "selfjoin":
            return self._selfjoin_query(window_calls)
        window_names: List[str] = []
        if window_calls:
            plan, window_names = self._windows(plan, window_calls)

        plan = self._project(plan, from_schema, has_group, window_names)
        if stmt.distinct:
            plan = LDistinct(plan)
        plan = self._order_limit(plan)
        return plan

    # -- FROM / WHERE --------------------------------------------------------------

    def _from_where(self) -> LogicalNode:
        stmt = self.stmt
        scans: List[LogicalNode] = []
        for t in stmt.tables:
            if t.is_subquery:
                sub = build_logical(
                    self.db,
                    t.subquery,
                    window_strategy="native",
                    use_index=self.use_index,
                    exec_config=self.exec_config,
                )
                scans.append(LAlias(sub, t.binding))
            else:
                scans.append(LScan(self.db.table(t.name), t.binding))
        conjuncts = _split_and(stmt.where)

        # Push single-table conjuncts down to their scan.
        remaining: List[Expr] = []
        for conj in conjuncts:
            pushed = False
            for i, scan in enumerate(scans):
                if _binds(conj, scan.schema):
                    scans[i] = LFilter(scan, conj)
                    pushed = True
                    break
            if not pushed:
                remaining.append(conj)

        plan = scans[0]
        for scan in scans[1:]:
            combined = plan.schema.concat(scan.schema)
            applicable = [c for c in remaining if _binds(c, combined)]
            remaining = [c for c in remaining if c not in applicable]
            eq_left: List[Expr] = []
            eq_right: List[Expr] = []
            residual: List[Expr] = []
            for conj in applicable:
                pair = _equi_pair(conj, plan.schema, scan.schema)
                if pair is not None:
                    eq_left.append(pair[0])
                    eq_right.append(pair[1])
                else:
                    residual.append(conj)
            res = And(*residual) if residual else None
            if eq_left:
                plan = LJoin(
                    plan,
                    scan,
                    algorithm="hash",
                    eq_left=eq_left,
                    eq_right=eq_right,
                    residual=res,
                )
            else:
                plan = LJoin(plan, scan, algorithm="nested", residual=res)
        if remaining:
            leftover = And(*remaining) if len(remaining) > 1 else remaining[0]
            if not _binds(leftover, plan.schema):
                raise BindError(
                    f"WHERE clause references unknown columns: {leftover}"
                )
            plan = LFilter(plan, leftover)
        return plan

    # -- GROUP BY / aggregates --------------------------------------------------------

    def _aggregate(self, plan: LogicalNode) -> LogicalNode:
        stmt = self.stmt
        group_outputs: List[Tuple[Expr, str]] = []
        for i, expr in enumerate(stmt.group_by):
            group_outputs.append((expr, _output_name(expr, None, f"group_{i}")))

        agg_specs: List[AggSpec] = []
        for i, item in enumerate(stmt.items):
            if isinstance(item.value, AggregateCall):
                call = item.value
                if call.distinct:
                    raise UnsupportedSqlError("DISTINCT aggregates are not supported")
                name = item.alias or f"{call.func.lower()}_{i}"
                agg_specs.append(AggSpec(call.func, call.arg, name))
            elif isinstance(item.value, WindowCall):
                continue  # evaluated after grouping, over the aggregate output
            elif item.star:
                raise UnsupportedSqlError("SELECT * cannot be combined with GROUP BY")
        plan = LAggregate(plan, group_outputs, agg_specs)

        if stmt.having is not None:
            if not _binds(stmt.having, plan.schema):
                raise BindError(
                    "HAVING must reference grouping columns or aggregate "
                    "aliases from the select list"
                )
            plan = LFilter(plan, stmt.having)
        return plan

    # -- reporting functions -------------------------------------------------------------

    def _windows(
        self, plan: LogicalNode, calls: Sequence[WindowCall]
    ) -> Tuple[LogicalNode, List[str]]:
        from repro.sql.window_exec import RANKING_FUNCS

        specs: List[WindowColumnSpec] = []
        names: List[str] = []
        used = set(c.qualified_name for c in plan.schema)
        for i, item in enumerate(self.stmt.items):
            if not isinstance(item.value, WindowCall):
                continue
            call = item.value
            name = item.alias or _fresh_name(f"{call.func.lower()}_over_{i}", used)
            used.add(name)
            names.append(name)

            frame = call.over.frame
            window = None
            range_frame = None
            if call.func in RANKING_FUNCS:
                pass
            elif frame is not None and frame.unit == "range":
                range_frame = frame.range_bounds()
            else:
                window = call.over.window()
            specs.append(
                WindowColumnSpec(
                    func=call.func,
                    arg=call.arg,
                    partition_by=call.over.partition_by,
                    order_by=call.over.order_by,
                    window=window,
                    name=name,
                    range_frame=range_frame,
                )
            )
        return LWindow(plan, specs), names

    def _selfjoin_query(self, calls: Sequence[WindowCall]) -> LogicalNode:
        """Table 1's "self join method": fig. 2 instead of the window operator.

        Restricted to the pattern's preconditions: a single table, one
        reporting function ordered by a dense integer position column, and a
        select list of the shape ``pos[, val], agg(val) OVER (...)``.

        The pattern is built directly as a physical tree (it *is* a
        physical rewrite) and enters the logical plan through
        :class:`LPhysical`.
        """
        stmt = self.stmt
        if len(stmt.tables) != 1 or len(calls) != 1:
            raise UnsupportedSqlError(
                "the self-join strategy supports a single table and a single "
                "reporting function"
            )
        if stmt.where is not None or stmt.group_by or stmt.having is not None:
            raise UnsupportedSqlError(
                "the self-join strategy does not compose with WHERE/GROUP BY"
            )
        call = calls[0]
        over = call.over
        if len(over.order_by) != 1 or not isinstance(over.order_by[0].expr, ColumnRef):
            raise UnsupportedSqlError(
                "the self-join pattern needs ORDER BY a single position column"
            )
        if not over.order_by[0].ascending:
            raise UnsupportedSqlError("the self-join pattern needs an ascending order")
        pos_col = over.order_by[0].expr.name
        if call.arg is None or not isinstance(call.arg, ColumnRef):
            raise UnsupportedSqlError(
                "the self-join pattern needs a plain column argument"
            )
        partition_cols = []
        for p in over.partition_by:
            if not isinstance(p, ColumnRef):
                raise UnsupportedSqlError(
                    "the self-join pattern needs plain partition columns"
                )
            partition_cols.append(p.name)

        # Output name: alias of the window item, or a default.
        out_name = "wval"
        for item in stmt.items:
            if isinstance(item.value, WindowCall) and item.alias:
                out_name = item.alias
        pattern = self_join_window(
            self.db,
            stmt.tables[0].name,
            window=over.window(),
            func=call.func,
            pos_col=pos_col,
            val_col=call.arg.name,
            partition_cols=partition_cols,
            use_index=self.use_index,
            output_name=out_name,
        )
        plan: LogicalNode = LPhysical(pattern, note="self-join fig.2")
        plan = self._order_limit(plan)
        return plan

    # -- projection / ordering ---------------------------------------------------------------

    def _project(
        self,
        plan: LogicalNode,
        from_schema,
        has_group: bool,
        window_names: List[str],
    ) -> LogicalNode:
        stmt = self.stmt
        outputs: List[Tuple[Expr, str]] = []
        w = 0
        for i, item in enumerate(stmt.items):
            if item.star:
                for column in from_schema:
                    outputs.append(
                        (ColumnRef(column.name, column.qualifier), column.name)
                    )
                continue
            if isinstance(item.value, WindowCall):
                outputs.append((col(window_names[w]), window_names[w]))
                w += 1
                continue
            if isinstance(item.value, AggregateCall):
                name = item.alias or f"{item.value.func.lower()}_{i}"
                outputs.append((col(name), name))
                continue
            expr = item.value
            name = _output_name(expr, item.alias, f"col_{i}")
            if has_group:
                # Plain expressions must match a grouping column (by its
                # rendered text) — standard GROUP BY semantics.
                target = _match_group_output(expr, stmt.group_by)
                if target is None:
                    raise BindError(
                        f"select item {expr} is neither aggregated nor in GROUP BY"
                    )
                outputs.append((col(target), name))
            else:
                outputs.append((expr, name))
        # Ensure unique output names.
        seen: dict = {}
        final: List[Tuple[Expr, str]] = []
        for expr, name in outputs:
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[name]}"
            else:
                seen[name] = 0
            final.append((expr, name))
        # Remember the projection inputs so ORDER BY can reach columns that
        # were not projected (standard SQL allows ordering by them).
        self._projection_child = plan
        self._projection_outputs = final
        return LProject(plan, final)

    def _order_limit(self, plan: LogicalNode) -> LogicalNode:
        stmt = self.stmt
        if stmt.order_by:
            keys: List[Tuple[Expr, bool]] = []
            hidden: List[Tuple[Expr, bool]] = []
            for item in stmt.order_by:
                expr = item.expr
                if not _binds(expr, plan.schema):
                    # The projection strips qualifiers; a qualified reference
                    # to an output column still orders by it.
                    if isinstance(expr, ColumnRef) and expr.qualifier:
                        bare = ColumnRef(expr.name)
                        if _binds(bare, plan.schema):
                            expr = bare
                if _binds(expr, plan.schema):
                    keys.append((expr, item.ascending))
                    continue
                # Not an output column: sort by a hidden pre-projection
                # column (SQL permits ordering by non-projected columns).
                child = getattr(self, "_projection_child", None)
                if child is not None and _binds(item.expr, child.schema):
                    keys.append((item.expr, item.ascending))
                    hidden.append((item.expr, item.ascending))
                    continue
                raise BindError(
                    f"ORDER BY expression {item.expr} does not bind to the "
                    "query output or its input"
                )
            if hidden:
                plan = self._sort_with_hidden_columns(keys)
            else:
                plan = LSort(plan, keys)
        if stmt.limit is not None:
            plan = LLimit(plan, stmt.limit)
        return plan

    def _sort_with_hidden_columns(
        self, keys: List[Tuple[Expr, bool]]
    ) -> LogicalNode:
        """Project visible + hidden sort columns, sort, strip the hidden ones."""
        child = self._projection_child
        outputs = list(self._projection_outputs)
        visible = [name for _, name in outputs]
        extended = list(outputs)
        rewritten_keys: List[Tuple[Expr, bool]] = []
        for i, (expr, asc) in enumerate(keys):
            if _binds(expr, LProject(child, outputs).schema):
                rewritten_keys.append((expr, asc))
            else:
                hidden_name = f"__ord_{i}"
                extended.append((expr, hidden_name))
                rewritten_keys.append((col(hidden_name), asc))
        wide = LProject(child, extended)
        ordered = LSort(wide, rewritten_keys)
        return LProject(ordered, [(col(name), name) for name in visible])


# -- phase 2: physical lowering + costing -------------------------------------------


@dataclass
class _Est:
    """Running estimate while lowering: output rows, cumulative cost,
    whether every contributing base table had *fresh* statistics (the
    cost planner only acts when True), and — for single-table subtrees —
    the base table's statistics for selectivity/NDV lookups."""

    rows: float
    cost: float
    fresh: bool
    table: Optional[TableStats] = None


class PhysicalPlanner:
    """Phase 2: logical → physical, with per-node cost annotation.

    Every lowered operator gets an ``analyze_est`` dict
    (``{"est_rows": int, "est_cost": float}``) that EXPLAIN ANALYZE
    renders next to the probe's actuals.  Strategy decisions (recorded in
    ``planner_notes`` on the root) only deviate from the rule-based
    defaults under ``planner="cost"`` *and* fresh statistics.
    """

    def __init__(
        self, db: Database, *, planner: str = "rule", exec_config: Any = None
    ) -> None:
        self.db = db
        self.mode = planner
        self.exec_config = exec_config
        self.cost_model = CostModel(db.stats.adaptive)
        self.notes: List[str] = []

    def lower_root(self, node: LogicalNode) -> Operator:
        op, _est = self._lower(node)
        op.planner_mode = self.mode
        op.planner_notes = list(self.notes)
        return op

    # -- dispatch ------------------------------------------------------------

    def _lower(self, node: LogicalNode) -> Tuple[Operator, _Est]:
        method = getattr(self, f"_lower_{type(node).__name__}", None)
        if method is None:  # pragma: no cover - exhaustive dispatch
            raise PlanError(f"no lowering for logical node {type(node).__name__}")
        op, est = method(node)
        rows = max(int(round(est.rows)), 0)
        op.analyze_est = {"est_rows": rows, "est_cost": round(est.cost, 1)}
        return op, est

    # -- leaves --------------------------------------------------------------

    def _lower_LScan(self, node: LScan) -> Tuple[Operator, _Est]:
        stats = self.db.stats.get(node.table.name)
        rows = float(stats.row_count) if stats is not None else float(len(node.table))
        fresh = self.db.stats.fresh(node.table) is not None
        op = TableScan(node.table, node.binding)
        # Paged (v4) tables pay per-page fault-in on top of the per-row
        # cost, so the planner prefers plans touching fewer pages.
        pages = (
            float(getattr(node.table, "pages_total", 0))
            if getattr(node.table, "is_paged", False)
            else 0.0
        )
        return op, _Est(
            rows, self.cost_model.scan_cost(rows, pages=pages), fresh, stats
        )

    def _lower_LPhysical(self, node: LPhysical) -> Tuple[Operator, _Est]:
        rows = float(_pattern_rows(node.plan))
        # Pattern subtrees are opaque to the cost model: nominal cost,
        # never fresh (no cost-based decision applies inside them).
        return node.plan, _Est(rows, self.cost_model.scan_cost(rows), False)

    # -- unary relational nodes ----------------------------------------------

    def _lower_LAlias(self, node: LAlias) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        return Alias(child, node.alias), est

    def _lower_LFilter(self, node: LFilter) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        sel = predicate_selectivity(node.predicate, est.table)
        rows = est.rows * sel
        cost = est.cost + self.cost_model.filter_cost(est.rows)
        return Filter(child, node.predicate), _Est(rows, cost, est.fresh, est.table)

    def _lower_LProject(self, node: LProject) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        cost = est.cost + self.cost_model.project_cost(est.rows)
        # Projection renames break the column->stats mapping.
        return Project(child, node.outputs), _Est(est.rows, cost, est.fresh)

    def _lower_LDistinct(self, node: LDistinct) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        cost = est.cost + self.cost_model.distinct_cost(est.rows)
        return Distinct(child), _Est(est.rows, cost, est.fresh)

    def _lower_LSort(self, node: LSort) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        cost = est.cost + self.cost_model.sort_cost(est.rows)
        return Sort(child, node.keys), _Est(est.rows, cost, est.fresh, est.table)

    def _lower_LLimit(self, node: LLimit) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        rows = min(est.rows, float(node.limit))
        return (
            Limit(child, node.limit, node.offset),
            _Est(rows, est.cost, est.fresh, est.table),
        )

    def _lower_LAggregate(self, node: LAggregate) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        if not node.group_outputs:
            groups = 1.0
        else:
            groups = _ndv_product(
                (expr for expr, _ in node.group_outputs), est.table
            )
            if groups is None:
                # Unknown grouping cardinality: the square-root heuristic.
                groups = max(1.0, est.rows**0.5)
            groups = min(groups, max(est.rows, 1.0))
        cost = est.cost + self.cost_model.aggregate_cost(est.rows)
        op = HashAggregate(child, node.group_outputs, node.agg_specs)
        return op, _Est(groups, cost, est.fresh)

    # -- joins / unions ------------------------------------------------------

    def _lower_LJoin(self, node: LJoin) -> Tuple[Operator, _Est]:
        left, lest = self._lower(node.left)
        right, rest = self._lower(node.right)
        fresh = lest.fresh and rest.fresh
        product = lest.rows * rest.rows
        if node.algorithm == "hash":
            ndv_l = _ndv_product(node.eq_left, lest.table)
            ndv_r = _ndv_product(node.eq_right, rest.table)
            denom = max(ndv_l or 1.0, ndv_r or 1.0)
            rows = product / max(denom, 1.0)
            if node.residual is not None:
                rows *= DEFAULT_SELECTIVITY
            cost = (
                lest.cost
                + rest.cost
                + self.cost_model.hash_join_cost(lest.rows, rest.rows)
            )
            op: Operator = HashJoin(
                left, right, node.eq_left, node.eq_right, residual=node.residual
            )
        else:
            rows = product * (DEFAULT_SELECTIVITY if node.residual is not None else 1.0)
            cost = (
                lest.cost
                + rest.cost
                + self.cost_model.nested_join_cost(lest.rows, rest.rows)
            )
            op = NestedLoopJoin(left, right, node.residual)
        return op, _Est(rows, cost, fresh)

    def _lower_LUnionAll(self, node: LUnionAll) -> Tuple[Operator, _Est]:
        branches = []
        rows = cost = 0.0
        fresh = True
        for branch in node.branches:
            op, est = self._lower(branch)
            branches.append(op)
            rows += est.rows
            cost += est.cost
            fresh = fresh and est.fresh
        return UnionAll(branches), _Est(rows, cost, fresh)

    # -- the window operator: where the cost model earns its keep -------------

    def _lower_LWindow(self, node: LWindow) -> Tuple[Operator, _Est]:
        child, est = self._lower(node.child)
        rows = est.rows
        specs = node.specs
        cm = self.cost_model

        parallel_ok = self.exec_config is not None and getattr(
            self.exec_config, "is_parallel", False
        )
        jobs = self.exec_config.jobs if parallel_ok else 1
        groups = self._estimate_groups(specs, est)
        # The vectorized route is admissible only when it is bit-identical
        # to the pipelined kernel: MIN/MAX (comparisons only) and COUNT
        # (integer-exact).  SUM/AVG would reorder float summation, and a
        # cost-based plan must never change results.
        vector_ok = all(
            not s.is_ranking
            and not s.is_range
            and s.window is not None
            and s.func in ("MIN", "MAX", "COUNT")
            for s in specs
        )

        def total(strategy: str) -> float:
            out = 0.0
            for spec in specs:
                width = _spec_width(spec)
                if strategy == "vectorized" and spec.func in ("MIN", "MAX") and (
                    spec.window is not None and spec.window.is_sliding
                ):
                    # The strided MIN/MAX kernel does O(n·w) comparisons.
                    out += cm.window_cost("vectorized", rows * width)
                else:
                    out += cm.window_cost(
                        strategy, rows, width=width, jobs=jobs, groups=groups
                    )
            return out

        kernel = "pipelined"
        share = False
        op_config = self.exec_config
        chosen = "parallel" if parallel_ok else "pipelined"
        if self.mode == "cost" and est.fresh:
            share = True
            candidates = {"pipelined": total("pipelined")}
            if vector_ok:
                candidates["vectorized"] = total("vectorized")
            if parallel_ok:
                candidates["parallel"] = total("parallel")
            chosen = min(
                candidates, key=lambda s: (candidates[s], s != "pipelined")
            )
            if chosen == "vectorized":
                kernel = "vectorized"
                op_config = None
            elif chosen == "pipelined":
                # Includes the parallel->serial downgrade for small inputs.
                op_config = None
            wcost = candidates[chosen]
            self.notes.append(
                f"window[{','.join(s.name for s in specs)}]: {chosen} "
                f"(est_rows={int(rows)}, est_groups={int(groups)}, "
                f"est_cost={wcost:.1f}, "
                f"alternatives={ {k: round(v, 1) for k, v in candidates.items()} })"
            )
        else:
            wcost = total(chosen)
            if self.mode == "cost":
                self.notes.append(
                    f"window[{','.join(s.name for s in specs)}]: {chosen} "
                    "(rule fallback: statistics absent or stale)"
                )
        op = WindowOperator(
            child, specs, op_config, kernel=kernel, share_derivation=share
        )
        return op, _Est(rows, est.cost + wcost, est.fresh, est.table)

    def _estimate_groups(self, specs, est: _Est) -> float:
        """Estimated PARTITION BY group count (max over the window specs)."""
        worst = 1.0
        for spec in specs:
            if not spec.partition_by:
                continue
            ndv = _ndv_product(spec.partition_by, est.table)
            if ndv is None:
                ndv = max(1.0, est.rows**0.5)
            worst = max(worst, min(ndv, max(est.rows, 1.0)))
        return worst


def _spec_width(spec: WindowColumnSpec) -> float:
    if spec.window is not None and spec.window.is_sliding:
        return float(spec.window.width)
    return 1.0


def _ndv_product(exprs, table_stats: Optional[TableStats]) -> Optional[float]:
    """Product of the NDVs of plain column references; None when unknown."""
    if table_stats is None:
        return None
    product = 1.0
    for expr in exprs:
        if not isinstance(expr, ColumnRef):
            return None
        col_stats = table_stats.column(expr.name)
        if col_stats is None:
            return None
        product *= max(col_stats.ndv, 1)
    return product


def _pattern_rows(plan: Operator) -> int:
    """Row estimate for an opaque pattern subtree: its largest base table."""
    best = 0
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, TableScan):
            best = max(best, len(node.table))
        stack.extend(node.children())
    return best


# -- helpers ------------------------------------------------------------------------


def _fresh_name(base: str, used) -> str:
    if base not in used:
        return base
    i = 1
    while f"{base}_{i}" in used:
        i += 1
    return f"{base}_{i}"


def _split_and(expr: Optional[Expr]) -> List[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for item in expr.items:
            out.extend(_split_and(item))
        return out
    return [expr]


def _equi_pair(conj: Expr, left_schema, right_schema) -> Optional[Tuple[Expr, Expr]]:
    """``(left_key, right_key)`` when the conjunct is a cross-side equality."""
    if not (isinstance(conj, Comparison) and conj.op == "="):
        return None
    a, b = conj.left, conj.right
    if _binds(a, left_schema) and _binds(b, right_schema):
        return a, b
    if _binds(b, left_schema) and _binds(a, right_schema):
        return b, a
    return None


def _output_name(expr: Expr, alias: Optional[str], fallback: str) -> str:
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        return expr.name
    return fallback


def _match_group_output(expr: Expr, group_by: Sequence[Expr]) -> Optional[str]:
    text = str(expr)
    for i, g in enumerate(group_by):
        if str(g) == text:
            return _output_name(g, None, f"group_{i}")
        # Allow an unqualified select item to match a qualified group key.
        if isinstance(expr, ColumnRef) and isinstance(g, ColumnRef) and g.name == expr.name:
            return _output_name(g, None, f"group_{i}")
    return None
