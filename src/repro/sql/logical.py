"""Logical plan nodes: the optimizer's side of the logical→physical split.

The SQL builder (:mod:`repro.sql.planner`) lowers a SELECT to a tree of
these nodes first; the :class:`~repro.sql.planner.PhysicalPlanner` then
maps each logical node to a physical operator, estimating cardinalities
and costs along the way and — under ``planner="cost"`` — choosing the
window execution strategy, the parallelism placement, and the sharing
rewrites from those estimates.

Logical nodes know their output *schema* (needed for binding checks while
the statement is being built) but carry no execution state: the same
logical tree can be lowered under different planner modes.  Schema rules
mirror the physical operators exactly — a logical plan that binds lowers
to a physical plan that binds.

:class:`LPhysical` is the escape hatch for patterns that are built
directly as physical trees (the fig. 2 self-join rewrite).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.relational.aggregate import AggSpec, _group_type
from repro.relational.expr import Expr
from repro.relational.operators import Operator, _infer_type
from repro.relational.schema import Column, Schema
from repro.relational.types import FLOAT
from repro.sql.window_exec import WindowColumnSpec

__all__ = [
    "LogicalNode",
    "LScan",
    "LAlias",
    "LFilter",
    "LJoin",
    "LAggregate",
    "LWindow",
    "LProject",
    "LDistinct",
    "LSort",
    "LLimit",
    "LUnionAll",
    "LPhysical",
    "explain_logical",
]


class LogicalNode:
    """Base class: children + a computed output schema + a display label."""

    schema: Schema

    def children(self) -> Sequence["LogicalNode"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class LScan(LogicalNode):
    """Base-table access path."""

    def __init__(self, table, binding: Optional[str] = None) -> None:
        self.table = table
        self.binding = binding
        self.schema = table.schema.qualify(binding)

    def label(self) -> str:
        alias = f" AS {self.binding}" if self.binding else ""
        return f"LScan({self.table.name}{alias})"


class LAlias(LogicalNode):
    """Re-qualify a derived table (subquery in FROM) under its binding."""

    def __init__(self, child: LogicalNode, alias: str) -> None:
        self.child = child
        self.alias = alias
        self.schema = Schema(
            [Column(c.name, c.type, alias) for c in child.schema]
        )

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"LAlias({self.alias})"


class LFilter(LogicalNode):
    """Predicate over the child's rows (WHERE / HAVING / pushdown)."""

    def __init__(self, child: LogicalNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"LFilter({self.predicate})"


class LJoin(LogicalNode):
    """Binary join; ``algorithm`` is "hash" (equi keys) or "nested"."""

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        *,
        algorithm: str,
        eq_left: Sequence[Expr] = (),
        eq_right: Sequence[Expr] = (),
        residual: Optional[Expr] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.algorithm = algorithm
        self.eq_left = list(eq_left)
        self.eq_right = list(eq_right)
        self.residual = residual
        self.schema = left.schema.concat(right.schema)

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def label(self) -> str:
        if self.algorithm == "hash":
            keys = ", ".join(
                f"{l} = {r}" for l, r in zip(self.eq_left, self.eq_right)
            )
            return f"LJoin(hash: {keys})"
        return f"LJoin(nested: {self.residual})"


class LAggregate(LogicalNode):
    """Global GROUP BY: grouping outputs plus aggregate columns."""

    def __init__(
        self,
        child: LogicalNode,
        group_outputs: Sequence[Tuple[Expr, str]],
        agg_specs: Sequence[AggSpec],
    ) -> None:
        self.child = child
        self.group_outputs = list(group_outputs)
        self.agg_specs = list(agg_specs)
        columns: List[Column] = []
        for expr, name in self.group_outputs:
            columns.append(Column(name, _group_type(expr, child.schema)))
        for spec in self.agg_specs:
            columns.append(Column(spec.name, spec.output_type()))
        self.schema = Schema(columns)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        groups = ", ".join(name for _, name in self.group_outputs)
        aggs = ", ".join(s.name for s in self.agg_specs)
        return f"LAggregate(group=[{groups}] aggs=[{aggs}])"


class LWindow(LogicalNode):
    """All reporting-function columns of one SELECT, evaluated together."""

    def __init__(
        self, child: LogicalNode, specs: Sequence[WindowColumnSpec]
    ) -> None:
        self.child = child
        self.specs = list(specs)
        columns = list(child.schema.columns)
        for spec in self.specs:
            columns.append(Column(spec.name, FLOAT))
        self.schema = Schema(columns)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"LWindow({', '.join(s.name for s in self.specs)})"


class LProject(LogicalNode):
    """Projection to named output expressions (the SELECT list)."""

    def __init__(
        self, child: LogicalNode, outputs: Sequence[Tuple[Expr, str]]
    ) -> None:
        self.child = child
        self.outputs = list(outputs)
        self.schema = Schema(
            [Column(name, _infer_type(expr, child.schema)) for expr, name in outputs]
        )

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"LProject({', '.join(name for _, name in self.outputs)})"


class LDistinct(LogicalNode):
    """SELECT DISTINCT over the child's output."""

    def __init__(self, child: LogicalNode) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)


class LSort(LogicalNode):
    """Global ORDER BY over ``(expression, ascending)`` keys."""

    def __init__(
        self, child: LogicalNode, keys: Sequence[Tuple[Expr, bool]]
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{expr} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"LSort({keys})"


class LLimit(LogicalNode):
    """LIMIT/OFFSET over the child's output."""

    def __init__(self, child: LogicalNode, limit: int, offset: int = 0) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"LLimit({self.limit})"


class LUnionAll(LogicalNode):
    """Bag union of schema-compatible branches (UNION ALL)."""

    def __init__(self, branches: Sequence[LogicalNode]) -> None:
        self.branches = list(branches)
        self.schema = self.branches[0].schema

    def children(self) -> Sequence[LogicalNode]:
        return tuple(self.branches)

    def label(self) -> str:
        return f"LUnionAll({len(self.branches)})"


class LPhysical(LogicalNode):
    """A subtree already lowered to physical operators (pattern rewrites)."""

    def __init__(self, plan: Operator, note: str = "pattern") -> None:
        self.plan = plan
        self.note = note
        self.schema = plan.schema

    def label(self) -> str:
        return f"LPhysical({self.note}: {self.plan.label()})"


def explain_logical(node: LogicalNode) -> str:
    """Render a logical tree (mirrors ``Operator.explain``)."""
    return node.explain()
