"""DDL and DML statements: CREATE/DROP, INSERT, UPDATE, DELETE.

Complements the SELECT parser so that a warehouse can be driven entirely
through SQL text::

    CREATE TABLE seq (pos INTEGER, val FLOAT, PRIMARY KEY (pos))
    CREATE [UNIQUE] INDEX by_val ON seq (val)
    INSERT INTO seq VALUES (1, 10.5), (2, 11.0)
    INSERT INTO seq (pos, val) VALUES (3, 9.25)
    UPDATE seq SET val = val + 1 WHERE pos = 2
    DELETE FROM seq WHERE pos > 100
    DROP TABLE [IF EXISTS] seq
    DROP INDEX by_val ON seq

Execution semantics: UPDATE/DELETE evaluate their WHERE over each row with
the usual three-valued logic (only TRUE rows are affected); UPDATE's SET
expressions see the *old* row values.  All statements return a
:class:`~repro.relational.engine.Result` whose single ``count`` column
reports the number of affected rows (0 for DDL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import ParseError, UnsupportedSqlError
from repro.relational.engine import Database, Result
from repro.relational.expr import Expr, Literal
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.types import INTEGER, type_by_name
from repro.sql.ast_nodes import SelectStmt
from repro.sql.lexer import tokenize
from repro.sql.parser import _Parser

__all__ = [
    "CreateTableStmt",
    "CreateIndexStmt",
    "DropTableStmt",
    "DropIndexStmt",
    "InsertStmt",
    "UpdateStmt",
    "DeleteStmt",
    "parse_statement",
    "execute_statement",
]


@dataclass(frozen=True)
class CreateTableStmt:
    name: str
    columns: Tuple[Tuple[str, str], ...]  # (name, type name)
    primary_key: Tuple[str, ...]
    if_not_exists: bool


@dataclass(frozen=True)
class CreateIndexStmt:
    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool


@dataclass(frozen=True)
class DropTableStmt:
    name: str
    if_exists: bool


@dataclass(frozen=True)
class DropIndexStmt:
    name: str
    table: str


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: Tuple[str, ...]  # empty = positional
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr]


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Optional[Expr]


Statement = Any  # one of the dataclasses above, or SelectStmt


class _StatementParser(_Parser):
    """Extends the SELECT parser with DDL/DML productions."""

    def statement(self) -> Statement:
        tok = self._cur
        if tok.is_keyword("SELECT"):
            first = self.select()
            if not self._cur.is_keyword("UNION"):
                return first
            from dataclasses import replace as _replace

            from repro.sql.ast_nodes import CompoundSelect

            selects = [first]
            while self._accept_keyword("UNION"):
                self._expect_keyword("ALL")
                selects.append(self.select())
            last = selects[-1]
            order_by, limit = last.order_by, last.limit
            if order_by or limit is not None:
                selects[-1] = _replace(last, order_by=(), limit=None)
            return CompoundSelect(tuple(selects), order_by, limit)
        if tok.is_keyword("CREATE"):
            return self._create()
        if tok.is_keyword("DROP"):
            return self._drop()
        if tok.is_keyword("INSERT"):
            return self._insert()
        if tok.is_keyword("UPDATE"):
            return self._update()
        if tok.is_keyword("DELETE"):
            return self._delete()
        raise self._error("expected a SQL statement")

    # -- CREATE ------------------------------------------------------------------

    def _create(self) -> Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._create_table()
        unique = self._accept_keyword("UNIQUE")
        self._expect_keyword("INDEX")
        name = self._ident("index name")
        self._expect_keyword("ON")
        table = self._ident("table name")
        self._expect_symbol("(")
        columns = [self._ident("column name")]
        while self._accept_symbol(","):
            columns.append(self._ident("column name"))
        self._expect_symbol(")")
        return CreateIndexStmt(name, table, tuple(columns), unique)

    def _create_table(self) -> CreateTableStmt:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._ident("table name")
        self._expect_symbol("(")
        columns: List[Tuple[str, str]] = []
        primary_key: Tuple[str, ...] = ()
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_symbol("(")
                pk = [self._ident("column name")]
                while self._accept_symbol(","):
                    pk.append(self._ident("column name"))
                self._expect_symbol(")")
                primary_key = tuple(pk)
            else:
                col_name = self._ident("column name")
                type_name = self._ident("column type")
                columns.append((col_name, type_name))
            if not self._accept_symbol(","):
                break
        self._expect_symbol(")")
        if not columns:
            raise self._error("CREATE TABLE needs at least one column")
        return CreateTableStmt(name, tuple(columns), primary_key, if_not_exists)

    # -- DROP ---------------------------------------------------------------------

    def _drop(self) -> Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            if_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("EXISTS")
                if_exists = True
            return DropTableStmt(self._ident("table name"), if_exists)
        self._expect_keyword("INDEX")
        name = self._ident("index name")
        self._expect_keyword("ON")
        return DropIndexStmt(name, self._ident("table name"))

    # -- INSERT --------------------------------------------------------------------

    def _insert(self) -> InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._ident("table name")
        columns: Tuple[str, ...] = ()
        if self._accept_symbol("("):
            names = [self._ident("column name")]
            while self._accept_symbol(","):
                names.append(self._ident("column name"))
            self._expect_symbol(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows: List[Tuple[Expr, ...]] = []
        while True:
            self._expect_symbol("(")
            values = [self.expression()]
            while self._accept_symbol(","):
                values.append(self.expression())
            self._expect_symbol(")")
            rows.append(tuple(values))
            if not self._accept_symbol(","):
                break
        return InsertStmt(table, columns, tuple(rows))

    # -- UPDATE / DELETE ---------------------------------------------------------------

    def _update(self) -> UpdateStmt:
        self._expect_keyword("UPDATE")
        table = self._ident("table name")
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_symbol(","):
            assignments.append(self._assignment())
        where = self.expression() if self._accept_keyword("WHERE") else None
        return UpdateStmt(table, tuple(assignments), where)

    def _assignment(self) -> Tuple[str, Expr]:
        column = self._ident("column name")
        self._expect_symbol("=")
        return column, self.expression()

    def _delete(self) -> DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._ident("table name")
        where = self.expression() if self._accept_keyword("WHERE") else None
        return DeleteStmt(table, where)


def parse_statement(text: str) -> Statement:
    """Parse any supported statement (SELECT or DDL/DML)."""
    parser = _StatementParser(tokenize(text))
    stmt = parser.statement()
    parser.expect_eof()
    return stmt


def _count_result(count: int) -> Result:
    return Result(Schema([Column("count", INTEGER)]), [(count,)], ExecutionStats())


def execute_statement(db: Database, stmt: Statement, **options: Any) -> Result:
    """Execute a parsed statement against a database."""
    from repro.sql.ast_nodes import CompoundSelect

    if isinstance(stmt, (SelectStmt, CompoundSelect)):
        from repro.sql.planner import build_plan

        return db.run(build_plan(db, stmt, **options))
    if isinstance(stmt, CreateTableStmt):
        db.create_table(
            stmt.name,
            [(name, type_by_name(type_name)) for name, type_name in stmt.columns],
            primary_key=list(stmt.primary_key) or None,
            if_not_exists=stmt.if_not_exists,
        )
        return _count_result(0)
    if isinstance(stmt, CreateIndexStmt):
        db.create_index(stmt.table, stmt.name, list(stmt.columns), unique=stmt.unique)
        return _count_result(0)
    if isinstance(stmt, DropTableStmt):
        db.drop_table(stmt.name, if_exists=stmt.if_exists)
        return _count_result(0)
    if isinstance(stmt, DropIndexStmt):
        db.drop_index(stmt.table, stmt.name)
        return _count_result(0)
    if isinstance(stmt, InsertStmt):
        return _count_result(_execute_insert(db, stmt))
    if isinstance(stmt, UpdateStmt):
        return _count_result(_execute_update(db, stmt))
    if isinstance(stmt, DeleteStmt):
        return _count_result(_execute_delete(db, stmt))
    raise UnsupportedSqlError(f"cannot execute statement {type(stmt).__name__}")


_EMPTY_SCHEMA = Schema([])


def _literal_row(exprs: Tuple[Expr, ...]) -> List[Any]:
    out = []
    for expr in exprs:
        compiled = expr.bind(_EMPTY_SCHEMA)
        out.append(compiled(()))
    return out


def _execute_insert(db: Database, stmt: InsertStmt) -> int:
    table = db.table(stmt.table)
    count = 0
    for value_exprs in stmt.rows:
        values = _literal_row(value_exprs)
        if stmt.columns:
            if len(values) != len(stmt.columns):
                raise ParseError(
                    f"INSERT row has {len(values)} values for "
                    f"{len(stmt.columns)} columns"
                )
            by_name = dict(zip(stmt.columns, values))
            row = [by_name.get(c.name) for c in table.schema]
            unknown = set(stmt.columns) - {c.name for c in table.schema}
            if unknown:
                raise ParseError(f"unknown INSERT columns {sorted(unknown)}")
        else:
            row = values
        table.insert(row)
        count += 1
    return count


def _execute_update(db: Database, stmt: UpdateStmt) -> int:
    table = db.table(stmt.table)
    where = stmt.where.bind(table.schema) if stmt.where is not None else None
    assigns = [
        (table.schema.resolve(column), expr.bind(table.schema))
        for column, expr in stmt.assignments
    ]
    touched = 0
    for slot, row in enumerate(table.rows):
        if where is not None and where(row) is not True:
            continue
        new_row = list(row)
        for index, compiled in assigns:
            new_row[index] = compiled(row)  # SET sees the old values
        table.update_slot(slot, new_row)
        touched += 1
    return touched


def _execute_delete(db: Database, stmt: DeleteStmt) -> int:
    table = db.table(stmt.table)
    where = stmt.where.bind(table.schema) if stmt.where is not None else None
    doomed = [
        slot
        for slot, row in enumerate(table.rows)
        if where is None or where(row) is True
    ]
    return table.delete_slots(doomed)
