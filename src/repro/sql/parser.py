"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    select   := SELECT item ("," item)* FROM tref ("," tref)*
                [WHERE expr] [GROUP BY expr ("," expr)*] [HAVING expr]
                [ORDER BY order ("," order)*] [LIMIT number]
    item     := "*" | value [[AS] ident]
    value    := agg "(" ["*" | [DISTINCT] expr] ")" [over] | expr
    over     := OVER "(" [PARTITION BY exprs] [ORDER BY orders] [frame] ")"
    frame    := ROWS (bound | BETWEEN bound AND bound)
    bound    := UNBOUNDED (PRECEDING|FOLLOWING) | number (PRECEDING|FOLLOWING)
                | CURRENT ROW

Scalar expressions support the usual precedence ladder (OR < AND < NOT <
comparison/IN/IS NULL/BETWEEN < additive < multiplicative < unary), column
references with qualifiers, numeric/string/boolean/NULL literals,
``CASE WHEN``, ``COALESCE`` and the scalar functions of the relational
layer.  Aggregate functions are recognised only as top-level select items
(optionally with an ``OVER`` clause, making them reporting functions).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError, UnsupportedSqlError
from repro.relational.expr import (
    And,
    Like,
    Arithmetic,
    CaseExpr,
    Coalesce,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.sql.ast_nodes import (
    AggregateCall,
    FrameBound,
    FrameSpec,
    OrderItem,
    OverClause,
    SelectItem,
    SelectStmt,
    TableRef,
    WindowCall,
)
from repro.sql.lexer import Token, tokenize

__all__ = ["parse_select", "parse_query", "parse_expression"]

_AGG_FUNCS = {"SUM", "COUNT", "AVG", "MIN", "MAX"}
_RANK_FUNCS = {"ROW_NUMBER", "RANK", "DENSE_RANK"}
_SCALAR_FUNCS = {"MOD", "ABS", "MONTH", "YEAR", "DAY"}


def parse_select(text: str) -> SelectStmt:
    """Parse a single SELECT statement (no UNION).

    Raises:
        ParseError / LexerError / UnsupportedSqlError.
    """
    parser = _Parser(tokenize(text))
    stmt = parser.select()
    parser.expect_eof()
    return stmt


def parse_query(text: str):
    """Parse a SELECT or a ``UNION ALL`` compound of SELECTs."""
    from repro.sql.ast_nodes import CompoundSelect

    parser = _Parser(tokenize(text))
    first = parser.select()
    if not parser._cur.is_keyword("UNION"):
        parser.expect_eof()
        return first
    selects = [first]
    while parser._accept_keyword("UNION"):
        parser._expect_keyword("ALL")
        selects.append(parser.select())
    # A trailing ORDER BY/LIMIT parsed into the last branch applies to the
    # whole compound per SQL semantics: hoist it.
    last = selects[-1]
    order_by, limit = last.order_by, last.limit
    if order_by or limit is not None:
        from dataclasses import replace as _replace

        selects[-1] = _replace(last, order_by=(), limit=None)
    parser.expect_eof()
    return CompoundSelect(tuple(selects), order_by, limit)


def parse_expression(text: str) -> Expr:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._i = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "EOF":
            self._i += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._cur
        where = f" near {tok.value!r}" if tok.kind != "EOF" else " at end of input"
        return ParseError(message + where, tok.position)

    def _accept_keyword(self, *words: str) -> bool:
        if self._cur.is_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _accept_symbol(self, *symbols: str) -> Optional[str]:
        if self._cur.is_symbol(*symbols):
            return self._advance().value
        return None

    def _expect_symbol(self, symbol: str) -> None:
        if self._accept_symbol(symbol) is None:
            raise self._error(f"expected {symbol!r}")

    def expect_eof(self) -> None:
        if self._cur.kind != "EOF":
            raise self._error("unexpected trailing input")

    def _ident(self, what: str) -> str:
        if self._cur.kind != "IDENT":
            raise self._error(f"expected {what}")
        return self._advance().value

    def _string_literal(self, what: str) -> str:
        if self._cur.kind != "STRING":
            raise self._error(f"expected string {what}")
        return self._advance().value

    def _integer(self, what: str) -> int:
        if self._cur.kind != "NUMBER" or not self._cur.value.isdigit():
            raise self._error(f"expected integer {what}")
        return int(self._advance().value)

    # -- statement ----------------------------------------------------------------

    def select(self) -> SelectStmt:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._accept_symbol(","):
            tables.append(self._table_ref())
        where = self.expression() if self._accept_keyword("WHERE") else None
        group_by: Tuple[Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self.expression()]
            while self._accept_symbol(","):
                exprs.append(self.expression())
            group_by = tuple(exprs)
        having = self.expression() if self._accept_keyword("HAVING") else None
        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = [self._order_item()]
            while self._accept_symbol(","):
                orders.append(self._order_item())
            order_by = tuple(orders)
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self._integer("after LIMIT")
        return SelectStmt(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _table_ref(self) -> TableRef:
        if self._accept_symbol("("):
            sub = self.select()
            self._expect_symbol(")")
            alias = None
            if self._accept_keyword("AS"):
                alias = self._ident("subquery alias")
            elif self._cur.kind == "IDENT":
                alias = self._advance().value
            if alias is None:
                raise self._error("derived tables need an alias")
            return TableRef("", alias, subquery=sub)
        name = self._ident("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident("table alias")
        elif self._cur.kind == "IDENT":
            alias = self._advance().value
        return TableRef(name, alias)

    def _select_item(self) -> SelectItem:
        if self._accept_symbol("*"):
            return SelectItem(value=None, star=True)
        value = self._select_value()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident("column alias")
        elif self._cur.kind == "IDENT":
            alias = self._advance().value
        return SelectItem(value=value, alias=alias)

    def _select_value(self):
        tok = self._cur
        if tok.kind == "IDENT" and tok.value.upper() in _AGG_FUNCS:
            nxt = self._tokens[self._i + 1]
            if nxt.is_symbol("("):
                return self._aggregate_or_window()
        if tok.kind == "IDENT" and tok.value.upper() in _RANK_FUNCS:
            nxt = self._tokens[self._i + 1]
            if nxt.is_symbol("("):
                return self._ranking_function()
        return self.expression()

    def _ranking_function(self) -> WindowCall:
        """``ROW_NUMBER() / RANK() / DENSE_RANK() OVER (...)``.

        Ranking functions take no argument and no frame; their scope is the
        whole partition under the local ORDER BY.
        """
        func = self._advance().value.upper()
        self._expect_symbol("(")
        self._expect_symbol(")")
        self._expect_keyword("OVER")
        over = self._over_clause()
        if not over.order_by:
            raise UnsupportedSqlError(f"{func}() requires an ORDER BY in its OVER clause")
        if over.frame is not None:
            raise UnsupportedSqlError(f"{func}() does not take a window frame")
        return WindowCall(func, None, over)

    def _aggregate_or_window(self):
        func = self._advance().value.upper()
        self._expect_symbol("(")
        distinct = False
        arg: Optional[Expr]
        if self._accept_symbol("*"):
            if func != "COUNT":
                raise self._error(f"{func}(*) is not valid SQL")
            arg = None
        else:
            distinct = self._accept_keyword("DISTINCT")
            arg = self.expression()
        self._expect_symbol(")")
        if self._cur.is_keyword("OVER"):
            self._advance()
            over = self._over_clause()
            if distinct:
                raise UnsupportedSqlError("DISTINCT is not valid in reporting functions")
            return WindowCall(func, arg, over)
        return AggregateCall(func, arg, distinct)

    def _over_clause(self) -> OverClause:
        self._expect_symbol("(")
        partition: Tuple[Expr, ...] = ()
        order: Tuple[OrderItem, ...] = ()
        frame: Optional[FrameSpec] = None
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            exprs = [self.expression()]
            while self._accept_symbol(","):
                exprs.append(self.expression())
            partition = tuple(exprs)
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = [self._order_item()]
            while self._accept_symbol(","):
                orders.append(self._order_item())
            order = tuple(orders)
        if self._cur.is_keyword("ROWS", "RANGE"):
            frame = self._frame()
        self._expect_symbol(")")
        return OverClause(partition, order, frame)

    def _frame(self) -> FrameSpec:
        if self._accept_keyword("RANGE"):
            unit = "range"
        else:
            self._expect_keyword("ROWS")
            unit = "rows"
        if self._accept_keyword("BETWEEN"):
            start = self._frame_bound(unit)
            self._expect_keyword("AND")
            end = self._frame_bound(unit)
            return FrameSpec(start, end, unit)
        start = self._frame_bound(unit)
        return FrameSpec(start, FrameBound("current"), unit)

    def _frame_bound(self, unit: str = "rows") -> FrameBound:
        if self._accept_keyword("UNBOUNDED"):
            if self._accept_keyword("PRECEDING"):
                return FrameBound("preceding", None)
            self._expect_keyword("FOLLOWING")
            return FrameBound("following", None)
        if self._accept_keyword("CURRENT"):
            self._expect_keyword("ROW")
            return FrameBound("current")
        if unit == "range":
            if self._cur.kind != "NUMBER":
                raise self._error("expected numeric RANGE offset")
            text = self._advance().value
            offset: float = float(text)
        else:
            offset = self._integer("frame offset")
        if self._accept_keyword("PRECEDING"):
            return FrameBound("preceding", offset)
        self._expect_keyword("FOLLOWING")
        return FrameBound("following", offset)

    def _order_item(self) -> OrderItem:
        expr = self.expression()
        if self._accept_keyword("DESC"):
            return OrderItem(expr, ascending=False)
        self._accept_keyword("ASC")
        return OrderItem(expr, ascending=True)

    # -- expressions -----------------------------------------------------------------

    def expression(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        items = [self._and()]
        while self._accept_keyword("OR"):
            items.append(self._and())
        return items[0] if len(items) == 1 else Or(*items)

    def _and(self) -> Expr:
        items = [self._not()]
        while self._accept_keyword("AND"):
            items.append(self._not())
        return items[0] if len(items) == 1 else And(*items)

    def _not(self) -> Expr:
        if self._accept_keyword("NOT"):
            return Not(self._not())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        op = self._accept_symbol("=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            return Comparison(op, left, self._additive())
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            options = [self.expression()]
            while self._accept_symbol(","):
                options.append(self.expression())
            self._expect_symbol(")")
            return InList(left, tuple(options))
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(left, negated=negated)
        if self._cur.is_keyword("NOT") and self._tokens[self._i + 1].is_keyword("LIKE"):
            self._advance()
            self._advance()
            return Like(left, self._string_literal("LIKE pattern"), negated=True)
        if self._accept_keyword("LIKE"):
            return Like(left, self._string_literal("LIKE pattern"))
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return And(Comparison(">=", left, low), Comparison("<=", left, high))
        return left

    def _additive(self) -> Expr:
        expr = self._multiplicative()
        while True:
            op = self._accept_symbol("+", "-")
            if op is None:
                return expr
            expr = Arithmetic(op, expr, self._multiplicative())

    def _multiplicative(self) -> Expr:
        expr = self._unary()
        while True:
            op = self._accept_symbol("*", "/", "%")
            if op is None:
                return expr
            expr = Arithmetic(op, expr, self._unary())

    def _unary(self) -> Expr:
        if self._accept_symbol("-"):
            return Arithmetic("-", Literal(0), self._unary())
        if self._accept_symbol("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._cur
        if tok.kind == "NUMBER":
            self._advance()
            if "." in tok.value or "e" in tok.value or "E" in tok.value:
                return Literal(float(tok.value))
            return Literal(int(tok.value))
        if tok.kind == "STRING":
            self._advance()
            return Literal(tok.value)
        if tok.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if tok.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if tok.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if tok.is_keyword("CASE"):
            return self._case()
        if tok.is_keyword("COALESCE"):
            self._advance()
            self._expect_symbol("(")
            items = [self.expression()]
            while self._accept_symbol(","):
                items.append(self.expression())
            self._expect_symbol(")")
            return Coalesce(*items)
        if self._accept_symbol("("):
            expr = self.expression()
            self._expect_symbol(")")
            return expr
        if tok.kind == "IDENT":
            name = self._advance().value
            if self._cur.is_symbol("("):
                upper = name.upper()
                if upper in _AGG_FUNCS:
                    raise UnsupportedSqlError(
                        f"aggregate {upper}() may only appear as a top-level "
                        "select item in this SQL subset"
                    )
                if upper not in _SCALAR_FUNCS:
                    raise self._error(f"unknown function {name!r}")
                self._advance()  # '('
                args: List[Expr] = []
                if not self._cur.is_symbol(")"):
                    args.append(self.expression())
                    while self._accept_symbol(","):
                        args.append(self.expression())
                self._expect_symbol(")")
                return FuncCall(upper, tuple(args))
            if self._accept_symbol("."):
                column = self._ident("column name after qualifier")
                return ColumnRef(column, name)
            return ColumnRef(name)
        raise self._error("expected an expression")

    def _case(self) -> Expr:
        self._expect_keyword("CASE")
        whens: List[Tuple[Expr, Expr]] = []
        while self._accept_keyword("WHEN"):
            cond = self.expression()
            self._expect_keyword("THEN")
            whens.append((cond, self.expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        default = self.expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return CaseExpr(tuple(whens), default)
