"""SQL front end: lexer, parser, planner, window execution, rewrite patterns.

The supported subset covers the paper's queries: SELECT over (self-)joined
tables with WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, scalar expressions with
CASE/COALESCE/MOD, plain aggregates, and reporting functions with the full
``OVER (PARTITION BY ... ORDER BY ... ROWS ...)`` clause of fig. 1.
"""

from repro.sql.ast_nodes import (
    AggregateCall,
    FrameBound,
    FrameSpec,
    OrderItem,
    OverClause,
    SelectItem,
    SelectStmt,
    TableRef,
    WindowCall,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse_expression, parse_select
from repro.sql.patterns import (
    maxoa_pattern,
    minoa_pattern,
    raw_from_cumulative_pattern,
    self_join_window,
    sliding_from_cumulative_pattern,
)
from repro.sql.planner import build_plan, execute_sql, explain_sql
from repro.sql.window_exec import WindowColumnSpec, WindowOperator

__all__ = [
    "AggregateCall",
    "FrameBound",
    "FrameSpec",
    "OrderItem",
    "OverClause",
    "SelectItem",
    "SelectStmt",
    "TableRef",
    "Token",
    "WindowCall",
    "WindowColumnSpec",
    "WindowOperator",
    "build_plan",
    "execute_sql",
    "explain_sql",
    "maxoa_pattern",
    "minoa_pattern",
    "parse_expression",
    "parse_select",
    "raw_from_cumulative_pattern",
    "self_join_window",
    "sliding_from_cumulative_pattern",
    "tokenize",
]
