"""AST nodes for the supported SQL subset.

Scalar expressions reuse the relational expression nodes
(:mod:`repro.relational.expr`) directly — the parser emits them as-is, so no
separate lowering step is needed.  Only constructs the relational layer
cannot represent get dedicated nodes here: aggregate calls, window
(reporting) function calls with their ``OVER`` clause (fig. 1 of the
paper), select items, and the statement itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.window import WindowSpec
from repro.errors import UnsupportedSqlError
from repro.relational.expr import Expr

__all__ = [
    "CompoundSelect",
    "FrameBound",
    "FrameSpec",
    "OverClause",
    "AggregateCall",
    "WindowCall",
    "SelectItem",
    "TableRef",
    "OrderItem",
    "SelectStmt",
]


@dataclass(frozen=True)
class FrameBound:
    """One end of a ROWS/RANGE frame.

    ``kind`` is ``"preceding"``, ``"following"`` or ``"current"``;
    ``offset`` is the row count (ROWS) or ordering-value distance (RANGE);
    ``None`` = UNBOUNDED.
    """

    kind: str
    offset: Optional[float] = None

    def __str__(self) -> str:
        if self.kind == "current":
            return "CURRENT ROW"
        word = self.kind.upper()
        return ("UNBOUNDED " if self.offset is None else f"{self.offset} ") + word


@dataclass(frozen=True)
class FrameSpec:
    """A ``ROWS`` or ``RANGE`` window aggregation group (fig. 1's third
    component; RANGE is a value-distance extension beyond the paper)."""

    start: FrameBound
    end: FrameBound
    unit: str = "rows"

    def range_bounds(self) -> "Tuple[Optional[float], Optional[float]]":
        """RANGE frames: ``(low_distance, high_distance)``; None = unbounded.

        Raises:
            UnsupportedSqlError: invalid bound combinations.
        """
        s, e = self.start, self.end
        if s.kind == "following" or e.kind == "preceding":
            raise UnsupportedSqlError(
                f"unsupported RANGE frame: BETWEEN {s} AND {e}"
            )
        low = None if s.offset is None else (s.offset if s.kind == "preceding" else 0.0)
        if s.kind == "current":
            low = 0.0
        high = None if e.offset is None else (e.offset if e.kind == "following" else 0.0)
        if e.kind == "current":
            high = 0.0
        return low, high

    def to_window(self) -> WindowSpec:
        """Lower to the paper's window algebra.

        * ``UNBOUNDED PRECEDING .. CURRENT ROW`` -> cumulative
        * ``l PRECEDING .. h FOLLOWING``         -> sliding(l, h)

        Raises:
            UnsupportedSqlError: frames outside the paper's model
                (UNBOUNDED FOLLOWING, or frames not containing the current
                row, e.g. ``BETWEEN 5 PRECEDING AND 2 PRECEDING``).
        """
        if self.unit == "range":
            raise UnsupportedSqlError(
                "RANGE frames have value-distance semantics outside the "
                "paper's row-based sequence model; they are evaluated "
                "natively and never rewritten against views"
            )
        s, e = self.start, self.end
        if s.kind == "preceding" and s.offset is None:
            if e.kind == "current":
                return WindowSpec.cumulative()
            raise UnsupportedSqlError(
                f"unsupported frame: ROWS BETWEEN {s} AND {e} (only "
                "UNBOUNDED PRECEDING .. CURRENT ROW is cumulative)"
            )
        l = s.offset if s.kind == "preceding" else 0 if s.kind == "current" else None
        h = e.offset if e.kind == "following" else 0 if e.kind == "current" else None
        if l is not None and l != int(l):
            raise UnsupportedSqlError("ROWS offsets must be integers")
        if h is not None and h != int(h):
            raise UnsupportedSqlError("ROWS offsets must be integers")
        if l is not None:
            l = int(l)
        if h is not None:
            h = int(h)
        if l is None or h is None:
            raise UnsupportedSqlError(
                f"unsupported frame: ROWS BETWEEN {s} AND {e}; the sequence "
                "model requires l PRECEDING .. h FOLLOWING"
            )
        return WindowSpec.sliding(l, h, allow_point=True)

    def __str__(self) -> str:
        return f"{self.unit.upper()} BETWEEN {self.start} AND {self.end}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.expr} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class OverClause:
    """``OVER (PARTITION BY ... ORDER BY ... ROWS ...)``."""

    partition_by: Tuple[Expr, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    frame: Optional[FrameSpec] = None

    def window(self) -> WindowSpec:
        """The effective window: SQL defaults to cumulative when an ORDER BY
        is present and no explicit frame is given."""
        if self.frame is not None:
            return self.frame.to_window()
        if self.order_by:
            return WindowSpec.cumulative()
        raise UnsupportedSqlError(
            "OVER () without ORDER BY or frame has whole-partition scope, "
            "which is outside the paper's sequence model"
        )

    def __str__(self) -> str:
        parts = []
        if self.partition_by:
            parts.append("PARTITION BY " + ", ".join(map(str, self.partition_by)))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(map(str, self.order_by)))
        if self.frame is not None:
            parts.append(str(self.frame))
        return "OVER (" + " ".join(parts) + ")"


@dataclass(frozen=True)
class AggregateCall:
    """A plain aggregate in the select list (``SUM(x)``, ``COUNT(*)``)."""

    func: str
    arg: Optional[Expr]  # None = COUNT(*)
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = "DISTINCT " + inner
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class WindowCall:
    """A reporting function: ``agg(arg) OVER (...)``."""

    func: str
    arg: Optional[Expr]
    over: OverClause

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner}) {self.over}"


SelectValue = Union[Expr, AggregateCall, WindowCall]


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry; ``star=True`` for ``*``."""

    value: Optional[SelectValue]
    alias: Optional[str] = None
    star: bool = False

    def __str__(self) -> str:
        if self.star:
            return "*"
        base = str(self.value)
        return f"{base} AS {self.alias}" if self.alias else base


@dataclass(frozen=True)
class TableRef:
    """A FROM item: a base table or a derived table (subquery).

    For derived tables ``name`` is empty, ``subquery`` holds the inner
    statement, and ``alias`` is mandatory.
    """

    name: str
    alias: Optional[str] = None
    subquery: Optional["SelectStmt"] = None

    @property
    def is_subquery(self) -> bool:
        return self.subquery is not None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def __str__(self) -> str:
        if self.is_subquery:
            return f"(<subquery>) {self.alias}"
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SelectStmt:
    """The supported statement shape.

    ``SELECT [DISTINCT] items FROM t1 [a1], t2 [a2], ... [WHERE ...]
    [GROUP BY ...] [HAVING ...] [ORDER BY ...] [LIMIT n]``
    """

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def window_calls(self) -> List[WindowCall]:
        return [i.value for i in self.items if isinstance(i.value, WindowCall)]

    def aggregate_calls(self) -> List[AggregateCall]:
        return [i.value for i in self.items if isinstance(i.value, AggregateCall)]


@dataclass(frozen=True)
class CompoundSelect:
    """``select UNION ALL select [UNION ALL ...] [ORDER BY ...] [LIMIT n]``.

    The members' own ORDER BY/LIMIT apply per branch; the trailing ORDER
    BY/LIMIT of the compound applies to the concatenated rows and binds
    against the first branch's output columns.
    """

    selects: Tuple[SelectStmt, ...]
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
