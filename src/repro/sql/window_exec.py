"""Native reporting-function execution (the engine's window operator).

This operator is the "existing reporting functionality inside the database
engine" column of the paper's Table 1: each window column is evaluated by

1. hashing rows into partitions (``PARTITION BY``),
2. sorting each partition by the window's local ``ORDER BY`` (independent of
   the query's global ORDER BY — fig. 1's semantics), and
3. computing the frame aggregate with the *pipelined* algorithm of section
   2.2 (O(1) amortised per row for SUM/COUNT/AVG and deque-based MIN/MAX).

Reporting functions do not shrink the data volume: one output value is
produced per input row, appended as extra columns to the child's rows.

When constructed with a parallel
:class:`~repro.parallel.config.ExecutionConfig`, step 3 runs through the
partition-parallel subsystem: every PARTITION BY group's sequence — chunked
within long groups — is evaluated on a shared
:class:`~repro.parallel.executor.ExecutorPool`, and per-group results merge
back in deterministic order.  Ranking functions and RANGE frames keep the
serial path (their kernels are not chunkable yet).

Queries with several OVER clauses share work across the clauses in three
tiers:

1. *partition/sort sharing* (always on) — clauses with the same
   PARTITION BY / ORDER BY signature group and sort the input once;
2. *result dedup* (always on) — textually identical clauses are computed
   once;
3. *factor-window derivation* (``share_derivation=True``, set by the cost
   planner) — a MIN/MAX clause whose frame widens a sibling clause's frame
   is *derived* from the sibling's computed sequence with the paper's
   MaxOA algorithm (section 4), exactly the way sequence views derive one
   another.  MIN/MAX derivation is comparisons-only, so the derived column
   is bit-identical to direct evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.columns import Column as DataColumn
from repro.columns import kind_for_type
from repro.core.aggregates import by_name
from repro.core.compute import compute_pipelined
from repro.core.vectorized import compute_vectorized
from repro.core.window import WindowSpec
from repro.errors import ParallelError, PlanError, SchemaError
from repro.relational.expr import ColumnRef, Expr
from repro.relational.operators import Alias, Operator, TableScan
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.types import FLOAT
from repro.sql.ast_nodes import OrderItem

__all__ = ["RANKING_FUNCS", "WindowColumnSpec", "WindowOperator"]

Row = Tuple[Any, ...]

RANKING_FUNCS = ("ROW_NUMBER", "RANK", "DENSE_RANK")


@dataclass(frozen=True)
class WindowColumnSpec:
    """One reporting-function output column.

    Attributes:
        func: SUM/COUNT/AVG/MIN/MAX, or a ranking function
            (ROW_NUMBER/RANK/DENSE_RANK, argument- and frame-less).
        arg: argument expression over the child schema (None = COUNT(*) or
            a ranking function).
        partition_by: partition expressions.
        order_by: local ordering (expression, ascending) items.
        window: the lowered :class:`WindowSpec` frame (None for ranking
            functions, whose scope is the whole partition).
        name: output column name.
    """

    func: str
    arg: Optional[Expr]
    partition_by: Tuple[Expr, ...]
    order_by: Tuple[OrderItem, ...]
    window: Optional[WindowSpec]
    name: str
    range_frame: Optional[Tuple[Optional[float], Optional[float]]] = None

    @property
    def is_ranking(self) -> bool:
        return self.func in RANKING_FUNCS

    @property
    def is_range(self) -> bool:
        return self.range_frame is not None

    def __post_init__(self) -> None:
        if self.is_ranking:
            if not self.order_by:
                raise PlanError(f"{self.func}() needs an ORDER BY")
            if self.window is not None or self.range_frame is not None:
                raise PlanError(f"{self.func}() does not take a window frame")
            return
        if self.is_range:
            if self.window is not None:
                raise PlanError("specify either a ROWS window or a RANGE frame")
            if len(self.order_by) != 1:
                raise PlanError(
                    "RANGE frames need exactly one ORDER BY expression"
                )
            if not self.order_by[0].ascending:
                raise PlanError("RANGE frames need an ascending ORDER BY")
            return
        if self.window is None:
            raise PlanError(
                f"reporting function {self.name!r} needs a window frame"
            )
        if not self.order_by and not self.window.is_point:
            raise PlanError(
                f"reporting function {self.name!r} needs an ORDER BY to "
                "define its sequence"
            )


class WindowOperator(Operator):
    """Append reporting-function columns to the child's rows.

    Args:
        exec_config: when parallel, frame aggregates are computed through
            the partition-parallel subsystem (chunked across and within
            PARTITION BY groups); ``None`` keeps the serial pipelined path.
        kernel: serial frame kernel — ``"pipelined"`` (section 2.2,
            amortised O(1) per row) or ``"vectorized"`` (NumPy bulk
            kernels; chosen by the cost planner for large inputs).
            Ranking functions and RANGE frames always use their dedicated
            serial kernels.
        share_derivation: enable the MaxOA factor-window sharing tier
            between MIN/MAX clauses (see the module docstring).  Off by
            default; the cost planner turns it on.
    """

    def __init__(
        self,
        child: Operator,
        specs: Sequence[WindowColumnSpec],
        exec_config=None,
        *,
        kernel: str = "pipelined",
        share_derivation: bool = False,
    ) -> None:
        if not specs:
            raise PlanError("window operator needs at least one column spec")
        if kernel not in ("pipelined", "vectorized"):
            raise PlanError(f"unknown window kernel {kernel!r}")
        self.child = child
        self.exec_config = exec_config
        self.kernel = kernel
        self.share_derivation = share_derivation
        self.specs = list(specs)
        columns = list(child.schema.columns)
        for spec in self.specs:
            columns.append(Column(spec.name, FLOAT))
        self.schema = Schema(columns)
        self._bound = []
        for spec in self.specs:
            self._bound.append(
                (
                    spec.arg.bind(child.schema) if spec.arg is not None else None,
                    [e.bind(child.schema) for e in spec.partition_by],
                    [(o.expr.bind(child.schema), o.ascending) for o in spec.order_by],
                )
            )

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        from repro.obs import runtime

        rows: List[Row] = list(self.child.execute(stats))
        pool = None
        if (
            self.exec_config is not None
            and self.exec_config.is_parallel
            and rows
        ):
            from repro.parallel.executor import ExecutorPool

            # Sharing the stats block surfaces retry/fallback counters in
            # the query result.
            pool = ExecutorPool(self.exec_config, stats=stats)
        # cost_units mirrors the planner's charging basis for the strategy
        # (rows x width for the vectorized kernel, rows otherwise) so the
        # adaptive table calibrates seconds-per-unit against the same
        # quantity the cost model multiplies.
        units = len(rows)
        if pool is None and self.kernel == "vectorized":
            width = 1.0
            for spec in self.specs:
                if spec.window is not None and spec.window.is_sliding:
                    width = max(width, float(spec.window.width))
            units = int(len(rows) * width)
        self.analyze_extra = {
            "strategy": "parallel" if pool is not None else self.kernel,
            "rows": len(rows),
            "cost_units": units,
        }
        self._share_sources = {} if self.share_derivation else None
        # Run-state spilling ("Support Aggregate Analytic Window Function
        # over Large Data by Spilling"): under an ambient memory budget,
        # computed window columns past the in-memory allowance are written
        # to the spill store as chunked float64 runs and read back
        # sequentially at emit — values are bit-identical (float64 round-
        # trips exactly), only residency changes.
        from repro.storage.spill import SpilledFloatRun, SpillStore, active_budget

        budget = active_budget()
        spill_store: Optional[SpillStore] = None
        held_bytes = 0
        try:
            extras: List[List[float]] = []
            measure_cache: dict = {}
            sort_cache: dict = {}
            result_cache: dict = {}
            for spec, (arg, partition, order) in zip(self.specs, self._bound):
                sig = (
                    tuple(str(e) for e in spec.partition_by),
                    tuple((str(o.expr), o.ascending) for o in spec.order_by),
                )
                dedup_key = (
                    sig,
                    spec.func,
                    str(spec.arg) if spec.arg is not None else None,
                    spec.window,
                    spec.range_frame,
                )
                if dedup_key in result_cache:
                    self.analyze_extra["deduped"] = (
                        self.analyze_extra.get("deduped", 0) + 1
                    )
                    extras.append(result_cache[dedup_key])
                    continue
                groups = self._partition_and_sort(
                    sig, partition, order, rows, sort_cache
                )
                measure = self._measure_column(spec, rows, measure_cache)
                values = self._evaluate(
                    spec, arg, order, sig, groups, rows, stats, pool, measure
                )
                if budget is not None:
                    run_bytes = 8 * len(values)
                    if held_bytes + run_bytes > max(budget // 2, 1) and all(
                        isinstance(v, float) for v in values
                    ):
                        import numpy as np

                        if spill_store is None:
                            spill_store = SpillStore()
                        values = SpilledFloatRun(
                            spill_store, np.asarray(values, dtype=np.float64)
                        )
                        self.analyze_extra["spilled_runs"] = (
                            self.analyze_extra.get("spilled_runs", 0) + 1
                        )
                    else:
                        held_bytes += run_bytes
                result_cache[dedup_key] = values
                extras.append(values)
        finally:
            if pool is not None:
                pool.close()
        registry = runtime.get_registry()
        registry.counter(
            "repro_window_positions_total",
            help="Window positions evaluated (rows x window columns)",
        ).inc(len(rows) * len(self.specs))
        tracer = runtime.get_tracer()
        if tracer.enabled:
            span = tracer.current_span()
            if span is not None:
                span.set(positions=len(rows) * len(self.specs),
                         **self.analyze_extra)
        try:
            for i, row in enumerate(rows):
                yield row + tuple(extra[i] for extra in extras)
        finally:
            if spill_store is not None:
                spill_store.close()

    # -- columnar measure extraction ------------------------------------------

    def _measure_column(
        self, spec: WindowColumnSpec, rows: List[Row], cache: dict
    ) -> Optional[DataColumn]:
        """The measure as a :class:`~repro.columns.Column`, when gatherable.

        Plain column-reference arguments take the columnar fast path: the
        per-group raw sequences become C-speed gathers (``take`` +
        ``as_float64``) over one measure buffer instead of per-row closure
        calls.  When the child is a bare (possibly aliased) table scan the
        buffer is the table heap itself, zero-copy; otherwise the column is
        built once from the materialized rows and shared by all specs that
        reference it.  Returns ``None`` for computed arguments (CASE
        arithmetic, ...) — callers then evaluate row-at-a-time.
        """
        if spec.is_ranking or not isinstance(spec.arg, ColumnRef):
            return None
        try:
            idx = self.child.schema.resolve(spec.arg.name, spec.arg.qualifier)
        except SchemaError:  # pragma: no cover - bind() would have raised
            return None
        if idx in cache:
            from repro.obs import runtime

            runtime.get_registry().counter(
                "repro_window_measure_cache_hits_total",
                help="Measure-column gathers served from the per-query cache",
            ).inc()
            return cache[idx]
        column = self._heap_column(idx)
        if column is None or len(column) != len(rows):
            kind = kind_for_type(self.child.schema.columns[idx].type.name)
            column = DataColumn.from_values([row[idx] for row in rows], kind)
        cache[idx] = column
        return column

    def _heap_column(self, idx: int) -> Optional[DataColumn]:
        """Zero-copy heap buffer when the child is a bare table scan."""
        node: Operator = self.child
        while isinstance(node, Alias):
            node = node.child
        if isinstance(node, TableScan):
            return node.table.column_values(idx)
        return None

    def _partition_and_sort(
        self, sig, partition, order, rows: List[Row], cache: dict
    ) -> dict:
        """Partition + locally sort the input once per distinct signature.

        Clauses sharing a (PARTITION BY, ORDER BY) signature reuse the
        sorted index lists — the always-on sharing tier.  The lists are
        never re-sorted afterwards, so sharing is safe.
        """
        from repro.obs import runtime

        if sig in cache:
            runtime.get_registry().counter(
                "repro_window_sort_cache_hits_total",
                help="Partition/sort passes served from the shared cache",
            ).inc()
            self.analyze_extra["shared_sorts"] = (
                self.analyze_extra.get("shared_sorts", 0) + 1
            )
            return cache[sig]
        groups: dict = {}
        for i, row in enumerate(rows):
            key = tuple(p(row) for p in partition)
            groups.setdefault(key, []).append(i)
        for indexes in groups.values():
            # Local sort order per reporting function (stable multi-key).
            for key_fn, asc in reversed(order):
                indexes.sort(key=lambda i: key_fn(rows[i]), reverse=not asc)
        cache[sig] = groups
        return groups

    def _evaluate(
        self,
        spec: WindowColumnSpec,
        arg,
        order,
        sig,
        groups: dict,
        rows: List[Row],
        stats: ExecutionStats,
        pool=None,
        measure: Optional[DataColumn] = None,
    ) -> List[float]:
        from repro.obs import runtime

        aggregate = None if spec.is_ranking else by_name(spec.func)
        runtime.get_registry().counter(
            "repro_window_groups_total",
            help="PARTITION BY groups evaluated by the window operator",
        ).inc(len(groups))
        self.analyze_extra["groups"] = len(groups)
        if pool is not None and not spec.is_ranking and not spec.is_range:
            try:
                return self._evaluate_parallel(
                    spec, arg, aggregate, groups, rows, stats, pool, measure
                )
            except ParallelError:
                # Last-ditch degradation: the whole parallel subsystem is
                # unusable (pool broke with fallback disabled, retries
                # exhausted, ...) — recompute this column serially rather
                # than failing the query.
                stats.bump(serial_fallbacks=1)
                self.analyze_extra["strategy"] = "pipelined-fallback"
                runtime.event("window.serial_fallback", spec=spec.name)
        share_key = None
        if (
            self._share_sources is not None
            and pool is None
            and aggregate is not None
            and aggregate.name in ("MIN", "MAX")
            and spec.window is not None
            and spec.window.is_sliding
        ):
            share_key = (
                sig,
                aggregate.name,
                str(spec.arg) if spec.arg is not None else None,
            )
            derived = self._derive_from_sibling(share_key, spec, groups, rows, stats)
            if derived is not None:
                return derived
        seqs: dict = {}
        out = [0.0] * len(rows)
        for gkey, indexes in groups.items():
            stats.rows_sorted += len(indexes)
            if spec.is_ranking:
                values = self._rank(spec.func, indexes, rows, order)
            elif spec.is_range:
                values = self._range_frame(spec, aggregate, arg, indexes, rows, order)
            else:
                if arg is None:
                    raw: Sequence[float] = [1.0] * len(indexes)
                elif measure is not None:
                    raw = self._raw_sequence(arg, measure, indexes, rows)
                else:
                    # The sequence model has no NULLs; absent measures
                    # count as 0 (row fallback for computed arguments).
                    raw = [
                        float(v) if (v := arg(rows[i])) is not None else 0.0
                        for i in indexes
                    ]
                if self.kernel == "vectorized" and spec.window is not None:
                    values = compute_vectorized(raw, spec.window, aggregate)
                else:
                    values = compute_pipelined(
                        raw.tolist() if hasattr(raw, "tolist") else raw,
                        spec.window,
                        aggregate,
                    )
                if share_key is not None:
                    seqs[gkey] = _as_complete_sequence(
                        raw, values, spec.window, aggregate
                    )
            for i, value in zip(indexes, values):
                out[i] = value
        if share_key is not None:
            # Register this clause as a derivation source for later siblings.
            self._share_sources.setdefault(share_key, []).append(
                (spec.window, seqs)
            )
        return out

    def _derive_from_sibling(
        self, share_key, spec: WindowColumnSpec, groups: dict, rows, stats
    ) -> Optional[List[float]]:
        """Factor-window sharing: derive this clause from a sibling's sequence.

        Looks for an already-computed MIN/MAX clause over the same
        partition/order/measure whose (narrower) frame MaxOA-derives this
        clause's frame, and evaluates the derivation per group — exactly
        the paper's view-derivation step, applied between the OVER clauses
        of one query.
        """
        from repro.core import derivation
        from repro.errors import DerivationError
        from repro.obs import runtime

        for view_window, seqs in self._share_sources.get(share_key, ()):
            try:
                chosen = derivation.plan(view_window, spec.window, minmax=True)
            except DerivationError:
                continue
            out = [0.0] * len(rows)
            for gkey, indexes in groups.items():
                stats.rows_sorted += len(indexes)
                values = derivation.derive(seqs[gkey], spec.window, chosen=chosen)
                for i, value in zip(indexes, values):
                    out[i] = value
            runtime.get_registry().counter(
                "repro_window_shared_derivations_total",
                help="Window columns derived from a sibling OVER clause's "
                "sequence (factor-window sharing)",
            ).inc()
            self.analyze_extra["derived"] = self.analyze_extra.get("derived", 0) + 1
            return out
        return None

    @staticmethod
    def _raw_sequence(arg, measure: DataColumn, indexes, rows):
        """Gather one group's raw sequence from the measure column.

        ``take`` + ``as_float64(0.0)`` produces exactly the floats the
        row loop would (NULL -> 0.0, ints promoted losslessly), as a
        float64 array ready for the kernels.
        """
        return measure.take(indexes).as_float64(0.0)

    def _evaluate_parallel(
        self,
        spec: WindowColumnSpec,
        arg,
        aggregate,
        groups: dict,
        rows: List[Row],
        stats: ExecutionStats,
        pool,
        measure: Optional[DataColumn] = None,
    ) -> List[float]:
        """Pool-backed frame evaluation over all PARTITION BY groups at once.

        One flat chunk list covers every group (long groups split within
        themselves), so the workers stay busy regardless of the partition
        size distribution; the merge is ordered, keeping results identical
        to the serial loop.  Column-reference measures are handed over as
        float64 arrays, which the partitioner slices into chunk payloads
        without copying.  Counters go through the thread-safe
        :meth:`~repro.relational.stats.ExecutionStats.bump`.
        """
        from repro.parallel.compute import compute_grouped_parallel

        group_indexes = list(groups.values())
        raws: List[Sequence[float]] = []
        for indexes in group_indexes:
            if arg is None:
                raws.append([1.0] * len(indexes))
            elif measure is not None:
                raws.append(self._raw_sequence(arg, measure, indexes, rows))
            else:
                raws.append(
                    [
                        float(v) if (v := arg(rows[i])) is not None else 0.0
                        for i in indexes
                    ]
                )
        value_lists = compute_grouped_parallel(
            raws, spec.window, aggregate, self.exec_config, pool=pool
        )
        stats.bump(rows_sorted=sum(len(ix) for ix in group_indexes))
        out = [0.0] * len(rows)
        for indexes, values in zip(group_indexes, value_lists):
            for i, value in zip(indexes, values):
                out[i] = value
        return out

    @staticmethod
    def _range_frame(spec, aggregate, arg, indexes, rows, order) -> List[float]:
        """Value-distance (RANGE) frames over one sorted partition.

        For each row with ordering key ``v`` the window holds the rows whose
        key lies in ``[v - low, v + high]`` (None = unbounded); date keys
        measure distance in days.  Two pointers walk the sorted partition,
        maintaining a running sum for the invertible aggregates.
        """
        low, high = spec.range_frame
        key_fn = order[0][0]
        keys = [key_fn(rows[i]) for i in indexes]
        raw = [
            float(v) if arg is not None and (v := arg(rows[i])) is not None
            else (0.0 if arg is not None else 1.0)
            for i in indexes
        ]

        def distance(a, b):
            d = a - b
            return float(d.days) if hasattr(d, "days") else float(d)

        n = len(indexes)
        out: List[float] = []
        lo_ptr, hi_ptr = 0, 0
        running = 0.0
        for i in range(n):
            v = keys[i]
            # Advance hi to include every key <= v + high.
            while hi_ptr < n and (
                high is None or distance(keys[hi_ptr], v) <= high
            ):
                running += raw[hi_ptr]
                hi_ptr += 1
            # Advance lo past every key < v - low.
            while low is not None and lo_ptr < n and distance(v, keys[lo_ptr]) > low:
                running -= raw[lo_ptr]
                lo_ptr += 1
            lo, hi = lo_ptr, hi_ptr  # window is [lo, hi)
            if aggregate.name == "SUM":
                out.append(running)
            elif aggregate.name == "COUNT":
                out.append(float(hi - lo))
            elif aggregate.name == "AVG":
                out.append(running / (hi - lo) if hi > lo else 0.0)
            else:  # MIN / MAX on the (small) slice
                window_vals = raw[lo:hi]
                if not window_vals:
                    out.append(0.0)
                else:
                    out.append(
                        min(window_vals) if aggregate.name == "MIN"
                        else max(window_vals)
                    )
        return out

    @staticmethod
    def _rank(func: str, indexes, rows, order) -> List[float]:
        """ROW_NUMBER / RANK / DENSE_RANK over one sorted partition."""
        if func == "ROW_NUMBER":
            return [float(i + 1) for i in range(len(indexes))]
        keys = [tuple(key_fn(rows[i]) for key_fn, _ in order) for i in indexes]
        out: List[float] = []
        rank = dense = 0
        prev = object()
        for pos, key in enumerate(keys, start=1):
            if key != prev:
                rank = pos
                dense += 1
                prev = key
            out.append(float(rank if func == "RANK" else dense))
        return out

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        for s in self.specs:
            if s.is_ranking:
                parts.append(f"{s.func}() AS {s.name}")
            else:
                parts.append(
                    f"{s.func}({s.arg if s.arg is not None else '*'}) "
                    f"{s.window.to_frame_sql()} AS {s.name}"
                )
        return f"WindowOperator({', '.join(parts)})"


def _as_complete_sequence(raw, values, window, aggregate):
    """Wrap one group's computed core values as a :class:`CompleteSequence`.

    The clause already computed positions ``1..n``; only the header and
    trailer (``l + h`` extra positions) are evaluated naively — cheap for
    the bounded frames MaxOA applies to.
    """
    from repro.core.complete import CompleteSequence
    from repro.core.sequence import SequenceSpec

    raw_list = raw.tolist() if hasattr(raw, "tolist") else list(raw)
    n = len(raw_list)
    sspec = SequenceSpec(window, aggregate)
    pairs = list(zip(range(1, n + 1), values))
    for k in range(1 - window.header_span(), 1):
        pairs.append((k, sspec.value_at(raw_list, k)))
    for k in range(n + 1, n + window.trailer_span() + 1):
        pairs.append((k, sspec.value_at(raw_list, k)))
    return CompleteSequence.from_values(window, aggregate, n, pairs, complete=True)
