"""The paper's relational operator patterns (figs. 2, 4, 5, 10, 13).

Each pattern builds a physical plan over plain tables — no window operator,
no internal caches — exactly the "pure relational model" route the paper
proposes for engines without reporting-function support:

* :func:`self_join_window` (fig. 2) — compute a reporting function from raw
  data via a band self join + GROUP BY.
* :func:`raw_from_cumulative_pattern` (fig. 4) — reconstruct raw values
  from a materialized cumulative view (difference of neighbours via CASE
  negation).
* :func:`sliding_from_cumulative_pattern` (fig. 5) — derive a sliding
  window from a cumulative view (``ỹ_k = x̃_{k+h} - x̃_{k-l-1}``).
* :func:`maxoa_pattern` (fig. 10) and :func:`minoa_pattern` (fig. 13) —
  derive a sliding window from a materialized sliding-window view.  Both
  come in two variants, matching the paper's Table 2 columns:

  - ``"disjunctive"`` — one self join whose predicate ORs the MOD-residue
    branch conditions; only a nested-loop join can evaluate it.
  - ``"union"`` — one simple-predicate query per branch, combined with
    UNION ALL before the final grouping; each branch's residue equality is
    served by a hash join on the computed ``MOD(pos, P)`` keys (the
    optimisation a real optimizer applies to simple predicates).

Conventions: the materialized view table stores the *complete* sequence —
core positions ``1..n`` plus header/trailer rows; patterns filter outputs
back to ``1..n``.  Position columns must be dense consecutive integers
(the paper's relational mappings assume exactly this; ``ROWS`` frames and
position bands then coincide).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.maxoa import check_preconditions as maxoa_preconditions
from repro.core.minoa import check_preconditions as minoa_preconditions
from repro.core.window import WindowSpec
from repro.errors import DerivationError, PlanError
from repro.relational.aggregate import AggSpec, HashAggregate
from repro.relational.engine import Database
from repro.relational.expr import And, CaseExpr, Coalesce, Comparison, Expr, FuncCall, InList, Literal, Or, col, lit
from repro.relational.join import HashJoin, IndexNestedLoopJoin, NestedLoopJoin
from repro.relational.operators import Filter, Operator, Project, Sort, UnionAll

__all__ = [
    "self_join_window",
    "raw_from_cumulative_pattern",
    "sliding_from_cumulative_pattern",
    "maxoa_pattern",
    "minoa_pattern",
]


def _mod(expr: Expr, modulus: int) -> Expr:
    return FuncCall("MOD", (expr, lit(modulus)))


def _resolve_index(db: Database, table: str, pos_col: str, use_index) -> Optional[str]:
    """Name of a sorted index on the position column, honouring ``use_index``.

    ``use_index`` may be ``"auto"`` (use one if present), ``True`` (require
    one), or ``False`` (never use one).
    """
    if use_index is False:
        return None
    tbl = db.table(table)
    index = tbl.find_index([pos_col], sorted_only=True)
    if index is None:
        if use_index is True:
            raise PlanError(
                f"table {table!r} has no sorted index on {pos_col!r}"
            )
        return None
    return index.name


def self_join_window(
    db: Database,
    table: str,
    *,
    window: WindowSpec,
    func: str = "SUM",
    pos_col: str = "pos",
    val_col: str = "val",
    partition_cols: Sequence[str] = (),
    use_index="auto",
    output_name: str = "wval",
) -> Operator:
    """Fig. 2: simulate a reporting function with a self join + GROUP BY.

    Emits ``(partition_cols..., pos, wval)`` sorted by position.  The band
    predicate is ``s2.pos IN (s1.pos - l .. s1.pos + h)`` (``s2.pos <=
    s1.pos`` for cumulative windows), extended with partition-column
    equality when a PARTITION BY is simulated.
    """
    s1 = db.scan(table, "s1")
    pos1, pos2 = col(pos_col, "s1"), col(pos_col, "s2")
    part_eq = [
        Comparison("=", col(c, "s1"), col(c, "s2")) for c in partition_cols
    ]

    index_name = _resolve_index(db, table, pos_col, use_index)
    if window.is_cumulative:
        band_low: Optional[Tuple[Expr, ...]] = None
        band_high = (pos1,)
        predicate: Expr = Comparison("<=", pos2, pos1)
    else:
        band_low = (pos1 - window.l,)
        band_high = (pos1 + window.h,)
        predicate = And(
            Comparison(">=", pos2, pos1 - window.l),
            Comparison("<=", pos2, pos1 + window.h),
        )
    residual = And(*part_eq) if part_eq else None

    if index_name is not None:
        join: Operator = IndexNestedLoopJoin(
            s1,
            db.table(table),
            index_name,
            alias="s2",
            band_low=list(band_low) if band_low else None,
            band_high=list(band_high) if band_high else None,
            residual=residual,
            join_type="inner",
        )
    else:
        full = And(predicate, *part_eq) if part_eq else predicate
        join = NestedLoopJoin(s1, db.scan(table, "s2"), full)

    group = [(col(c, "s1"), c) for c in partition_cols] + [(pos1, pos_col)]
    agg = HashAggregate(join, group, [AggSpec(func, col(val_col, "s2"), output_name)])
    keys = [(col(c), True) for c in partition_cols] + [(col(pos_col), True)]
    return Sort(agg, keys)


def _core_rows(
    db: Database,
    table: str,
    alias: str,
    pos_col: str,
    n: int,
    core_col: Optional[str] = None,
) -> Operator:
    """Scan of the view's core positions (drop header/trailer rows).

    Two filters are supported: a global ``1..n`` position band (the paper's
    single-sequence tables), or a per-row ``core_col`` boolean marker —
    needed for partitioned views where ``n`` differs per partition.
    """
    scan = db.scan(table, alias)
    if core_col is not None:
        return Filter(scan, Comparison("=", col(core_col, alias), lit(True)))
    pos = col(pos_col, alias)
    return Filter(scan, And(Comparison(">=", pos, lit(1)), Comparison("<=", pos, lit(n))))


def raw_from_cumulative_pattern(
    db: Database,
    matseq: str,
    n: int,
    *,
    pos_col: str = "pos",
    val_col: str = "val",
    use_index="auto",
    output_name: str = "val",
) -> Operator:
    """Fig. 4: reconstruct raw values from a cumulative view.

    ``x_k = SUM(CASE WHEN s2.pos = s1.pos THEN val ELSE -val END)`` over the
    neighbour pair ``s2.pos IN (s1.pos - 1, s1.pos)``.
    """
    s1 = _core_rows(db, matseq, "s1", pos_col, n)
    pos1, pos2 = col(pos_col, "s1"), col(pos_col, "s2")
    index_name = _resolve_index(db, matseq, pos_col, use_index)
    if index_name is not None:
        join: Operator = IndexNestedLoopJoin(
            s1,
            db.table(matseq),
            index_name,
            alias="s2",
            band_low=[pos1 - 1],
            band_high=[pos1],
        )
    else:
        join = NestedLoopJoin(
            s1, db.scan(matseq, "s2"), InList(pos2, (pos1 - 1, pos1))
        )
    signed = CaseExpr(
        whens=((Comparison("=", pos1, pos2), col(val_col, "s2")),),
        default=Literal(-1) * col(val_col, "s2"),
    )
    agg = HashAggregate(join, [(pos1, pos_col)], [AggSpec("SUM", signed, output_name)])
    return Sort(agg, [(col(pos_col), True)])


def sliding_from_cumulative_pattern(
    db: Database,
    matseq: str,
    n: int,
    target: WindowSpec,
    *,
    pos_col: str = "pos",
    val_col: str = "val",
    use_index="auto",
    output_name: str = "val",
) -> Operator:
    """Fig. 5: derive a sliding window ``(l, h)`` from a cumulative view.

    ``ỹ_k = x̃_{min(k+h, n)} - x̃_{k-l-1}``; the cumulative view has no
    materialized trailer, so the upper probe clamps to ``n`` (the paper's
    ``x̃_j = x̃_n`` for ``j > n`` convention).  A LEFT OUTER JOIN preserves
    positions whose lower probe falls off the header (``x̃_{<=0} = 0``).
    """
    if not target.is_sliding:
        raise DerivationError("fig. 5 derives sliding windows")
    s1 = _core_rows(db, matseq, "s1", pos_col, n)
    pos1, pos2 = col(pos_col, "s1"), col(pos_col, "s2")
    upper_probe = CaseExpr(
        whens=((Comparison(">", pos1 + target.h, lit(n)), lit(n)),),
        default=pos1 + target.h,
    )
    lower_probe = pos1 - (target.l + 1)
    predicate = Or(
        Comparison("=", pos2, upper_probe), Comparison("=", pos2, lower_probe)
    )
    join = NestedLoopJoin(s1, db.scan(matseq, "s2"), predicate, join_type="left")
    signed = CaseExpr(
        whens=((Comparison("=", pos2, upper_probe), col(val_col, "s2")),),
        default=Literal(-1) * col(val_col, "s2"),
    )
    agg = HashAggregate(
        join, [(pos1, pos_col)], [AggSpec("SUM", Coalesce(signed, lit(0.0)), output_name)]
    )
    return Sort(agg, [(col(pos_col), True)])


def _signed_case(positive_residue: Expr, pos2_mod: Expr, val2: Expr) -> Expr:
    """``CASE WHEN MOD(s2.pos,P) = <positive residue> THEN val ELSE -val END``."""
    return CaseExpr(
        whens=((Comparison("=", pos2_mod, positive_residue), val2),),
        default=Literal(-1) * val2,
    )


def _finalize_with_view(
    db: Database,
    matseq: str,
    n: int,
    inner: Operator,
    *,
    pos_col: str,
    val_col: str,
    add_view_value: bool,
    output_name: str,
    partition_cols: Sequence[str] = (),
    core_col: Optional[str] = None,
) -> Operator:
    """Left-outer-join the compensation aggregate back to the view rows.

    MaxOA adds ``s.val + COALESCE(comp, 0)`` (fig. 10); MinOA only keeps
    ``COALESCE(comp, 0)`` (fig. 13) but still needs the outer join so that
    positions without any join partner are preserved.  The join is a plain
    (partition..., position) equality, which any optimizer serves with a
    hash join.
    """
    s = _core_rows(db, matseq, "s", pos_col, n, core_col)
    join = HashJoin(
        s,
        inner,
        left_keys=[col(c, "s") for c in partition_cols] + [col(pos_col, "s")],
        right_keys=[col(f"inner_{c}") for c in partition_cols] + [col("inner_pos")],
        join_type="left",
    )
    comp = Coalesce(col("comp"), lit(0.0))
    value = (col(val_col, "s") + comp) if add_view_value else comp
    outputs = [(col(c, "s"), c) for c in partition_cols]
    outputs += [(col(pos_col, "s"), pos_col), (value, output_name)]
    project = Project(join, outputs)
    keys = [(col(c), True) for c in partition_cols] + [(col(pos_col), True)]
    return Sort(project, keys)


def maxoa_pattern(
    db: Database,
    matseq: str,
    n: int,
    view: WindowSpec,
    target: WindowSpec,
    *,
    variant: str = "disjunctive",
    pos_col: str = "pos",
    val_col: str = "val",
    partition_cols: Sequence[str] = (),
    core_col: Optional[str] = None,
    use_index="auto",
    output_name: str = "val",
) -> Operator:
    """Fig. 10: the MaxOA derivation as a relational plan.

    Explicit form per output position ``k`` (period ``P = Wx``)::

        ỹ_k = x̃_k + Σ_{i>=1} (x̃_{k-iP} - x̃_{k-iP-Δl})     -- if Δl > 0
                   + Σ_{i>=1} (x̃_{k+iP} - x̃_{k+iP+Δh})     -- if Δh > 0

    Join-branch conditions on ``s2`` (all residues mod ``P``):

    * positive: ``s2.pos ≡ s1.pos`` and strictly left/right/both of ``s1.pos``
      depending on which coverage factors are active;
    * negative left: ``s2.pos < s1.pos - Δl`` and ``s2.pos ≡ s1.pos - Δl``;
    * negative right: ``s2.pos > s1.pos + Δh`` and ``s2.pos ≡ s1.pos + Δh``.

    Raises:
        DerivationError: invalid coverage factors, or ``Δ ≡ 0 (mod P)``
            corner cases the relational CASE cannot disambiguate (the
            paper's precondition ``ly <= hx - 1 + 2·lx`` excludes them too).
    """
    params = maxoa_preconditions(view, target)
    period = params.period
    delta_l, delta_h = params.delta_l, params.delta_h
    if delta_l >= period or delta_h >= period:
        raise DerivationError(
            f"the relational MaxOA pattern requires Δl, Δh < Wx "
            f"(got Δl={delta_l}, Δh={delta_h}, Wx={period}); positive and "
            "negative join branches would share a residue class"
        )
    if delta_l == 0 and delta_h == 0:
        raise DerivationError("target equals view; no derivation needed")

    s1 = _core_rows(db, matseq, "s1", pos_col, n, core_col)
    pos1, pos2 = col(pos_col, "s1"), col(pos_col, "s2")
    val2 = col(val_col, "s2")
    pos1_mod = _mod(pos1, period)
    pos2_mod = _mod(pos2, period)

    # Positive branch: same residue as s1.pos, on the active side(s).
    if delta_l and delta_h:
        pos_cmp: Expr = Comparison("<>", pos2, pos1)
    elif delta_l:
        pos_cmp = Comparison("<", pos2, pos1)
    else:
        pos_cmp = Comparison(">", pos2, pos1)
    branches = [
        (And(pos_cmp, Comparison("=", pos2_mod, pos1_mod)), pos1_mod, pos1_mod)
    ]
    if delta_l:
        left_mod = _mod(pos1 - delta_l, period)
        branches.append(
            (
                And(Comparison("<", pos2, pos1 - delta_l), Comparison("=", pos2_mod, left_mod)),
                left_mod,
                pos1_mod,
            )
        )
    if delta_h:
        right_mod = _mod(pos1 + delta_h, period)
        branches.append(
            (
                And(Comparison(">", pos2, pos1 + delta_h), Comparison("=", pos2_mod, right_mod)),
                right_mod,
                pos1_mod,
            )
        )

    signed = _signed_case(pos1_mod, pos2_mod, val2)
    inner = _combine_branches(
        db,
        matseq,
        s1,
        branches,
        signed,
        variant=variant,
        pos_col=pos_col,
        pos1=pos1,
        pos2=pos2,
        partition_cols=partition_cols,
    )
    return _finalize_with_view(
        db,
        matseq,
        n,
        inner,
        pos_col=pos_col,
        val_col=val_col,
        add_view_value=True,
        output_name=output_name,
        partition_cols=partition_cols,
        core_col=core_col,
    )


def minoa_pattern(
    db: Database,
    matseq: str,
    n: int,
    view: WindowSpec,
    target: WindowSpec,
    *,
    variant: str = "disjunctive",
    pos_col: str = "pos",
    val_col: str = "val",
    partition_cols: Sequence[str] = (),
    core_col: Optional[str] = None,
    use_index="auto",
    output_name: str = "val",
) -> Operator:
    """Fig. 13: the MinOA derivation as a relational plan.

    Explicit form (period ``P = Wx``)::

        ỹ_k = Σ_{i>=0} x̃_{k+Δh-iP} - Σ_{i>=1} x̃_{k-Δl-iP}

    Branch conditions: positive ``s2.pos <= s1.pos + Δh`` with residue of
    ``s1.pos + Δh``; negative ``s2.pos < s1.pos - Δl`` with residue of
    ``s1.pos - Δl``.  Unlike MaxOA, no second reference to the view value is
    needed; the final LEFT OUTER JOIN only protects positions with no join
    partner (fig. 13's remark about the first sequence values).

    Raises:
        DerivationError: when ``Δl + Δh ≡ 0 (mod Wx)`` with a non-identity
            target — the two branches would share a residue class and the
            CASE negation becomes ambiguous.
    """
    params = minoa_preconditions(view, target)
    period = params.period
    delta_l, delta_h = params.delta_l, params.delta_h
    if delta_l == 0 and delta_h == 0:
        raise DerivationError("target equals view; no derivation needed")
    if (delta_l + delta_h) % period == 0:
        raise DerivationError(
            f"the relational MinOA pattern cannot disambiguate its branches "
            f"when Δl + Δh ≡ 0 (mod Wx) (Δl={delta_l}, Δh={delta_h}, "
            f"Wx={period}); use MaxOA or the in-memory MinOA form"
        )

    s1 = _core_rows(db, matseq, "s1", pos_col, n, core_col)
    pos1, pos2 = col(pos_col, "s1"), col(pos_col, "s2")
    val2 = col(val_col, "s2")
    pos2_mod = _mod(pos2, period)
    plus_mod = _mod(pos1 + delta_h, period)
    minus_mod = _mod(pos1 - delta_l, period)

    branches = [
        (
            And(Comparison("<=", pos2, pos1 + delta_h), Comparison("=", pos2_mod, plus_mod)),
            plus_mod,
            plus_mod,
        ),
        (
            And(Comparison("<", pos2, pos1 - delta_l), Comparison("=", pos2_mod, minus_mod)),
            minus_mod,
            plus_mod,
        ),
    ]
    signed = _signed_case(plus_mod, pos2_mod, val2)
    inner = _combine_branches(
        db,
        matseq,
        s1,
        branches,
        signed,
        variant=variant,
        pos_col=pos_col,
        pos1=pos1,
        pos2=pos2,
        partition_cols=partition_cols,
    )
    return _finalize_with_view(
        db,
        matseq,
        n,
        inner,
        pos_col=pos_col,
        val_col=val_col,
        add_view_value=False,
        output_name=output_name,
        partition_cols=partition_cols,
        core_col=core_col,
    )


def _combine_branches(
    db: Database,
    matseq: str,
    s1: Operator,
    branches,
    signed: Expr,
    *,
    variant: str,
    pos_col: str,
    pos1: Expr,
    pos2: Expr,
    partition_cols: Sequence[str] = (),
) -> Operator:
    """Build the compensation aggregate ``(inner_part..., inner_pos, comp)``.

    ``branches`` is a list of ``(predicate, s2_residue_expr,
    s1_residue_expr)`` triples — for the union variant the residue pair
    becomes hash-join keys (computed on each side), with the branch's
    position inequality as the residual.  With ``partition_cols``, partition
    equality is added to the join and the grouping (per-partition
    sequences).
    """
    part_eq = [
        Comparison("=", col(c, "s1"), col(c, "s2")) for c in partition_cols
    ]
    group = [(col(c, "s1"), f"inner_{c}") for c in partition_cols]
    group.append((pos1, "inner_pos"))
    if variant == "disjunctive":
        predicate = Or(*(b[0] for b in branches)) if len(branches) > 1 else branches[0][0]
        if part_eq:
            predicate = And(*part_eq, predicate)
        join = NestedLoopJoin(s1, db.scan(matseq, "s2"), predicate)
        agg = HashAggregate(join, group, [AggSpec("SUM", signed, "comp")])
        return agg
    if variant != "union":
        raise PlanError(f"unknown pattern variant {variant!r}; use 'disjunctive' or 'union'")

    parts = []
    for predicate, branch_residue, _positive_residue in branches:
        # Simple-predicate query: residue equality becomes a hash-join key
        # (branch residue computed over s1, plain MOD(s2.pos, P) over s2,
        # partition columns appended); the position inequality stays as a
        # residual check.
        join = HashJoin(
            s1,
            db.scan(matseq, "s2"),
            left_keys=[branch_residue] + [col(c, "s1") for c in partition_cols],
            right_keys=[_rebind_to_s2(branch_residue, pos_col)]
            + [col(c, "s2") for c in partition_cols],
            residual=predicate,
        )
        outputs = [(col(c, "s1"), f"inner_{c}") for c in partition_cols]
        outputs += [(pos1, "inner_pos"), (signed, "signed_val")]
        parts.append(Project(join, outputs))
    union = UnionAll(parts)
    group_u = [(col(f"inner_{c}"), f"inner_{c}") for c in partition_cols]
    group_u.append((col("inner_pos"), "inner_pos"))
    return HashAggregate(
        union, group_u, [AggSpec("SUM", col("signed_val"), "comp")]
    )


def _rebind_to_s2(residue_expr: Expr, pos_col: str) -> Expr:
    """The right-side hash key is always ``MOD(s2.pos, P)``.

    ``residue_expr`` as constructed always has the shape
    ``MOD(<something over s1>, P)`` for the left side; the matching right
    key is the plain residue of ``s2.pos`` with the same modulus.
    """
    assert isinstance(residue_expr, FuncCall) and residue_expr.name == "MOD"
    modulus = residue_expr.args[1]
    return FuncCall("MOD", (col(pos_col, "s2"), modulus))
