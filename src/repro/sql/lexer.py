"""Tokenizer for the SQL subset.

Produces a flat token list consumed by the recursive-descent parser.
Keywords are case-insensitive and normalised to upper case; identifiers
keep their original spelling.  Comments (``-- ...`` to end of line) are
skipped — the paper's example queries use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexerError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "CASE", "WHEN", "THEN",
    "ELSE", "END", "OVER", "PARTITION", "ROWS", "BETWEEN", "UNBOUNDED",
    "PRECEDING", "FOLLOWING", "CURRENT", "ROW", "ASC", "DESC", "DISTINCT",
    "COALESCE", "TRUE", "FALSE", "UNION", "ALL", "RANGE",
    # DDL / DML
    "CREATE", "TABLE", "INDEX", "DROP", "PRIMARY", "KEY", "UNIQUE",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "ON", "IF",
    "EXISTS", "LIKE",
}

_SYMBOLS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", ".", "+", "-", "*", "/", "%")


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``,
    ``SYMBOL``, ``EOF``; ``value`` holds the normalised text (numbers stay
    as strings until the parser types them).
    """

    kind: str
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.value in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "SYMBOL" and self.value in symbols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text.

    Raises:
        LexerError: unrecognised character or unterminated string literal.
    """
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise LexerError("unterminated string literal", i)
                if text[j] == "'":
                    if text[j : j + 2] == "''":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier separator.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            # Optional exponent: 1e9, 2.5E-3, 4e+2.
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    while k < n and text[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        matched = False
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token("SYMBOL", "<>" if sym == "!=" else sym, i))
                i += len(sym)
                matched = True
                break
        if not matched:
            raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens
