"""Query rewriting against materialized reporting-function views.

Given a parsed reporting-function query and the warehouse's registered
views, the rewriter (1) asks the matcher for candidate views, (2) picks the
cheapest, and (3) executes the derivation — either

* **relationally** (``mode="relational"``): the fig. 10 / fig. 13 operator
  patterns against the view's storage table (the route the paper's
  evaluation measures), available for unpartitioned SUM/COUNT views; or
* **in memory** (``mode="memory"``): the explicit/recursive derivation
  forms over the view's in-memory mirror — needed for partitioned views,
  MIN/MAX, prefix derivations and the section-6 reductions.

``mode="auto"`` prefers the relational route when available, mirroring a
real engine that rewrites the SQL plan.  The rewritten result is returned
as a normal :class:`~repro.relational.engine.Result` plus a
:class:`RewriteInfo` describing what happened — warehouse ``EXPLAIN``
surfaces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import derivation as core_derivation
from repro.core import reporting as core_reporting
from repro.core.window import WindowSpec
from repro.errors import DerivationError, NoRewriteError
from repro.relational.engine import Database, Result
from repro.relational.expr import ColumnRef
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.types import FLOAT
from repro.sql.ast_nodes import SelectStmt, WindowCall
from repro.sql.patterns import (
    maxoa_pattern,
    minoa_pattern,
    raw_from_cumulative_pattern,
    sliding_from_cumulative_pattern,
)
from repro.views.matcher import Match, QueryShape, rank_matches
from repro.views.materialized import MaterializedSequenceView

__all__ = ["RewriteInfo", "describe_rewrite", "estimate_route_costs", "try_rewrite"]

Key = Tuple[object, ...]


@dataclass(frozen=True)
class RewriteInfo:
    """Record of a successful rewrite (surfaced by warehouse EXPLAIN)."""

    view: str
    kind: str
    algorithm: str
    mode: str
    variant: Optional[str]
    description: str


def try_rewrite(
    db: Database,
    stmt: SelectStmt,
    views: Sequence[MaterializedSequenceView],
    *,
    algorithm: str = "auto",
    variant: str = "disjunctive",
    mode: str = "auto",
    planner: str = "rule",
) -> Optional[Tuple[Result, RewriteInfo]]:
    """Attempt to answer ``stmt`` from a materialized view.

    Returns ``None`` when the statement shape is not rewritable or no view
    matches; raises only on internal errors of a chosen rewrite.

    Under ``planner="cost"`` (and fresh base-table statistics) the view
    route is additionally gated on estimated cost: a derivation whose
    per-position work grows with the sequence length (raw reconstruction,
    prefix tiling) loses to a base-table recompute at scale, and the
    rewrite is declined so the planner's base route runs instead.
    """
    shape_info = _rewritable_shape(stmt)
    if shape_info is None:
        return None
    shape, call = shape_info
    matches = rank_matches(shape, list(views))
    if matches:
        if planner == "cost" and not _view_route_wins(db, shape, matches[0]):
            return None
        return _execute_match(
            db, stmt, shape, call, matches[0],
            algorithm=algorithm, variant=variant, mode=mode,
        )
    if shape.func == "AVG":
        return _try_avg_combination(db, stmt, shape, views, mode=mode)
    return None


def _view_route_wins(db: Database, shape: QueryShape, match: Match) -> bool:
    """Cost-compare the matched view route against a base-table recompute.

    True (keep the rewrite) when statistics are absent/stale — the
    rule-based behavior — or when the view's estimated cost is no worse.
    """
    costs = estimate_route_costs(db, shape, match)
    if costs is None:
        return True
    view_cost, base_cost = costs
    return view_cost <= base_cost


def estimate_route_costs(
    db: Database, shape: QueryShape, match: Match
) -> Optional[Tuple[float, float]]:
    """``(view_cost, base_cost)`` in cost-model units, or None without
    fresh statistics for the base table.

    The base route is scan + partition sort + pipelined window; the view
    route is a storage scan plus the derivation's per-position lookups
    (MaxOA touches at most 3 shifted values per position, MinOA one
    sub-window tiling, reconstruction/prefix a whole O(n/Wx) chain).
    """
    from repro.stats.cost import CostModel

    try:
        base_table = db.table(shape.base_table)
    except Exception:  # pragma: no cover - matcher validated the table
        return None
    stats = db.stats.fresh(base_table)
    if stats is None:
        return None
    n = float(stats.row_count)
    cm = CostModel(db.stats.adaptive)

    def _pages(table) -> float:
        # v4 (paged) tables pay per-page fault-in; in-memory tables don't.
        if getattr(table, "is_paged", False):
            return float(getattr(table, "pages_total", 0))
        return 0.0

    base_cost = (
        cm.scan_cost(n, pages=_pages(base_table))
        + cm.sort_cost(n)
        + cm.window_cost("pipelined", n)
    )
    try:
        storage = db.table(match.view.definition.storage_table)
        storage_pages = _pages(storage)
    except Exception:
        storage_pages = 0.0
    view_cost = (
        cm.scan_cost(n, pages=storage_pages)
        + _per_position_lookups(shape, match, n) * n
    )
    return view_cost, base_cost


def _per_position_lookups(shape: QueryShape, match: Match, n: float) -> float:
    """Sequence-value lookups per output position for one match."""
    d_window = match.view.definition.window
    view_width = float(d_window.width) if d_window.is_sliding else 1.0
    if match.kind != "direct" or match.derivation is None:
        # Reductions reconstruct raw data first (section 6).
        return max(n / (2.0 * view_width), 1.0)
    algo = match.derivation.algorithm
    if algo == "identity":
        return 1.0
    if algo == "maxoa":
        return 3.0  # values at k-Δl, k, k+Δh
    if algo == "minoa":
        target_width = (
            float(shape.window.width) if shape.window.is_sliding else 1.0
        )
        return target_width / view_width + 1.0
    if algo == "cumulative":
        return 2.0  # x̃_{k+h} - x̃_{k-l-1}
    # reconstruct / prefix: an O(n/Wx) telescoping chain per position.
    return max(n / (2.0 * view_width), 1.0)


def _try_avg_combination(
    db: Database,
    stmt: SelectStmt,
    shape: QueryShape,
    views: Sequence[MaterializedSequenceView],
    *,
    mode: str,
) -> Optional[Tuple[Result, RewriteInfo]]:
    """Answer an AVG reporting function from a SUM view and a COUNT view.

    Section 2.1: "AVG may be directly derived from SUM and COUNT" — the
    same holds at the view level.  Both component shapes must be
    independently answerable; the quotient is taken per output row.
    """
    from dataclasses import replace

    sum_shape = replace(shape, func="SUM")
    count_shape = replace(shape, func="COUNT")
    sum_matches = rank_matches(sum_shape, list(views))
    count_matches = rank_matches(count_shape, list(views))
    if not sum_matches or not count_matches:
        return None
    component_mode = "memory" if mode == "auto" else mode
    sum_rows, sum_stats, sum_info = _match_rows(
        db, sum_shape, sum_matches[0],
        algorithm="auto", variant="disjunctive", mode=component_mode)
    count_rows, count_stats, count_info = _match_rows(
        db, count_shape, count_matches[0],
        algorithm="auto", variant="disjunctive", mode=component_mode)

    key_cols = list(shape.partition_by) + list(shape.order_by)
    counts = {
        tuple(row[c] for c in key_cols): row["__window__"] for row in count_rows
    }
    rows: List[Dict[str, object]] = []
    for row in sum_rows:
        key = tuple(row[c] for c in key_cols)
        count = counts.get(key)
        quotient = row["__window__"] / count if count else None
        rows.append({**row, "__window__": quotient})
    sum_stats.merge(count_stats)
    info = RewriteInfo(
        f"{sum_info.view}+{count_info.view}",
        "avg_combination",
        f"{sum_info.algorithm}+{count_info.algorithm}",
        component_mode,
        None,
        f"AVG = SUM/COUNT combined from views {sum_info.view!r} and "
        f"{count_info.view!r}",
    )
    return _assemble(db, stmt, shape, rows, sum_stats), info


def describe_rewrite(
    db: Database,
    stmt: SelectStmt,
    views: Sequence[MaterializedSequenceView],
    *,
    algorithm: str = "auto",
    variant: str = "disjunctive",
    mode: str = "auto",
    planner: str = "rule",
) -> Optional[RewriteInfo]:
    """Plan (but do not execute) the rewrite ``try_rewrite`` would choose.

    Used by warehouse EXPLAIN so that explaining a query stays cheap.
    Returns None when the query would not be rewritten.  The AVG
    combination is described when both component views match.
    """
    shape_info = _rewritable_shape(stmt)
    if shape_info is None:
        return None
    shape, _call = shape_info
    matches = rank_matches(shape, list(views))
    if matches:
        match = matches[0]
        if planner == "cost" and not _view_route_wins(db, shape, match):
            return None
        view = match.view
        if match.kind == "direct":
            dplan = match.derivation
            if algorithm != "auto" and dplan is not None and dplan.algorithm != algorithm:
                try:
                    dplan = core_derivation.plan(
                        view.definition.window,
                        shape.window,
                        minmax=view.definition.aggregate.duplicate_insensitive,
                        algorithm=algorithm,
                    )
                except DerivationError:
                    return None
            assert dplan is not None
            relational = (
                mode != "memory"
                and dplan.algorithm
                in ("identity", "maxoa", "minoa", "cumulative", "reconstruct")
                and (view.definition.aggregate.invertible or dplan.algorithm == "identity")
                and (not view.is_partitioned or dplan.algorithm != "cumulative")
            )
            return RewriteInfo(
                view.name,
                "direct",
                dplan.algorithm,
                "relational" if relational else "memory",
                variant if relational else None,
                dplan.describe(),
            )
        return RewriteInfo(
            view.name,
            match.kind,
            "reconstruct+recompute"
            if match.kind == "partition_reduction"
            else "prefix-tiling",
            "memory",
            None,
            match.describe(),
        )
    if shape.func == "AVG":
        from dataclasses import replace

        sum_matches = rank_matches(replace(shape, func="SUM"), list(views))
        count_matches = rank_matches(replace(shape, func="COUNT"), list(views))
        if sum_matches and count_matches:
            return RewriteInfo(
                f"{sum_matches[0].view.name}+{count_matches[0].view.name}",
                "avg_combination",
                "sum/count",
                "memory",
                None,
                "AVG = SUM/COUNT combined from two views",
            )
    return None


def _rewritable_shape(stmt: SelectStmt) -> Optional[Tuple[QueryShape, WindowCall]]:
    if len(stmt.tables) != 1 or stmt.group_by or stmt.having is not None:
        return None
    if stmt.tables[0].is_subquery:
        return None
    calls = stmt.window_calls()
    if len(calls) != 1:
        return None
    if stmt.aggregate_calls():
        return None
    shape = QueryShape.from_call(stmt.tables[0].name, calls[0], stmt.where)
    if shape is None:
        return None
    # Plain select items must be partition/order columns of the query.
    allowed = set(shape.partition_by) | set(shape.order_by)
    for item in stmt.items:
        if item.star:
            return None
        if isinstance(item.value, WindowCall):
            continue
        if not isinstance(item.value, ColumnRef) or item.value.name not in allowed:
            return None
    return shape, calls[0]


def _execute_match(
    db: Database,
    stmt: SelectStmt,
    shape: QueryShape,
    call: WindowCall,
    match: Match,
    *,
    algorithm: str,
    variant: str,
    mode: str,
) -> Tuple[Result, RewriteInfo]:
    rows, stats, info = _match_rows(
        db, shape, match, algorithm=algorithm, variant=variant, mode=mode
    )
    return _assemble(db, stmt, shape, rows, stats), info


def _match_rows(
    db: Database,
    shape: QueryShape,
    match: Match,
    *,
    algorithm: str,
    variant: str,
    mode: str,
) -> Tuple[List[Dict[str, object]], ExecutionStats, RewriteInfo]:
    """Derive the labelled output rows for one match (no final projection)."""
    view = match.view
    if match.kind == "direct":
        return _direct_rows(
            db, shape, match, algorithm=algorithm, variant=variant, mode=mode
        )
    if match.kind == "partition_reduction":
        derived = core_reporting.partitioning_reduction(
            view.reporting,
            shape.partition_by,
            target_window=shape.window,
        )
        rows = _rows_from_reporting(derived, shape, drop_tiebreak=True)
        info = RewriteInfo(
            view.name,
            "partition_reduction",
            "reconstruct+recompute",
            "memory",
            None,
            f"partitioning reduction {view.definition.partition_by} -> "
            f"{shape.partition_by}",
        )
        return rows, ExecutionStats(), info
    if match.kind == "ordering_reduction":
        drop = len(view.definition.order_by) - len(shape.order_by)
        derived = core_reporting.ordering_reduction(
            view.reporting, drop, target_window=shape.window
        )
        rows = _rows_from_reporting(derived, shape)
        info = RewriteInfo(
            view.name,
            "ordering_reduction",
            "prefix-tiling",
            "memory",
            None,
            f"ordering reduction {view.definition.order_by} -> {shape.order_by}",
        )
        return rows, ExecutionStats(), info
    raise NoRewriteError(f"unknown match kind {match.kind!r}")  # pragma: no cover


def _direct_rows(
    db: Database,
    shape: QueryShape,
    match: Match,
    *,
    algorithm: str,
    variant: str,
    mode: str,
) -> Tuple[List[Dict[str, object]], ExecutionStats, RewriteInfo]:
    view = match.view
    d = view.definition
    dplan = match.derivation
    if algorithm != "auto" and dplan is not None and dplan.algorithm != algorithm:
        dplan = core_derivation.plan(
            d.window,
            shape.window,
            minmax=d.aggregate.duplicate_insensitive,
            algorithm=algorithm,
        )
    assert dplan is not None

    # The cumulative-view patterns (figs. 4/5) are built for one global
    # sequence; everything else now supports partitioned views too.
    partition_ok = not view.is_partitioned or dplan.algorithm in (
        "identity", "maxoa", "minoa", "reconstruct"
    )
    relational_ok = partition_ok and (
        dplan.algorithm in ("identity", "maxoa", "minoa", "cumulative", "reconstruct")
        and d.aggregate.invertible
        or dplan.algorithm == "identity"
    )
    use_relational = mode == "relational" or (mode == "auto" and relational_ok)
    if use_relational and not relational_ok:
        raise NoRewriteError(
            f"relational rewrite unavailable for {dplan.algorithm} over a "
            f"{'partitioned ' if view.is_partitioned else ''}"
            f"{d.aggregate_name} view"
        )

    from repro.obs import runtime

    if use_relational:
        n = 0 if view.is_partitioned else view.single_partition().seq.n
        try:
            plan = _relational_plan(
                db,
                d.storage_table,
                n,
                d.window,
                shape.window,
                dplan,
                variant,
                partition_cols=d.partition_by,
            )
        except DerivationError:
            if mode == "relational":
                raise
            # Relational corner case (e.g. MinOA residue collision,
            # Δl + Δh ≡ 0 mod Wx): the in-memory form below handles it.
            plan = None
        if plan is not None:
            with runtime.get_tracer().span(
                "view.derive",
                view=view.name, algorithm=dplan.algorithm,
                mode="relational", variant=variant,
            ):
                exec_result = db.run(plan)
            _count_derivation(dplan.algorithm, "relational")
            n_part = len(d.partition_by)
            rows = []
            for row in exec_result.rows:
                pkey = tuple(row[:n_part])
                pos = row[n_part]
                rows.extend(
                    _label_values(view, pkey, [row[-1]], shape, start_pos=pos)
                )
            info = RewriteInfo(
                view.name, "direct", dplan.algorithm, "relational", variant, dplan.describe()
            )
            return rows, exec_result.stats, info

    # In-memory derivation, partition-wise.
    with runtime.get_tracer().span(
        "view.derive",
        view=view.name, algorithm=dplan.algorithm, mode="memory",
    ):
        rows: List[Dict[str, object]] = []
        for pkey, part in view.reporting.partitions.items():
            values = core_derivation.derive(
                part.seq, shape.window, chosen=dplan, form="recursive"
            )
            rows.extend(_label_values(view, pkey, values, shape))
    _count_derivation(dplan.algorithm, "memory")
    info = RewriteInfo(
        view.name, "direct", dplan.algorithm, "memory", None, dplan.describe()
    )
    return rows, ExecutionStats(), info


def _count_derivation(algorithm: str, mode: str) -> None:
    from repro.obs import runtime

    runtime.get_registry().counter(
        "repro_views_derivations_total",
        {"algorithm": algorithm, "mode": mode},
        help="Queries answered by deriving from a materialized view",
    ).inc()


def _relational_plan(
    db: Database,
    storage: str,
    n: int,
    view_window: WindowSpec,
    target: WindowSpec,
    dplan,
    variant: str,
    partition_cols=(),
):
    from repro.relational.expr import Comparison, col, lit
    from repro.relational.operators import Filter, Project, Sort

    kw = dict(
        pos_col="__pos",
        val_col="__val",
        partition_cols=tuple(partition_cols),
        core_col="__core",
    )
    algo = dplan.algorithm
    if algo == "identity":
        scan = db.scan(storage, "s")
        core = Filter(scan, Comparison("=", col("__core", "s"), lit(True)))
        outputs = [(col(c, "s"), c) for c in partition_cols]
        outputs += [(col("__pos", "s"), "pos"), (col("__val", "s"), "val")]
        proj = Project(core, outputs)
        keys = [(col(c), True) for c in partition_cols] + [(col("pos"), True)]
        return Sort(proj, keys)
    if algo == "maxoa":
        return maxoa_pattern(db, storage, n, view_window, target, variant=variant, **kw)
    if algo == "minoa":
        return minoa_pattern(db, storage, n, view_window, target, variant=variant, **kw)
    if algo == "cumulative":
        cum_kw = dict(pos_col="__pos", val_col="__val")
        if target.is_point:
            return raw_from_cumulative_pattern(db, storage, n, **cum_kw)
        return sliding_from_cumulative_pattern(db, storage, n, target, **cum_kw)
    if algo == "reconstruct":
        # Raw reconstruction from a sliding view is MinOA with target (0,0).
        return minoa_pattern(db, storage, n, view_window, WindowSpec.point(), variant=variant, **kw)
    raise NoRewriteError(f"no relational pattern for algorithm {algo!r}")


def _label_values(
    view: MaterializedSequenceView,
    pkey: Key,
    values: Sequence[float],
    shape: QueryShape,
    start_pos: int = 1,
) -> List[Dict[str, object]]:
    """Attach partition/order keys to derived per-position values."""
    d = view.definition
    part = view.reporting.partition(pkey)
    rows = []
    for i, value in enumerate(values):
        row: Dict[str, object] = {}
        for c, v in zip(d.partition_by, pkey):
            row[c] = v
        for c, v in zip(d.order_by, part.order_keys[start_pos - 1 + i]):
            row[c] = v
        row["__window__"] = value
        rows.append(row)
    return rows


def _rows_from_reporting(
    derived: core_reporting.ReportingSequence,
    shape: QueryShape,
    *,
    drop_tiebreak: bool = False,
) -> List[Dict[str, object]]:
    rows = []
    order_cols = list(derived.order_by)
    if drop_tiebreak and order_cols and order_cols[-1] == "__drop__":
        order_cols = order_cols[:-1]
    for pkey, okey, value in derived.values():
        row: Dict[str, object] = {}
        for c, v in zip(derived.partition_by, pkey):
            row[c] = v
        for c, v in zip(order_cols, okey):
            row[c] = v
        row["__window__"] = value
        rows.append(row)
    return rows


def _assemble(
    db: Database,
    stmt: SelectStmt,
    shape: QueryShape,
    rows: List[Dict[str, object]],
    stats: ExecutionStats,
) -> Result:
    """Project the labelled rows into the statement's select-item order."""
    base = db.table(shape.base_table)
    columns: List[Column] = []
    pickers = []
    for i, item in enumerate(stmt.items):
        if isinstance(item.value, WindowCall):
            name = item.alias or f"{item.value.func.lower()}_over_{i}"
            columns.append(Column(name, FLOAT))
            pickers.append("__window__")
        else:
            assert isinstance(item.value, ColumnRef)
            col_name = item.value.name
            name = item.alias or col_name
            columns.append(Column(name, base.schema.column(col_name).type))
            pickers.append(col_name)
    out_schema = Schema(columns)
    out_rows = [tuple(row[p] for p in pickers) for row in rows]
    result = Result(out_schema, out_rows, stats)

    if stmt.order_by:
        keyed = []
        for o in stmt.order_by:
            compiled = o.expr.bind(out_schema)
            keyed.append((compiled, o.ascending))
        for compiled, asc in reversed(keyed):
            result.rows.sort(key=compiled, reverse=not asc)
    if stmt.limit is not None:
        result.rows = result.rows[: stmt.limit]
    return result
