"""repro — Processing Reporting Function Views in a Data Warehouse Environment.

A full reproduction of Lehner, Hümmer & Schlesinger (ICDE 2002): the
sequence algebra of SQL reporting (window) functions, materialized
sequence views with incremental maintenance, the MaxOA/MinOA derivation
algorithms with their pure-relational operator patterns, and a data
warehouse facade with transparent query rewriting — all on top of a
from-scratch in-memory relational engine.

Quick start::

    from repro import DataWarehouse

    wh = DataWarehouse()
    wh.create_table("seq", [("pos", "INTEGER"), ("val", "FLOAT")],
                    primary_key=["pos"])
    wh.insert("seq", [(i, float(i)) for i in range(1, 101)])
    wh.create_view("mv", "SELECT pos, SUM(val) OVER (ORDER BY pos "
                         "ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s "
                         "FROM seq")
    res = wh.query("SELECT pos, SUM(val) OVER (ORDER BY pos "
                   "ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS s FROM seq")
    print(res.rewrite)   # answered from 'mv' via MaxOA/MinOA
"""

from repro.core import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    Aggregate,
    CompleteSequence,
    DerivationPlan,
    MaintenanceResult,
    PositionFunction,
    ReportingSequence,
    SequenceSpec,
    WindowSpec,
    apply_delete,
    apply_insert,
    apply_update,
    compute,
    compute_naive,
    compute_pipelined,
    cumulative,
    derivable,
    derive,
    ordering_reduction,
    partitioning_reduction,
    plan,
    raw_from_cumulative,
    raw_from_sliding,
    sliding,
    sliding_from_cumulative,
)
from repro.errors import (
    DerivationError,
    IncompleteSequenceError,
    MaintenanceError,
    NoRewriteError,
    ParallelError,
    ReproError,
    SequenceError,
    ViewError,
    WindowError,
)
from repro.parallel import (
    ExecutionConfig,
    ExecutorPool,
    Partitioner,
    compute_parallel,
)
from repro.relational import Database, Result
from repro.views import MaterializedSequenceView, SequenceViewDefinition
from repro.warehouse import DataWarehouse, QueryResult

__version__ = "1.0.0"

__all__ = [
    "AVG",
    "Aggregate",
    "COUNT",
    "CompleteSequence",
    "Database",
    "DataWarehouse",
    "DerivationError",
    "DerivationPlan",
    "ExecutionConfig",
    "ExecutorPool",
    "IncompleteSequenceError",
    "MAX",
    "MIN",
    "MaintenanceError",
    "MaintenanceResult",
    "MaterializedSequenceView",
    "NoRewriteError",
    "ParallelError",
    "Partitioner",
    "PositionFunction",
    "QueryResult",
    "ReportingSequence",
    "ReproError",
    "Result",
    "SUM",
    "SequenceError",
    "SequenceSpec",
    "SequenceViewDefinition",
    "ViewError",
    "WindowError",
    "WindowSpec",
    "apply_delete",
    "apply_insert",
    "apply_update",
    "compute",
    "compute_naive",
    "compute_parallel",
    "compute_pipelined",
    "cumulative",
    "derivable",
    "derive",
    "ordering_reduction",
    "partitioning_reduction",
    "plan",
    "raw_from_cumulative",
    "raw_from_sliding",
    "sliding",
    "sliding_from_cumulative",
    "__version__",
]
