"""Thread-safe warehouse wrapper with epoch-pinned snapshot reads.

:class:`ConcurrentWarehouse` turns the single-caller
:class:`~repro.warehouse.warehouse.DataWarehouse` into a multi-reader /
serialized-writer system:

* **Writers serialize** on one lock.  Every committing write publishes a
  new epoch to an :class:`~repro.serve.epochs.EpochStore`.
* **Readers never block.**  A query pins the epoch current when it
  started and runs against that epoch's table and view versions — a view
  refresh or maintenance op committing epoch N+1 mid-query cannot change
  (or tear) the answer at epoch N.
* **Copy-on-write discipline:** refresh already builds brand-new objects
  (the epoch-versioned shadow table + atomic catalog swap from the
  crash-consistency work), so it is naturally snapshot-safe.  Operations
  that historically mutated state *in place* — incremental maintenance,
  base inserts, index builds, verify-time corruption hooks — first install
  clones of every table (and view mirror) they are about to touch, so
  published epochs stay frozen forever.

Reads are answered by a *snapshot warehouse*: a throwaway
``DataWarehouse`` assembled over the pinned epoch's frozen objects (no
data copied), carrying the session's own
:class:`~repro.parallel.config.ExecutionConfig`.  Because snapshot tables
are immutable, any number of readers may share them across threads.

Fault injection: the ``session_kill`` fault kind fires at the
``serve_query`` site — after the epoch is pinned, before execution — and
surfaces as :class:`~repro.errors.SessionKilledError`.  The pin is
released on *every* exit path, so a killed session leaves the epoch store
clean (no pinned, no orphaned epochs).
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConcurrencyError, InjectedFault, SessionKilledError
from repro.relational.catalog import Catalog
from repro.relational.engine import Database
from repro.serve.epochs import EpochStore, Pin, Snapshot, ViewState
from repro.views.materialized import MaterializedSequenceView
from repro.warehouse.warehouse import DataWarehouse, QueryResult

__all__ = ["ConcurrentWarehouse", "SnapshotHandle"]


def _warehouse_at(snapshot: Snapshot, execution) -> DataWarehouse:
    """Assemble a read-only DataWarehouse over one epoch's frozen objects.

    Nothing is copied: the catalog maps names to the snapshot's table
    objects and each view facade is rebound to the snapshot's frozen
    mirror/raw state.  The result is safe to use from any thread because
    every object it can reach is immutable by the writer COW discipline.
    """
    wh = DataWarehouse.__new__(DataWarehouse)
    db = Database()
    db.catalog = Catalog(dict(snapshot.tables))
    wh.db = db
    wh.cache = None
    wh.execution = execution
    wh.slow_queries = None
    wh.incidents = []
    wh._concurrent_owner = None
    views: Dict[str, MaterializedSequenceView] = {}
    for name, state in snapshot.views.items():
        view = MaterializedSequenceView.__new__(MaterializedSequenceView)
        view.db = db
        view.definition = state.definition
        view.complete = state.complete
        view.exec_config = execution
        view.reporting = state.reporting
        view.raw = state.raw
        view.epoch = state.view_epoch
        view.quarantined = state.quarantined
        view.quarantine_reason = state.quarantine_reason
        views[name] = view
    wh.views = views
    return wh


class SnapshotHandle:
    """Context manager exposing reads against one pinned epoch."""

    def __init__(self, owner: "ConcurrentWarehouse", pin: Pin) -> None:
        self._owner = owner
        self._pin = pin

    @property
    def epoch(self) -> int:
        return self._pin.epoch

    @property
    def snapshot(self) -> Snapshot:
        return self._pin.snapshot

    def query(self, sql: str, *, config=None, **options: Any) -> QueryResult:
        """Run a SELECT at this epoch (bit-identical until released)."""
        wh = _warehouse_at(self._pin.snapshot, config)
        result = wh.query(sql, **options)
        result.epoch = self._pin.epoch
        self._owner._note_read_incidents(wh.incidents)
        return result

    def value_at(self, view_name: str, order_key, **kwargs: Any):
        """Point lookup at this epoch (see ``DataWarehouse.value_at``)."""
        return _warehouse_at(self._pin.snapshot, None).value_at(
            view_name, order_key, **kwargs
        )

    def explain(self, sql: str, **options: Any) -> str:
        return _warehouse_at(self._pin.snapshot, None).explain(sql, **options)

    def release(self) -> None:
        self._pin.release()

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class ConcurrentWarehouse:
    """Serialized-writer / snapshot-reader facade over a DataWarehouse.

    Args:
        warehouse: an existing warehouse to take ownership of (it must no
            longer be mutated directly — the ownership guard enforces
            this), or ``None`` to create a fresh one.
        execution: default ExecutionConfig for *writes* (refresh &
            maintenance band recomputation); readers carry their own
            per-session config.
    """

    def __init__(self, warehouse: Optional[DataWarehouse] = None, *,
                 execution=None) -> None:
        wh = warehouse if warehouse is not None else DataWarehouse(execution=execution)
        if getattr(wh, "_concurrent_owner", None) is not None:
            raise ConcurrencyError(
                "warehouse is already owned by another ConcurrentWarehouse"
            )
        self._wh = wh
        self._write_lock = threading.RLock()
        self._local = threading.local()
        self.epochs = EpochStore()
        wh._concurrent_owner = self
        with self._write_lock:
            self._mark_write()
            try:
                self._publish()
            finally:
                self._unmark_write()

    # -- ownership / write-section bookkeeping -------------------------------

    @property
    def warehouse(self) -> DataWarehouse:
        """The owned warehouse (mutate it only through this wrapper)."""
        return self._wh

    @property
    def in_write_section(self) -> bool:
        """True on a thread currently inside this wrapper's write path."""
        return getattr(self._local, "depth", 0) > 0

    def _mark_write(self) -> None:
        self._local.depth = getattr(self._local, "depth", 0) + 1

    def _unmark_write(self) -> None:
        self._local.depth -= 1

    # -- write path ----------------------------------------------------------

    def _write(self, fn, *, cow_tables: Iterable[str] = (),
               cow_views: Iterable[str] = ()):
        """Run one mutation serialized, copy-on-write, and publish an epoch.

        The clone step installs fresh table objects (and view mirrors) in
        the *live* catalog for everything ``fn`` will mutate in place;
        epochs published earlier keep the originals.  The commit publishes
        even when ``fn`` raises: partial effects that stand by design
        (e.g. a failed refresh quarantining its view) must become visible
        to new readers.
        """
        with self._write_lock:
            self._mark_write()
            try:
                for name in cow_tables:
                    if self._wh.db.catalog.has_table(name):
                        self._wh.db.catalog.replace(
                            self._wh.db.table(name).clone()
                        )
                for name in cow_views:
                    view = self._wh.views.get(name)
                    if view is not None:
                        view.reporting = copy.deepcopy(view.reporting)
                        view.raw = {k: list(v) for k, v in view.raw.items()}
                return fn()
            finally:
                self._publish()
                self._unmark_write()

    def _publish(self) -> Snapshot:
        tables = {t.name: t for t in self._wh.db.catalog.tables()}
        views = {
            name: ViewState(
                definition=v.definition,
                complete=v.complete,
                reporting=v.reporting,
                raw=v.raw,
                view_epoch=v.epoch,
                quarantined=v.quarantined,
                quarantine_reason=v.quarantine_reason,
            )
            for name, v in self._wh.views.items()
        }
        return self.epochs.publish(tables, views)

    def _maintenance_cow(self, table: str) -> Dict[str, List[str]]:
        """COW targets of one base-data change: the table, plus every
        dependent view's storage table and in-memory mirror."""
        dependents = [
            v for v in self._wh.views.values()
            if v.definition.base_table == table
        ]
        return {
            "tables": [table] + [v.definition.storage_table for v in dependents],
            "views": [v.name for v in dependents],
        }

    # -- mutations (all serialized, all publish) -----------------------------

    def create_table(self, name: str, columns, **kwargs):
        return self._write(lambda: self._wh.create_table(name, columns, **kwargs))

    def drop_table(self, name: str, **kwargs) -> None:
        return self._write(lambda: self._wh.drop_table(name, **kwargs))

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        return self._write(
            lambda: self._wh.insert(table, rows), cow_tables=[table]
        )

    def create_index(self, table: str, name: str, columns, **kwargs):
        return self._write(
            lambda: self._wh.create_index(table, name, columns, **kwargs),
            cow_tables=[table],
        )

    def create_view(self, name: str, definition, *, complete: bool = True):
        return self._write(
            lambda: self._wh.create_view(name, definition, complete=complete)
        )

    def drop_view(self, name: str) -> None:
        return self._write(lambda: self._wh.drop_view(name))

    def refresh_view(self, name: str) -> None:
        # Refresh is already copy-on-write: it stages a shadow storage
        # table and fresh mirrors, then swaps atomically.
        return self._write(lambda: self._wh.refresh_view(name))

    def update_measure(self, table: str, **kwargs) -> List[Any]:
        cow = self._maintenance_cow(table)
        return self._write(
            lambda: self._wh.update_measure(table, **kwargs),
            cow_tables=cow["tables"], cow_views=cow["views"],
        )

    def insert_row(self, table: str, values: Sequence[Any]) -> List[Any]:
        cow = self._maintenance_cow(table)
        return self._write(
            lambda: self._wh.insert_row(table, values),
            cow_tables=cow["tables"], cow_views=cow["views"],
        )

    def delete_row(self, table: str, *, keys: Dict[str, Any]) -> List[Any]:
        cow = self._maintenance_cow(table)
        return self._write(
            lambda: self._wh.delete_row(table, keys=keys),
            cow_tables=cow["tables"], cow_views=cow["views"],
        )

    def repair(self, name: Optional[str] = None) -> Dict[str, Any]:
        return self._write(lambda: self._wh.repair(name))

    def quarantine_view(self, name: str, reason: str) -> None:
        return self._write(lambda: self._wh.quarantine_view(name, reason))

    def verify(self, *, quarantine: bool = True):
        # The verify-time bitflip fault hook corrupts storage in place;
        # COW every storage table so pinned epochs stay pristine.
        storages = [
            v.definition.storage_table for v in self._wh.views.values()
        ]
        return self._write(
            lambda: self._wh.verify(quarantine=quarantine),
            cow_tables=storages,
        )

    def save(self, directory: str, **kwargs) -> None:
        """Persist under the write lock (exclusive with writers; readers
        keep serving their pinned epochs meanwhile)."""
        with self._write_lock:
            self._mark_write()
            try:
                self._wh.save(directory, **kwargs)
            finally:
                self._unmark_write()

    @classmethod
    def load(cls, directory: str, *, execution=None) -> "ConcurrentWarehouse":
        """Load a saved warehouse and wrap it for concurrent serving."""
        wh = DataWarehouse.load(directory)
        wh.execution = execution
        return cls(wh)

    def release(self) -> DataWarehouse:
        """Relinquish ownership: the warehouse becomes single-caller again.

        The caller is responsible for quiescing readers first — snapshots
        pinned before release keep working (their objects are frozen), but
        subsequent direct mutations will not publish epochs for them.
        """
        with self._write_lock:
            self._wh._concurrent_owner = None
            return self._wh

    # -- reads (never block on the write lock) -------------------------------

    def pin(self) -> SnapshotHandle:
        """Pin the current epoch; release via context manager or .release()."""
        return SnapshotHandle(self, self.epochs.pin())

    def query(self, sql: str, *, config=None, session: str = "",
              hold_ms: float = 0.0, **options: Any) -> QueryResult:
        """Run one SELECT at the epoch current when the call started.

        Args:
            config: the session's ExecutionConfig (``None`` = serial).
            session: session id, used as the fault-injection target for
                ``session_kill`` specs.
            hold_ms: artificially hold the pin for this long before
                executing — a deterministic aid for backpressure tests and
                the serving benchmark (refreshes committed during the hold
                must not change the answer).

        Raises:
            SessionKilledError: a ``session_kill`` fault fired mid-query;
                the pinned epoch is released before raising.
        """
        import time

        from repro.faults import injector

        with self.pin() as snap:
            try:
                injector.check("serve_query", session)
            except InjectedFault as exc:
                raise SessionKilledError(
                    f"session {session or '<anonymous>'} killed mid-query "
                    f"at epoch {snap.epoch}: {exc}"
                ) from exc
            if hold_ms > 0:
                time.sleep(hold_ms / 1000.0)
            return snap.query(sql, config=config, **options)

    def value_at(self, view_name: str, order_key, **kwargs: Any):
        with self.pin() as snap:
            return snap.value_at(view_name, order_key, **kwargs)

    def explain(self, sql: str, **options: Any) -> str:
        with self.pin() as snap:
            return snap.explain(sql, **options)

    # -- delegation / inspection ---------------------------------------------

    def view_names(self) -> List[str]:
        with self._write_lock:
            return sorted(self._wh.views)

    def quarantined_views(self) -> List[str]:
        with self._write_lock:
            return self._wh.quarantined_views()

    @property
    def incidents(self) -> List[str]:
        return self._wh.incidents

    def _note_read_incidents(self, incidents: List[str]) -> None:
        # Degradations observed by snapshot readers (e.g. a rewrite that
        # fell back to base data) surface on the live incident log.
        if incidents:
            self._wh.incidents.extend(incidents)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConcurrentWarehouse(epoch={self.epochs.latest_epoch}, "
            f"views={self.view_names()})"
        )
