"""Thread-safe warehouse wrapper with epoch-pinned snapshot reads.

:class:`ConcurrentWarehouse` turns the single-caller
:class:`~repro.warehouse.warehouse.DataWarehouse` into a multi-reader /
serialized-writer system:

* **Writers serialize** on one lock.  Every committing write publishes a
  new epoch to an :class:`~repro.serve.epochs.EpochStore`.
* **Readers never block.**  A query pins the epoch current when it
  started and runs against that epoch's table and view versions — a view
  refresh or maintenance op committing epoch N+1 mid-query cannot change
  (or tear) the answer at epoch N.
* **Copy-on-write discipline:** refresh already builds brand-new objects
  (the epoch-versioned shadow table + atomic catalog swap from the
  crash-consistency work), so it is naturally snapshot-safe.  Operations
  that historically mutated state *in place* — incremental maintenance,
  base inserts, index builds, verify-time corruption hooks — first install
  clones of every table (and view mirror) they are about to touch, so
  published epochs stay frozen forever.

Reads are answered by a *snapshot warehouse*: a throwaway
``DataWarehouse`` assembled over the pinned epoch's frozen objects (no
data copied), carrying the session's own
:class:`~repro.parallel.config.ExecutionConfig`.  Because snapshot tables
are immutable, any number of readers may share them across threads.

Fault injection: the ``session_kill`` fault kind fires at the
``serve_query`` site — after the epoch is pinned, before execution — and
surfaces as :class:`~repro.errors.SessionKilledError`.  The pin is
released on *every* exit path, so a killed session leaves the epoch store
clean (no pinned, no orphaned epochs).
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import (
    ConcurrencyError,
    DivergenceError,
    InjectedFault,
    ReplicationError,
    SessionKilledError,
)
from repro.relational.catalog import Catalog
from repro.relational.engine import Database
from repro.serve.epochs import EpochStore, Pin, Snapshot, ViewState
from repro.views.materialized import MaterializedSequenceView
from repro.warehouse.warehouse import DataWarehouse, QueryResult

__all__ = ["ConcurrentWarehouse", "SnapshotHandle"]


def _warehouse_at(snapshot: Snapshot, execution) -> DataWarehouse:
    """Assemble a read-only DataWarehouse over one epoch's frozen objects.

    Nothing is copied: the catalog maps names to the snapshot's table
    objects and each view facade is rebound to the snapshot's frozen
    mirror/raw state.  The result is safe to use from any thread because
    every object it can reach is immutable by the writer COW discipline.
    """
    wh = DataWarehouse.__new__(DataWarehouse)
    db = Database()
    db.catalog = Catalog(dict(snapshot.tables))
    wh.db = db
    wh.cache = None
    wh.execution = execution
    wh.planner = "rule"
    wh.slow_queries = None
    wh.incidents = []
    wh._concurrent_owner = None
    views: Dict[str, MaterializedSequenceView] = {}
    for name, state in snapshot.views.items():
        view = MaterializedSequenceView.__new__(MaterializedSequenceView)
        view.db = db
        view.definition = state.definition
        view.complete = state.complete
        view.exec_config = execution
        view.reporting = state.reporting
        view.raw = state.raw
        view.epoch = state.view_epoch
        view.quarantined = state.quarantined
        view.quarantine_reason = state.quarantine_reason
        views[name] = view
    wh.views = views
    return wh


class SnapshotHandle:
    """Context manager exposing reads against one pinned epoch."""

    def __init__(self, owner: "ConcurrentWarehouse", pin: Pin) -> None:
        self._owner = owner
        self._pin = pin

    @property
    def epoch(self) -> int:
        return self._pin.epoch

    @property
    def snapshot(self) -> Snapshot:
        return self._pin.snapshot

    def query(self, sql: str, *, config=None, **options: Any) -> QueryResult:
        """Run a SELECT at this epoch (bit-identical until released)."""
        wh = _warehouse_at(self._pin.snapshot, config)
        # Served reads report into the owner's slow-query log (the log is
        # lock-protected), so slow snapshot queries — trace ids included —
        # show up in one place instead of dying with the throwaway wrapper.
        wh.slow_queries = self._owner._wh.slow_queries
        result = wh.query(sql, **options)
        result.epoch = self._pin.epoch
        self._owner._note_read_incidents(wh.incidents)
        return result

    def value_at(self, view_name: str, order_key, **kwargs: Any):
        """Point lookup at this epoch (see ``DataWarehouse.value_at``)."""
        return _warehouse_at(self._pin.snapshot, None).value_at(
            view_name, order_key, **kwargs
        )

    def explain(self, sql: str, **options: Any) -> str:
        return _warehouse_at(self._pin.snapshot, None).explain(sql, **options)

    def release(self) -> None:
        self._pin.release()

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class ConcurrentWarehouse:
    """Serialized-writer / snapshot-reader facade over a DataWarehouse.

    Args:
        warehouse: an existing warehouse to take ownership of (it must no
            longer be mutated directly — the ownership guard enforces
            this), or ``None`` to create a fresh one.
        execution: default ExecutionConfig for *writes* (refresh &
            maintenance band recomputation); readers carry their own
            per-session config.
        wal: a :class:`~repro.replicate.wal.WriteAheadLog`; when set,
            every mutation appends its logical op to the log — fsync'd —
            *before* the epoch is published (write-ahead discipline).
        initial_epoch: publish the initial snapshot at this epoch id
            instead of 1.  Recovery uses it to restart the epoch counter
            at the checkpointed snapshot's epoch so WAL replay continues
            the primary's numbering.
    """

    def __init__(self, warehouse: Optional[DataWarehouse] = None, *,
                 execution=None, wal=None,
                 initial_epoch: Optional[int] = None) -> None:
        wh = warehouse if warehouse is not None else DataWarehouse(execution=execution)
        if getattr(wh, "_concurrent_owner", None) is not None:
            raise ConcurrencyError(
                "warehouse is already owned by another ConcurrentWarehouse"
            )
        self._wh = wh
        self._write_lock = threading.RLock()
        self._local = threading.local()
        self.epochs = EpochStore()
        self._wal = wal
        self._commit_listeners: List[Any] = []
        self._epoch_override: Optional[int] = None
        self._poisoned: Optional[str] = None
        wh._concurrent_owner = self
        with self._write_lock:
            self._mark_write()
            try:
                if initial_epoch is not None and initial_epoch > 0:
                    self._epoch_override = initial_epoch
                try:
                    self._publish()
                finally:
                    self._epoch_override = None
            finally:
                self._unmark_write()

    # -- ownership / write-section bookkeeping -------------------------------

    @property
    def warehouse(self) -> DataWarehouse:
        """The owned warehouse (mutate it only through this wrapper)."""
        return self._wh

    @property
    def in_write_section(self) -> bool:
        """True on a thread currently inside this wrapper's write path."""
        return getattr(self._local, "depth", 0) > 0

    def _mark_write(self) -> None:
        self._local.depth = getattr(self._local, "depth", 0) + 1

    def _unmark_write(self) -> None:
        self._local.depth -= 1

    # -- write path ----------------------------------------------------------

    def _write(self, fn, *, op: Optional[str] = None,
               args: Optional[Dict[str, Any]] = None,
               cow_tables: Iterable[str] = (),
               cow_views: Iterable[str] = ()):
        """Run one mutation serialized, copy-on-write, logged, published.

        The clone step installs fresh table objects (and view mirrors) in
        the *live* catalog for everything ``fn`` will mutate in place;
        epochs published earlier keep the originals.

        Write-ahead discipline (when a WAL is attached and ``op`` names a
        logical operation): after ``fn`` succeeds, the op — with its
        JSON-safe arguments and a post-state content digest — is appended
        and fsync'd *before* the epoch publishes.  A WAL append failure
        (torn write, disk error) **poisons** the wrapper: the epoch is not
        published, every later write is refused, and the owner must
        recover from the log.  Readers keep serving already-published
        epochs.

        A *failed* mutation still publishes (no WAL record): partial
        effects that stand by design — a failed refresh quarantining its
        view — must become visible to new readers, and quarantine is
        advisory local state that replication deliberately does not carry.

        Commit listeners (the replica shipper) run after publish, still
        under the write lock so shipments observe commit order.
        """
        with self._write_lock:
            if self._poisoned is not None:
                raise ReplicationError(
                    f"warehouse is poisoned after a WAL failure "
                    f"({self._poisoned}); recover from the log"
                )
            self._mark_write()
            try:
                for name in cow_tables:
                    if self._wh.db.catalog.has_table(name):
                        self._wh.db.catalog.replace(
                            self._wh.db.table(name).clone()
                        )
                for name in cow_views:
                    view = self._wh.views.get(name)
                    if view is not None:
                        view.reporting = copy.deepcopy(view.reporting)
                        view.raw = {k: list(v) for k, v in view.raw.items()}
                try:
                    result = fn()
                except BaseException:
                    self._publish()
                    raise
                record = self._log_commit(op, args)
                self._publish()
                if record is not None:
                    for listener in list(self._commit_listeners):
                        listener(record)
                return result
            finally:
                self._unmark_write()

    def _log_commit(self, op: Optional[str], args: Optional[Dict[str, Any]]):
        """Build and durably append this commit's EpochRecord (or None when
        the op is unlogged or nobody is listening)."""
        if op is None or (self._wal is None and not self._commit_listeners):
            return None
        from repro.replicate.wal import EpochRecord, encode_args, state_digest

        epoch = self._epoch_override or self.epochs.latest_epoch + 1
        record = EpochRecord(
            epoch=epoch, op=op, args=encode_args(args or {}),
            digest=state_digest(self._wh),
        )
        if self._wal is not None:
            try:
                self._wal.append(record)
            except BaseException as exc:
                self._poisoned = f"{type(exc).__name__}: {exc}"
                raise
        return record

    def _publish(self) -> Snapshot:
        tables = {t.name: t for t in self._wh.db.catalog.tables()}
        views = {
            name: ViewState(
                definition=v.definition,
                complete=v.complete,
                reporting=v.reporting,
                raw=v.raw,
                view_epoch=v.epoch,
                quarantined=v.quarantined,
                quarantine_reason=v.quarantine_reason,
            )
            for name, v in self._wh.views.items()
        }
        return self.epochs.publish(tables, views, epoch=self._epoch_override)

    def _maintenance_cow(self, table: str) -> Dict[str, List[str]]:
        """COW targets of one base-data change: the table, plus every
        dependent view's storage table and in-memory mirror."""
        dependents = [
            v for v in self._wh.views.values()
            if v.definition.base_table == table
        ]
        return {
            "tables": [table] + [v.definition.storage_table for v in dependents],
            "views": [v.name for v in dependents],
        }

    # -- mutations (all serialized, all logged, all publish) -----------------

    def create_table(self, name: str, columns, **kwargs):
        columns = [tuple(c) if isinstance(c, (list, tuple)) else c
                   for c in columns]
        return self._write(
            lambda: self._wh.create_table(name, columns, **kwargs),
            op="create_table",
            args={"name": name, "columns": columns, "kwargs": kwargs},
        )

    def drop_table(self, name: str, **kwargs) -> None:
        return self._write(
            lambda: self._wh.drop_table(name, **kwargs),
            op="drop_table", args={"name": name, "kwargs": kwargs},
        )

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        rows = [list(r) for r in rows]  # materialize: logged after fn() runs
        return self._write(
            lambda: self._wh.insert(table, rows), cow_tables=[table],
            op="insert", args={"table": table, "rows": rows},
        )

    def create_index(self, table: str, name: str, columns, **kwargs):
        return self._write(
            lambda: self._wh.create_index(table, name, columns, **kwargs),
            cow_tables=[table],
            op="create_index",
            args={"table": table, "name": name, "columns": list(columns),
                  "kwargs": kwargs},
        )

    def create_view(self, name: str, definition, *, complete: bool = True):
        from repro.replicate.wal import encode_view_definition

        if isinstance(definition, str):
            logged = {"sql": definition}
        else:
            logged = encode_view_definition(definition)
        return self._write(
            lambda: self._wh.create_view(name, definition, complete=complete),
            op="create_view",
            args={"name": name, "definition": logged, "complete": complete},
        )

    def drop_view(self, name: str) -> None:
        return self._write(
            lambda: self._wh.drop_view(name),
            op="drop_view", args={"name": name},
        )

    def refresh_view(self, name: str) -> None:
        # Refresh is already copy-on-write: it stages a shadow storage
        # table and fresh mirrors, then swaps atomically.
        return self._write(
            lambda: self._wh.refresh_view(name),
            op="refresh_view", args={"name": name},
        )

    def update_measure(self, table: str, **kwargs) -> List[Any]:
        cow = self._maintenance_cow(table)
        return self._write(
            lambda: self._wh.update_measure(table, **kwargs),
            cow_tables=cow["tables"], cow_views=cow["views"],
            op="update_measure", args={"table": table, "kwargs": kwargs},
        )

    def insert_row(self, table: str, values: Sequence[Any]) -> List[Any]:
        cow = self._maintenance_cow(table)
        values = list(values)
        return self._write(
            lambda: self._wh.insert_row(table, values),
            cow_tables=cow["tables"], cow_views=cow["views"],
            op="insert_row", args={"table": table, "values": values},
        )

    def delete_row(self, table: str, *, keys: Dict[str, Any]) -> List[Any]:
        cow = self._maintenance_cow(table)
        return self._write(
            lambda: self._wh.delete_row(table, keys=keys),
            cow_tables=cow["tables"], cow_views=cow["views"],
            op="delete_row", args={"table": table, "keys": dict(keys)},
        )

    def repair(self, name: Optional[str] = None) -> Dict[str, Any]:
        return self._write(
            lambda: self._wh.repair(name),
            op="repair", args={"name": name},
        )

    def quarantine_view(self, name: str, reason: str) -> None:
        return self._write(
            lambda: self._wh.quarantine_view(name, reason),
            op="quarantine_view", args={"name": name, "reason": reason},
        )

    def verify(self, *, quarantine: bool = True):
        # The verify-time bitflip fault hook corrupts storage in place;
        # COW every storage table so pinned epochs stay pristine.
        storages = [
            v.definition.storage_table for v in self._wh.views.values()
        ]
        return self._write(
            lambda: self._wh.verify(quarantine=quarantine),
            cow_tables=storages,
        )

    def save(self, directory: str, **kwargs) -> None:
        """Persist under the write lock (exclusive with writers; readers
        keep serving their pinned epochs meanwhile).

        With a WAL attached, a successful save checkpoints the log at the
        saved epoch: segments fully covered by the dump are deleted, so
        recovery replays only what the snapshot does not already contain.
        """
        with self._write_lock:
            self._mark_write()
            try:
                self._wh.save(directory, **kwargs)
                if self._wal is not None:
                    self._wal.checkpoint(self.epochs.latest_epoch)
            finally:
                self._unmark_write()

    @classmethod
    def load(cls, directory: str, *, execution=None) -> "ConcurrentWarehouse":
        """Load a saved warehouse and wrap it for concurrent serving."""
        wh = DataWarehouse.load(directory)
        wh.execution = execution
        return cls(wh)

    # -- replication ---------------------------------------------------------

    @property
    def wal(self):
        """The attached write-ahead log (or None)."""
        return self._wal

    @property
    def poisoned(self) -> Optional[str]:
        """Why writes are refused after a WAL failure (None = healthy)."""
        return self._poisoned

    def attach_wal(self, wal) -> None:
        """Attach a WAL after construction (recovery replays *without* a
        log attached, then attaches it so new writes append at the epoch
        numbering the replay established)."""
        with self._write_lock:
            self._wal = wal

    def add_commit_listener(self, listener) -> None:
        """Register ``listener(record)`` to run after each logged commit
        publishes (under the write lock — commit order is shipment order)."""
        with self._write_lock:
            self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener) -> None:
        with self._write_lock:
            if listener in self._commit_listeners:
                self._commit_listeners.remove(listener)

    def apply_record(self, record) -> None:
        """Re-execute one shipped/replayed logical op at the primary's epoch.

        The record's op is dispatched through the normal mutator path —
        same COW discipline, same WAL append (a replica with its own log
        is durable too), same publish — but the published epoch is forced
        to ``record.epoch`` so both sides agree on what each epoch means.

        Raises:
            ReplicationError: the record does not advance the epoch (the
                shipper re-sent something already applied) or names an
                unknown op.
            DivergenceError: the post-apply content digest disagrees with
                the digest the primary recorded — the replica has diverged
                and must not be promoted.
        """
        from repro.replicate.wal import decode_args, state_digest

        with self._write_lock:
            latest = self.epochs.latest_epoch
            if record.epoch <= latest:
                raise ReplicationError(
                    f"cannot apply epoch {record.epoch}: already at {latest}"
                )
            self._epoch_override = record.epoch
            try:
                self._dispatch_op(record.op, decode_args(record.args))
            finally:
                self._epoch_override = None
            digest = state_digest(self._wh)
            if record.digest and digest != record.digest:
                raise DivergenceError(
                    f"replica diverged at epoch {record.epoch} "
                    f"({record.op}): digest {digest[:12]} != primary "
                    f"{record.digest[:12]}"
                )

    def _dispatch_op(self, op: str, args: Dict[str, Any]) -> None:
        """Replay one decoded logical op against the owned warehouse."""
        if op == "create_table":
            self.create_table(
                args["name"], [tuple(c) for c in args["columns"]],
                **args.get("kwargs", {}),
            )
        elif op == "drop_table":
            self.drop_table(args["name"], **args.get("kwargs", {}))
        elif op == "insert":
            self.insert(args["table"], args["rows"])
        elif op == "create_index":
            self.create_index(
                args["table"], args["name"], args["columns"],
                **args.get("kwargs", {}),
            )
        elif op == "create_view":
            from repro.replicate.wal import decode_view_definition

            doc = args["definition"]
            definition = (
                doc["sql"] if "sql" in doc else decode_view_definition(doc)
            )
            self.create_view(
                args["name"], definition, complete=args.get("complete", True)
            )
        elif op == "drop_view":
            self.drop_view(args["name"])
        elif op == "refresh_view":
            self.refresh_view(args["name"])
        elif op == "update_measure":
            self.update_measure(args["table"], **args.get("kwargs", {}))
        elif op == "insert_row":
            self.insert_row(args["table"], args["values"])
        elif op == "delete_row":
            self.delete_row(args["table"], keys=args["keys"])
        elif op == "repair":
            self.repair(args.get("name"))
        elif op == "quarantine_view":
            self.quarantine_view(args["name"], args["reason"])
        else:
            raise ReplicationError(f"unknown replicated op {op!r}")

    def release(self) -> DataWarehouse:
        """Relinquish ownership: the warehouse becomes single-caller again.

        The caller is responsible for quiescing readers first — snapshots
        pinned before release keep working (their objects are frozen), but
        subsequent direct mutations will not publish epochs for them.
        """
        with self._write_lock:
            self._wh._concurrent_owner = None
            return self._wh

    # -- reads (never block on the write lock) -------------------------------

    def pin(self) -> SnapshotHandle:
        """Pin the current epoch; release via context manager or .release()."""
        return SnapshotHandle(self, self.epochs.pin())

    def query(self, sql: str, *, config=None, session: str = "",
              hold_ms: float = 0.0, **options: Any) -> QueryResult:
        """Run one SELECT at the epoch current when the call started.

        Args:
            config: the session's ExecutionConfig (``None`` = serial).
            session: session id, used as the fault-injection target for
                ``session_kill`` specs.
            hold_ms: artificially hold the pin for this long before
                executing — a deterministic aid for backpressure tests and
                the serving benchmark (refreshes committed during the hold
                must not change the answer).

        Raises:
            SessionKilledError: a ``session_kill`` fault fired mid-query;
                the pinned epoch is released before raising.
        """
        import time

        from repro.faults import injector

        with self.pin() as snap:
            try:
                injector.check("serve_query", session)
            except InjectedFault as exc:
                raise SessionKilledError(
                    f"session {session or '<anonymous>'} killed mid-query "
                    f"at epoch {snap.epoch}: {exc}"
                ) from exc
            if hold_ms > 0:
                time.sleep(hold_ms / 1000.0)
            return snap.query(sql, config=config, **options)

    def value_at(self, view_name: str, order_key, **kwargs: Any):
        with self.pin() as snap:
            return snap.value_at(view_name, order_key, **kwargs)

    def explain(self, sql: str, **options: Any) -> str:
        with self.pin() as snap:
            return snap.explain(sql, **options)

    # -- delegation / inspection ---------------------------------------------

    def view_names(self) -> List[str]:
        with self._write_lock:
            return sorted(self._wh.views)

    def quarantined_views(self) -> List[str]:
        with self._write_lock:
            return self._wh.quarantined_views()

    @property
    def incidents(self) -> List[str]:
        return self._wh.incidents

    def _note_read_incidents(self, incidents: List[str]) -> None:
        # Degradations observed by snapshot readers (e.g. a rewrite that
        # fell back to base data) surface on the live incident log.
        if incidents:
            self._wh.incidents.extend(incidents)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConcurrentWarehouse(epoch={self.epochs.latest_epoch}, "
            f"views={self.view_names()})"
        )
