"""Wire protocol of the serving tier: newline-delimited JSON.

One request per line, one response per line, UTF-8.  Every request is a
JSON object with an ``op`` field and an optional client-chosen ``id``
(echoed verbatim in the response, so a client may pipeline).  Every
response carries ``ok``; failures carry ``error = {type, message}`` where
``type`` is the :mod:`repro.errors` class name (clients re-raise the
matching exception — see :mod:`repro.serve.client`).

Operations::

    {"op": "ping"}                                   -> {"ok": true, "pong": true}
    {"op": "query", "sql": ..., "options": {...},
     "hold_ms": 0}                                   -> {"ok": true, "columns": [...],
                                                         "rows": [[...], ...],
                                                         "epoch": N, "rewrite": ...}
    {"op": "set", "config": {"jobs": 4, ...}}        -> per-session ExecutionConfig
    {"op": "refresh", "view": name}
    {"op": "update", "table": ..., "keys": {...},
     "value_col": ..., "new_value": ...}
    {"op": "insert_row", "table": ..., "values": [...]}
    {"op": "delete_row", "table": ..., "keys": {...}}
    {"op": "epochs"}                                 -> epoch-store verify() report
    {"op": "stats"}                                  -> metrics-registry snapshot
    {"op": "ship", "record": {...}}                  -> replica applies one epoch record
    {"op": "promote"}                                -> replica accepts the primary role
    {"op": "status"}                                 -> {replica, applied, primary, diverged}
    {"op": "close"}                                  -> server closes the connection

Replication: a server hosting a replica role answers ``ship`` (apply one
:class:`~repro.replicate.wal.EpochRecord`), ``promote`` and ``status``;
write ops against an unpromoted replica fail with ``NotPrimaryError`` and
its query responses carry ``"stale": true`` (last-replicated-epoch reads
during failover).

Backpressure: when the bounded admission queue is full a ``query`` is
*rejected immediately* with ``error.type == "BackpressureError"`` — the
client is expected to retry with backoff; nothing is silently queued
beyond the configured depth.

Trace context: any request may carry an optional
``"trace": {"traceparent": "00-<trace32>-<span16>-<flags>"}`` field (the
W3C traceparent layout, see :mod:`repro.obs.context`).  The server adopts
it as the remote parent of the spans it opens for that request, so one
trace id covers client send → serve.query/serve.write → engine spans →
replica ship/ack.  Query responses echo the serving span's ``trace_id``
(``None`` when tracing is off), which is also stamped onto
``QueryResult`` and slow-query-log entries.  Malformed trace fields are
ignored, never fatal.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro import errors as _errors
from repro.errors import ProtocolError, ReproError

__all__ = [
    "OPS",
    "decode_line",
    "encode_line",
    "error_response",
    "exception_for",
    "result_payload",
    "trace_context",
]

OPS = (
    "ping",
    "query",
    "set",
    "refresh",
    "update",
    "insert_row",
    "delete_row",
    "epochs",
    "stats",
    "ship",
    "promote",
    "status",
    "close",
)

# Maximum accepted request line (1 MiB) — a defensive bound so a broken
# client cannot balloon server memory with an unterminated line.
MAX_LINE_BYTES = 1 << 20


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line into a validated op dict."""
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request line: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    return request


def encode_line(payload: Dict[str, Any]) -> bytes:
    """Serialize one response object to a wire line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def error_response(
    exc: BaseException, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """Build the failure response for an exception."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def exception_for(error: Dict[str, Any]) -> ReproError:
    """Client side: rebuild the exception named by an error response.

    Unknown type names degrade to the base :class:`ReproError` so a newer
    server never crashes an older client.
    """
    cls = getattr(_errors, str(error.get("type")), None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    return cls(error.get("message", "server error"))


def result_payload(result) -> Dict[str, Any]:
    """Encode a :class:`~repro.warehouse.warehouse.QueryResult` for the wire.

    Row values are engine scalars (int/float/str/None) — JSON round-trips
    floats exactly (shortest-repr), so two clients comparing encoded rows
    compare bit-identical results.
    """
    info = getattr(result, "rewrite", None)
    return {
        "columns": result.schema.names(),
        "rows": [list(row) for row in result.rows],
        "epoch": getattr(result, "epoch", None),
        "rewrite": info.description if info is not None else None,
        "trace_id": getattr(result, "trace_id", None),
    }


def trace_context(request: Dict[str, Any]):
    """Decode a request's optional trace field into a TraceContext (or None).

    Garbage — wrong types, malformed traceparent — decodes to ``None``; a
    broken client must not be able to crash the dispatch loop.
    """
    from repro.obs.context import TraceContext

    return TraceContext.from_dict(request.get("trace"))
