"""Concurrent serving tier: epoch-pinned snapshot reads over the warehouse.

Layers (bottom-up):

* :mod:`repro.serve.epochs` — MVCC epoch store: publish / pin / unpin / GC
  over immutable snapshots.
* :mod:`repro.serve.concurrent` — :class:`ConcurrentWarehouse`, the
  thread-safe wrapper that serializes writers (copy-on-write) and gives
  every reader a pinned snapshot.
* :mod:`repro.serve.protocol` / :mod:`repro.serve.server` /
  :mod:`repro.serve.client` — newline-delimited-JSON asyncio front end
  with per-session execution configs and bounded admission.
"""

from repro.serve.concurrent import ConcurrentWarehouse, SnapshotHandle
from repro.serve.epochs import EpochStore, Pin, Snapshot, ViewState


def __getattr__(name):
    # Server and client pull in asyncio/socket machinery; import lazily so
    # `from repro.serve import ConcurrentWarehouse` stays featherweight.
    if name == "ServeServer":
        from repro.serve.server import ServeServer

        return ServeServer
    if name == "ServeClient":
        from repro.serve.client import ServeClient

        return ServeClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ConcurrentWarehouse",
    "EpochStore",
    "Pin",
    "Snapshot",
    "SnapshotHandle",
    "ServeClient",
    "ServeServer",
    "ViewState",
]
