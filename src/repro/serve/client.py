"""Blocking client for the serving tier's NDJSON protocol.

:class:`ServeClient` is a thin synchronous wrapper over one TCP
connection — one request line out, one response line in.  Server-side
failures are re-raised locally as the :mod:`repro.errors` class named in
the error response (``BackpressureError`` for admission rejections,
``SessionKilledError`` for fault-injected kills, ...), so callers handle
remote errors exactly like local ones.

Transport failures — the peer reset the connection, a broken pipe, a
read timeout, the server closing mid-request — are wrapped into the
typed :class:`~repro.errors.ServeConnectionError` carrying the id of the
in-flight request, so retry/failover logic can distinguish "the network
died" from "the server said no" without matching on ``OSError`` strings.

Thread-safety: one client drives one connection; share a client across
threads only with external locking (the benchmark driver opens one client
per worker instead).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional, Sequence

from repro.errors import ServeConnectionError
from repro.serve import protocol

__all__ = ["ServeClient"]


class ServeClient:
    """Synchronous connection to a :class:`~repro.serve.server.ServeServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 30.0
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServeConnectionError(
                f"cannot connect to {host}:{port}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and return its decoded response payload.

        With tracing on, the request runs inside a ``client.request`` span
        and carries that span's context as a W3C-style ``traceparent``
        field — the server parents its own spans under it, so one trace id
        covers the whole client → server → engine path (DESIGN.md §5k).

        Raises:
            ReproError subclass: the exception class named by a failure
                response.
            ServeConnectionError: the connection failed mid-request (reset,
                broken pipe, timeout, or closed without a response); carries
                the in-flight request id.
        """
        from repro.obs import runtime

        tracer = runtime.get_tracer()
        if not tracer.enabled:
            return self._call(op, fields)
        with tracer.span("client.request", op=op) as span:
            ctx = span.context()
            if ctx is not None and ctx.sampled:
                fields = {**fields, "trace": ctx.to_dict()}
            response = self._call(op, fields)
            if isinstance(response, dict) and response.get("trace_id"):
                span.set(trace_id=response["trace_id"])
            return response

    def _call(self, op: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        request = {"op": op, "id": self._next_id, **fields}
        try:
            self._file.write(protocol.encode_line(request))
            self._file.flush()
            line = self._file.readline()
        except (ConnectionError, BrokenPipeError, socket.timeout, OSError) as exc:
            raise ServeConnectionError(
                f"connection failed during {op!r} request "
                f"{self._next_id}: {type(exc).__name__}: {exc}",
                request_id=self._next_id,
            ) from exc
        if not line:
            raise ServeConnectionError(
                f"connection closed by server during {op!r} request "
                f"{self._next_id}",
                request_id=self._next_id,
            )
        import json

        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise protocol.exception_for(response.get("error", {}))
        return response

    # -- operations ----------------------------------------------------------

    def ping(self) -> str:
        """Round-trip; returns the server-assigned session name."""
        return self.call("ping")["session"]

    def set_config(self, **fields: Any) -> str:
        """Update this session's ExecutionConfig (e.g. ``jobs=4,
        backend="thread"``); returns the resulting config description."""
        return self.call("set", config=fields)["config"]

    def query(
        self, sql: str, *, hold_ms: float = 0.0, **options: Any
    ) -> Dict[str, Any]:
        """Run a SELECT; returns ``{columns, rows, epoch, rewrite, ...}``."""
        return self.call("query", sql=sql, hold_ms=hold_ms, options=options)

    def refresh(self, view: str) -> int:
        """Refresh a view; returns the epoch the commit published."""
        return self.call("refresh", view=view)["epoch"]

    def update_measure(
        self, table: str, *, keys: Dict[str, Any], value_col: str,
        new_value: float,
    ) -> int:
        return self.call(
            "update", table=table, keys=keys, value_col=value_col,
            new_value=new_value,
        )["epoch"]

    def insert_row(self, table: str, values: Sequence[Any]) -> int:
        return self.call("insert_row", table=table, values=list(values))["epoch"]

    def delete_row(self, table: str, *, keys: Dict[str, Any]) -> int:
        return self.call("delete_row", table=table, keys=keys)["epoch"]

    def epochs(self) -> Dict[str, Any]:
        """The server's epoch-store cleanliness report (verify())."""
        return self.call("epochs")

    def ship(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Ship one epoch record to a replica-role server; returns the ack."""
        return self.call("ship", record=record)

    def promote(self) -> Dict[str, Any]:
        """Ask a replica-role server to accept the primary role."""
        return self.call("promote")

    def status(self) -> Dict[str, Any]:
        """Role/lag probe: ``{replica, applied, primary, diverged}``."""
        return self.call("status")

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the server's metrics registry."""
        return self.call("stats")["metrics"]

    def close(self) -> None:
        try:
            self.call("close")
        except Exception:
            pass  # already closing; nothing to salvage
        finally:
            self._file.close()
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
