"""Epoch store: MVCC-style snapshot versions of the warehouse state.

The serving tier gives every query **snapshot isolation** without ever
blocking readers.  The mechanism rides directly on the crash-consistency
machinery from the fault-tolerance work: every committed write (view
refresh, incremental maintenance, DDL, base-data change) already ends in a
handful of atomic catalog/attribute rebindings, so each commit can publish
an immutable :class:`Snapshot` — the set of table objects and frozen
per-view states visible at that instant.

Lifecycle (DESIGN.md §5g)::

    publish ──> pin ──> (reads at the pinned epoch) ──> unpin ──> GC

* **publish** — a serialized writer commits and registers a new epoch; the
  previous epoch's objects are never mutated again (writers copy-on-write
  any table they are about to change in place).
* **pin** — a query entering the system takes a refcount on the *latest*
  epoch and reads that epoch's table/view versions until done, no matter
  how many refreshes commit meanwhile.
* **unpin** — the query finishes (or is killed); the refcount drops.
* **GC** — any non-latest epoch with zero pins is dropped from the
  retained set; Python's GC then frees tables no snapshot references.

The store is a small critical section around a dict — pin/unpin are O(1)
and never wait on writers, so readers are wait-free with respect to
refresh traffic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ServeError

__all__ = ["EpochStore", "Pin", "Snapshot", "ViewState"]


@dataclass(frozen=True)
class ViewState:
    """Frozen per-view state captured at publish time.

    Holds *references* to the view's storage-side and in-memory
    representations as of one epoch; the copy-on-write writer discipline
    guarantees none of them is mutated after publication.
    """

    definition: Any
    complete: bool
    reporting: Any
    raw: Mapping[Tuple[object, ...], List[float]]
    view_epoch: int
    quarantined: bool
    quarantine_reason: Optional[str]


@dataclass(frozen=True)
class Snapshot:
    """One immutable epoch of the warehouse: tables + view states."""

    epoch: int
    tables: Mapping[str, Any]
    views: Mapping[str, ViewState]


class Pin:
    """A live reference to one epoch; release exactly once.

    Usable as a context manager; double-release is a no-op so a ``finally``
    can always release defensively.
    """

    __slots__ = ("_store", "snapshot", "_released")

    def __init__(self, store: "EpochStore", snapshot: Snapshot) -> None:
        self._store = store
        self.snapshot = snapshot
        self._released = False

    @property
    def epoch(self) -> int:
        return self.snapshot.epoch

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._store.unpin(self)

    def __enter__(self) -> "Pin":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class EpochStore:
    """Registry of retained epochs with pin refcounts and eager GC.

    Invariant (checked by :meth:`verify`): the retained set is exactly the
    latest epoch plus every epoch with at least one outstanding pin — a
    session kill mid-query must therefore leave ``retained == {latest}``
    and zero pins.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._retained: Dict[int, Snapshot] = {}
        self._pins: Dict[int, int] = {}

    # -- publication ---------------------------------------------------------

    def publish(
        self,
        tables: Mapping[str, Any],
        views: Mapping[str, ViewState],
        *,
        epoch: Optional[int] = None,
    ) -> Snapshot:
        """Register the next epoch and GC unpinned predecessors.

        Args:
            epoch: force this epoch id instead of ``latest + 1``.  Used by
                replication: a replica applying a shipped record (or a
                recovery replaying the WAL) publishes at the *primary's*
                epoch id so both sides agree on what each epoch means.
                Gaps are legal (the primary publishes unlogged epochs, e.g.
                a failed refresh's quarantine) but going backwards is not.
        """
        with self._lock:
            if epoch is None:
                self._epoch += 1
            elif epoch <= self._epoch:
                raise ServeError(
                    f"cannot publish epoch {epoch}: store is already at "
                    f"{self._epoch}"
                )
            else:
                self._epoch = epoch
            snapshot = Snapshot(self._epoch, dict(tables), dict(views))
            self._retained[self._epoch] = snapshot
            self._gc_locked()
            self._update_gauges_locked()
        return snapshot

    # -- pinning -------------------------------------------------------------

    def pin(self) -> Pin:
        """Pin the latest epoch (wait-free with respect to writers)."""
        with self._lock:
            if not self._retained:
                raise ServeError("no epoch published yet")
            snapshot = self._retained[self._epoch]
            self._pins[snapshot.epoch] = self._pins.get(snapshot.epoch, 0) + 1
            self._update_gauges_locked()
        return Pin(self, snapshot)

    def unpin(self, pin: Pin) -> None:
        """Drop one pin; GC the epoch if it became unpinned and stale."""
        with self._lock:
            epoch = pin.snapshot.epoch
            count = self._pins.get(epoch, 0) - 1
            if count <= 0:
                self._pins.pop(epoch, None)
            else:
                self._pins[epoch] = count
            self._gc_locked()
            self._update_gauges_locked()

    def _gc_locked(self) -> None:
        for epoch in [
            e for e in self._retained
            if e != self._epoch and self._pins.get(e, 0) == 0
        ]:
            del self._retained[epoch]

    def _update_gauges_locked(self) -> None:
        from repro.obs import runtime

        registry = runtime.get_registry()
        registry.gauge(
            "repro_serve_pinned_epochs",
            help="Distinct epochs currently pinned by in-flight queries",
        ).set(float(len(self._pins)))
        registry.gauge(
            "repro_serve_retained_epochs",
            help="Epochs retained by the store (latest + pinned)",
        ).set(float(len(self._retained)))

    # -- inspection ----------------------------------------------------------

    @property
    def latest_epoch(self) -> int:
        with self._lock:
            return self._epoch

    def latest(self) -> Snapshot:
        with self._lock:
            if not self._retained:
                raise ServeError("no epoch published yet")
            return self._retained[self._epoch]

    def pinned_epochs(self) -> List[int]:
        """Epochs with at least one outstanding pin (sorted)."""
        with self._lock:
            return sorted(self._pins)

    def retained_epochs(self) -> List[int]:
        with self._lock:
            return sorted(self._retained)

    def pin_count(self, epoch: Optional[int] = None) -> int:
        """Outstanding pins on ``epoch`` (or across all epochs)."""
        with self._lock:
            if epoch is not None:
                return self._pins.get(epoch, 0)
            return sum(self._pins.values())

    def verify(self) -> Dict[str, Any]:
        """Post-run cleanliness report (the fault-matrix acceptance check).

        ``orphaned`` lists retained non-latest epochs without pins — the GC
        invariant makes this impossible unless a pin leaked or a kill tore
        the store, which is exactly what the report exists to catch.
        """
        with self._lock:
            orphaned = sorted(
                e for e in self._retained
                if e != self._epoch and self._pins.get(e, 0) == 0
            )
            pinned = sorted(self._pins)
            return {
                "latest": self._epoch,
                "pinned": pinned,
                "orphaned": orphaned,
                "retained": sorted(self._retained),
                "clean": not pinned and not orphaned,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"EpochStore(latest={self._epoch}, "
                f"retained={sorted(self._retained)}, pins={dict(self._pins)})"
            )
