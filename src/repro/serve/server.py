"""Asyncio serving front end with per-session configs and admission control.

:class:`ServeServer` accepts newline-delimited-JSON connections (see
:mod:`repro.serve.protocol`) over a :class:`~repro.serve.concurrent.
ConcurrentWarehouse`.  Design points:

* **Per-connection sessions.**  Each connection is a :class:`Session`
  carrying its own :class:`~repro.parallel.config.ExecutionConfig`
  (mutable via the ``set`` op), so one client can run parallel
  vectorized reads while another stays strictly serial.
* **Admission control.**  At most ``max_queue`` queries may be in flight
  (executing or waiting for a worker thread) across all sessions; the
  next query is rejected immediately with ``BackpressureError`` rather
  than queued unboundedly.  Rejections are counted in
  ``repro_serve_admission_rejections_total``.
* **The event loop never blocks.**  Queries and writes run on a worker
  thread pool via ``run_in_executor``; reads pin their epoch inside the
  worker (through ``ConcurrentWarehouse.query``), so a slow query holds
  its snapshot — never the loop, never the writers.
* **Thread-hosted or native.**  ``start()``/``stop()`` host the loop on a
  background thread (handy for synchronous tests and the CLI);
  ``serve_async()`` integrates with a caller-owned loop.  Binding
  ``port=0`` picks an ephemeral port, published as ``.port`` — tests can
  run in parallel without collisions.

Observability: gauges ``repro_serve_active_sessions`` and
``repro_serve_queue_depth``, histogram ``repro_serve_query_seconds``, and
a ``serve.query`` span per query (session, epoch, sql attributes).
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.errors import (
    BackpressureError,
    InjectedFault,
    NotPrimaryError,
    ProtocolError,
    ReplicationError,
    ServeError,
)
from repro.parallel.config import ExecutionConfig
from repro.serve import protocol
from repro.serve.concurrent import ConcurrentWarehouse

__all__ = ["ServeServer", "Session"]


class Session:
    """Per-connection state: identity plus the session's execution config."""

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self) -> None:
        with Session._counter_lock:
            Session._counter += 1
            number = Session._counter
        self.name = f"session-{number}"
        self.config: Optional[ExecutionConfig] = None

    def configure(self, fields: Dict[str, Any]) -> ExecutionConfig:
        """Apply ``set`` op fields on top of the current config.

        Raises:
            ProtocolError: unknown field name (config validation errors —
                bad backend, negative jobs — surface as ParallelError).
        """
        base = self.config if self.config is not None else ExecutionConfig()
        known = {f.name for f in dataclasses.fields(ExecutionConfig)}
        unknown = sorted(set(fields) - known)
        if unknown:
            raise ProtocolError(
                f"unknown config field(s) {unknown}; expected subset of "
                f"{sorted(known)}"
            )
        self.config = dataclasses.replace(base, **fields)
        return self.config


class ServeServer:
    """The serving front end; one instance per ConcurrentWarehouse.

    Args:
        warehouse: the concurrent warehouse to serve; pass ``None`` with
            ``replica`` to serve the replica's own warehouse.
        host/port: bind address; ``port=0`` (default) picks an ephemeral
            port, available as ``.port`` once started.
        max_queue: admission bound — maximum queries in flight at once.
        workers: worker threads executing queries and writes.
        replica: a :class:`~repro.replicate.replica.Replica` role.  The
            server then answers ``ship``/``promote``; until promotion,
            write ops fail with :class:`NotPrimaryError` and query
            responses carry ``"stale": true`` (graceful degradation —
            reads keep serving the last replicated epoch).
        name: identity for ``status`` probes and as the target of
            ``primary_crash`` fault specs.
    """

    def __init__(
        self,
        warehouse: Optional[ConcurrentWarehouse] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 8,
        workers: int = 4,
        replica=None,
        name: str = "primary",
    ) -> None:
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        if warehouse is None:
            if replica is None:
                raise ServeError("a warehouse or a replica role is required")
            warehouse = replica.warehouse
        self.warehouse = warehouse
        self.host = host
        self.port = port  # rebound to the concrete port on start
        self.max_queue = max_queue
        self.replica = replica
        self.name = name
        self.crashed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._inflight = 0  # event-loop-confined; no lock needed
        self._sessions = 0
        self._writers: set = set()  # loop-confined open connections
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # -- metrics helpers -----------------------------------------------------

    @staticmethod
    def _registry():
        from repro.obs import runtime

        return runtime.get_registry()

    def _set_gauges(self) -> None:
        registry = self._registry()
        registry.gauge(
            "repro_serve_active_sessions",
            help="Open serving-tier connections",
        ).set(float(self._sessions))
        registry.gauge(
            "repro_serve_queue_depth",
            help="Queries currently admitted (executing or queued)",
        ).set(float(self._inflight))

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session()
        self._sessions += 1
        self._writers.add(writer)
        self._set_gauges()
        try:
            while not self.crashed:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                request_id = None
                try:
                    from repro.faults import injector

                    # The primary_crash fault site: the process "dies"
                    # mid-dispatch — every connection is aborted with no
                    # response, exactly what clients of a crashed primary
                    # observe (ServeConnectionError), and the listener
                    # stops accepting.
                    injector.check("primary", self.name)
                    request = protocol.decode_line(line)
                    request_id = request.get("id")
                    response = await self._dispatch(session, request)
                except InjectedFault:
                    self._crash()
                    return
                except Exception as exc:  # every failure -> error response
                    response = protocol.error_response(exc, request_id)
                response.setdefault("id", request_id)
                writer.write(protocol.encode_line(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                if response.get("closing"):
                    break
        finally:
            self._sessions -= 1
            self._writers.discard(writer)
            self._set_gauges()
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _crash(self) -> None:
        """Hard-stop serving: abort every connection, close the listener.

        Runs on the event loop.  The hosting thread's loop keeps running
        (so ``stop()`` still works) but no request gets a response and new
        connections are refused — the crash signature failover probes for.
        """
        self.crashed = True
        if self._server is not None:
            self._server.close()
        for w in list(self._writers):
            transport = w.transport
            if transport is not None:
                transport.abort()
        from repro.obs import runtime

        runtime.event("serve.crashed", server=self.name)

    async def _dispatch(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request["op"]
        request_id = request.get("id")
        ok: Dict[str, Any] = {"id": request_id, "ok": True}
        if op == "ping":
            return {**ok, "pong": True, "session": session.name}
        if op == "close":
            return {**ok, "closing": True}
        if op == "set":
            config = session.configure(dict(request.get("config", {})))
            return {**ok, "config": config.describe()}
        if op == "query":
            return {**ok, **await self._run_query(session, request)}
        if op == "epochs":
            report = self.warehouse.epochs.verify()
            return {**ok, **report}
        if op == "stats":
            return {**ok, "metrics": self._registry().to_json()}
        if op == "status":
            return {**ok, **self._status()}
        if op == "promote":
            return {**ok, **await self._run_promote(request)}
        if op == "ship":
            return {**ok, **await self._run_ship(request)}
        # Remaining ops are writes: serialized by the warehouse's write
        # lock, run off-loop so a refresh cannot stall other sessions.
        return {**ok, **await self._run_write(request)}

    # -- replication role ----------------------------------------------------

    @property
    def _is_stale_replica(self) -> bool:
        return self.replica is not None and not self.replica.is_primary

    def _status(self) -> Dict[str, Any]:
        if self.replica is not None:
            return self.replica.status()
        return {
            "replica": self.name,
            "applied": self.warehouse.epochs.latest_epoch,
            "primary": True,
            "diverged": None,
        }

    async def _run_promote(
        self, request: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        if self.replica is None:
            return self._status()  # idempotent: already the primary
        ctx = protocol.trace_context(request or {})

        def promote():
            from repro.obs import runtime

            tracer = runtime.get_tracer()
            if not tracer.enabled:
                return self.replica.promote()
            with tracer.span(
                "replica.promote", parent_context=ctx, replica=self.name
            ):
                return self.replica.promote()

        return await asyncio.get_running_loop().run_in_executor(
            self._pool, promote
        )

    async def _run_ship(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.replica is None:
            raise ReplicationError(
                f"server {self.name!r} is not a replica; nothing accepts "
                "shipped records here"
            )
        from repro.replicate.wal import EpochRecord

        record = EpochRecord.from_dict(dict(request.get("record") or {}))
        ctx = protocol.trace_context(request)

        def apply():
            from repro.obs import runtime

            tracer = runtime.get_tracer()
            if not tracer.enabled:
                return self.replica.apply(record)
            with tracer.span(
                "replica.apply", parent_context=ctx, replica=self.name,
                epoch=record.epoch, op=record.op,
            ):
                return self.replica.apply(record)

        return await asyncio.get_running_loop().run_in_executor(
            self._pool, apply
        )

    async def _run_query(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("query op needs a non-empty 'sql' string")
        options = dict(request.get("options", {}))
        hold_ms = float(request.get("hold_ms", 0.0))
        if self._inflight >= self.max_queue:
            self._registry().counter(
                "repro_serve_admission_rejections_total",
                help="Queries rejected because the admission queue was full",
            ).inc()
            raise BackpressureError(
                f"admission queue full ({self._inflight}/{self.max_queue} "
                "in flight); retry later"
            )
        self._inflight += 1
        self._set_gauges()
        started = time.perf_counter()
        failed = True
        try:
            result = await asyncio.get_running_loop().run_in_executor(
                self._pool,
                functools.partial(
                    self._query_on_worker,
                    session,
                    sql,
                    hold_ms,
                    options,
                    protocol.trace_context(request),
                ),
            )
            failed = False
        finally:
            self._inflight -= 1
            self._set_gauges()
            registry = self._registry()
            registry.histogram(
                "repro_serve_query_seconds",
                help="Serving-tier query wall time (admission to response)",
            ).observe(time.perf_counter() - started)
            # The availability SLO's request stream: total and errors as
            # counters so the time-series layer can window burn rates.
            registry.counter(
                "repro_serve_queries_total",
                help="Queries admitted by the serving tier",
            ).inc()
            if failed:
                registry.counter(
                    "repro_serve_query_errors_total",
                    help="Admitted queries that raised instead of answering",
                ).inc()
        payload = {**protocol.result_payload(result), "session": session.name}
        if self._is_stale_replica:
            # Degraded mode: the replica serves its last replicated epoch;
            # the flag tells clients the answer may trail the (dead) primary.
            payload["stale"] = True
        return payload

    def _query_on_worker(self, session, sql, hold_ms, options, ctx=None):
        from repro.obs import runtime

        with runtime.get_tracer().span(
            "serve.query", parent_context=ctx, session=session.name, sql=sql
        ) as span:
            result = self.warehouse.query(
                sql,
                config=session.config,
                session=session.name,
                hold_ms=hold_ms,
                **options,
            )
            span.set(epoch=result.epoch)
            if span.sampled and result.trace_id is None:
                # Tracing is on but the engine did not stamp an id (e.g. a
                # snapshot warehouse without a slow-query log): the serving
                # span's trace is still the right link target.
                result.trace_id = span.trace_id
            return result

    async def _run_write(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        call = functools.partial(self._write_on_worker, op, request)
        return await asyncio.get_running_loop().run_in_executor(self._pool, call)

    def _write_on_worker(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.obs import runtime

        tracer = runtime.get_tracer()
        if not tracer.enabled:
            return self._write_inner(op, request)
        # The commit listener (the replica shipper) runs on this thread
        # inside the write, so ship/ack spans nest under serve.write and
        # the whole commit → replica path shares one trace id.
        with tracer.span(
            "serve.write", parent_context=protocol.trace_context(request),
            op=op, server=self.name,
        ) as span:
            payload = self._write_inner(op, request)
            span.set(epoch=payload.get("epoch"))
            if span.sampled:
                payload["trace_id"] = span.trace_id
            return payload

    def _write_inner(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._is_stale_replica:
            # Fail fast: writes against an unpromoted replica would fork
            # history the moment the primary comes back.
            raise NotPrimaryError(
                f"server {self.name!r} is an unpromoted replica "
                f"(applied epoch {self.warehouse.epochs.latest_epoch}); "
                "writes go to the primary"
            )
        wh = self.warehouse

        def need(field: str):
            value = request.get(field)
            if value is None:
                raise ProtocolError(f"{op} op needs {field!r}")
            return value

        if op == "refresh":
            wh.refresh_view(need("view"))
        elif op == "update":
            wh.update_measure(
                need("table"),
                keys=dict(need("keys")),
                value_col=need("value_col"),
                new_value=float(need("new_value")),
            )
        elif op == "insert_row":
            wh.insert_row(need("table"), list(need("values")))
        elif op == "delete_row":
            wh.delete_row(need("table"), keys=dict(need("keys")))
        else:  # unreachable: decode_line validated op
            raise ProtocolError(f"unhandled op {op!r}")
        return {"epoch": wh.epochs.latest_epoch}

    # -- lifecycle -----------------------------------------------------------

    async def serve_async(self) -> asyncio.AbstractServer:
        """Bind and start serving on the running loop; returns the server.

        The concrete port (for ``port=0`` binds) is published on ``.port``
        before this returns.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def close_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def start(self, *, timeout: float = 10.0) -> "ServeServer":
        """Host the event loop on a background thread; returns self.

        Blocks until the listening socket is bound (so ``.port`` is valid).
        """
        if self._thread is not None:
            raise ServeError("server already started")
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.serve_async())
            except BaseException as exc:  # bind failure -> surface in start()
                failure["exc"] = exc
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.close_async())
                loop.close()
                self._stopped.set()

        self._thread = threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise ServeError("server did not start in time")
        if "exc" in failure:
            self._thread.join()
            self._thread = None
            raise ServeError(f"server failed to bind: {failure['exc']}")
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        """Stop the background-thread loop and release the worker pool.

        Lingering connections (e.g. clients of a crashed server that never
        sent ``close``) are aborted first so their handler tasks finish
        before the loop stops.
        """
        if self._loop is not None and self._thread is not None:
            loop = self._loop

            def shutdown() -> None:
                for w in list(self._writers):
                    transport = w.transport
                    if transport is not None:
                        transport.abort()
                # One beat for the aborted handlers to unwind, then stop.
                loop.call_later(0.05, loop.stop)

            self._loop.call_soon_threadsafe(shutdown)
            self._thread.join(timeout)
            self._thread = None
            self._loop = None
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
