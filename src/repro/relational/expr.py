"""Expression trees for the relational engine.

Expressions are immutable AST nodes that *bind* against a
:class:`~repro.relational.schema.Schema` to produce a compiled Python
closure ``row -> value``.  Binding resolves column names to tuple indexes
once, so per-row evaluation involves no name lookups — important because
the paper's relational patterns evaluate join predicates over O(n²) row
pairs.

SQL three-valued logic is implemented: comparisons involving NULL yield
``None``; ``AND``/``OR``/``NOT`` follow Kleene logic; filters and join
predicates accept a row only when the predicate is exactly ``True``.

The node set covers everything the paper's operator patterns need:
column references, literals, arithmetic (including ``MOD``), comparisons,
``IN`` lists, boolean connectives, ``CASE WHEN``, ``COALESCE``, and a few
scalar functions (``ABS``, date part extractors for the intro example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Set, Tuple

from repro.errors import ExpressionError
from repro.relational.schema import Schema

__all__ = [
    "Expr",
    "ColumnRef",
    "Like",
    "Literal",
    "Arithmetic",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "IsNull",
    "CaseExpr",
    "Coalesce",
    "FuncCall",
    "col",
    "lit",
]

Row = Tuple[Any, ...]
Compiled = Callable[[Row], Any]


class Expr:
    """Base class for expression nodes."""

    def bind(self, schema: Schema) -> Compiled:
        """Compile to a closure evaluating this expression over rows of ``schema``."""
        raise NotImplementedError

    def references(self) -> Set[str]:
        """Qualified column names this expression reads."""
        return set()

    # Convenience builders so patterns read naturally: col("a") + 1 > col("b")
    def __add__(self, other: "ExprLike") -> "Arithmetic":
        return Arithmetic("+", self, wrap(other))

    def __sub__(self, other: "ExprLike") -> "Arithmetic":
        return Arithmetic("-", self, wrap(other))

    def __mul__(self, other: "ExprLike") -> "Arithmetic":
        return Arithmetic("*", self, wrap(other))

    def __truediv__(self, other: "ExprLike") -> "Arithmetic":
        return Arithmetic("/", self, wrap(other))

    def __mod__(self, other: "ExprLike") -> "Arithmetic":
        return Arithmetic("%", self, wrap(other))

    def __neg__(self) -> "Arithmetic":
        return Arithmetic("-", Literal(0), self)

    def eq(self, other: "ExprLike") -> "Comparison":
        return Comparison("=", self, wrap(other))

    def ne(self, other: "ExprLike") -> "Comparison":
        return Comparison("<>", self, wrap(other))

    def lt(self, other: "ExprLike") -> "Comparison":
        return Comparison("<", self, wrap(other))

    def le(self, other: "ExprLike") -> "Comparison":
        return Comparison("<=", self, wrap(other))

    def gt(self, other: "ExprLike") -> "Comparison":
        return Comparison(">", self, wrap(other))

    def ge(self, other: "ExprLike") -> "Comparison":
        return Comparison(">=", self, wrap(other))

    def in_(self, items: Sequence["ExprLike"]) -> "InList":
        return InList(self, tuple(wrap(i) for i in items))

    def is_null(self) -> "IsNull":
        return IsNull(self, negated=False)


ExprLike = Any  # Expr | int | float | str | bool | None


def wrap(value: ExprLike) -> Expr:
    """Lift a Python constant to a :class:`Literal` (Exprs pass through)."""
    if isinstance(value, Expr):
        return value
    return Literal(value)


def col(name: str, qualifier: Optional[str] = None) -> "ColumnRef":
    """Shorthand column reference; accepts dotted names (``"s1.pos"``)."""
    if qualifier is None and "." in name:
        qualifier, name = name.split(".", 1)
    return ColumnRef(name, qualifier)


def lit(value: Any) -> "Literal":
    """Shorthand literal constructor (mirrors :func:`col`)."""
    return Literal(value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    qualifier: Optional[str] = None

    def bind(self, schema: Schema) -> Compiled:
        index = schema.resolve(self.name, self.qualifier)
        return lambda row: row[index]

    def references(self) -> Set[str]:
        return {f"{self.qualifier}.{self.name}" if self.qualifier else self.name}

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def bind(self, schema: Schema) -> Compiled:
        value = self.value
        return lambda row: value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        if self.value is None:
            return "NULL"
        return str(self.value)


_ARITH_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def bind(self, schema: Schema) -> Compiled:
        fn = _ARITH_OPS[self.op]
        lc, rc = self.left.bind(schema), self.right.bind(schema)

        def run(row: Row) -> Any:
            a, b = lc(row), rc(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return run

    def references(self) -> Set[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_CMP_OPS: dict = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def bind(self, schema: Schema) -> Compiled:
        fn = _CMP_OPS[self.op]
        lc, rc = self.left.bind(schema), self.right.bind(schema)

        def run(row: Row) -> Optional[bool]:
            a, b = lc(row), rc(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return run

    def references(self) -> Set[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expr):
    items: Tuple[Expr, ...]

    def __init__(self, *items: Expr) -> None:
        object.__setattr__(self, "items", tuple(items))

    def bind(self, schema: Schema) -> Compiled:
        compiled = [item.bind(schema) for item in self.items]

        def run(row: Row) -> Optional[bool]:
            saw_null = False
            for c in compiled:
                v = c(row)
                if v is False:
                    return False
                if v is None:
                    saw_null = True
            return None if saw_null else True

        return run

    def references(self) -> Set[str]:
        out: Set[str] = set()
        for item in self.items:
            out |= item.references()
        return out

    def __str__(self) -> str:
        return "(" + " AND ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Or(Expr):
    items: Tuple[Expr, ...]

    def __init__(self, *items: Expr) -> None:
        object.__setattr__(self, "items", tuple(items))

    def bind(self, schema: Schema) -> Compiled:
        compiled = [item.bind(schema) for item in self.items]

        def run(row: Row) -> Optional[bool]:
            saw_null = False
            for c in compiled:
                v = c(row)
                if v is True:
                    return True
                if v is None:
                    saw_null = True
            return None if saw_null else False

        return run

    def references(self) -> Set[str]:
        out: Set[str] = set()
        for item in self.items:
            out |= item.references()
        return out

    def __str__(self) -> str:
        return "(" + " OR ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Not(Expr):
    item: Expr

    def bind(self, schema: Schema) -> Compiled:
        c = self.item.bind(schema)

        def run(row: Row) -> Optional[bool]:
            v = c(row)
            return None if v is None else (not v)

        return run

    def references(self) -> Set[str]:
        return self.item.references()

    def __str__(self) -> str:
        return f"(NOT {self.item})"


@dataclass(frozen=True)
class InList(Expr):
    item: Expr
    options: Tuple[Expr, ...]

    def bind(self, schema: Schema) -> Compiled:
        c = self.item.bind(schema)
        opts = [o.bind(schema) for o in self.options]

        def run(row: Row) -> Optional[bool]:
            v = c(row)
            if v is None:
                return None
            saw_null = False
            for o in opts:
                ov = o(row)
                if ov is None:
                    saw_null = True
                elif v == ov:
                    return True
            return None if saw_null else False

        return run

    def references(self) -> Set[str]:
        out = self.item.references()
        for o in self.options:
            out |= o.references()
        return out

    def __str__(self) -> str:
        return f"({self.item} IN ({', '.join(str(o) for o in self.options)}))"


@dataclass(frozen=True)
class IsNull(Expr):
    item: Expr
    negated: bool = False

    def bind(self, schema: Schema) -> Compiled:
        c = self.item.bind(schema)
        if self.negated:
            return lambda row: c(row) is not None
        return lambda row: c(row) is None

    def references(self) -> Set[str]:
        return self.item.references()

    def __str__(self) -> str:
        return f"({self.item} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class Like(Expr):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any one char) wildcards.

    The pattern must be a string literal (compiled to a regex once at bind
    time); matching is case-sensitive per the SQL standard.
    """

    item: Expr
    pattern: str
    negated: bool = False

    def bind(self, schema: Schema) -> Compiled:
        import re

        parts = []
        for ch in self.pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        regex = re.compile("".join(parts) + r"\Z", re.DOTALL)
        c = self.item.bind(schema)
        negated = self.negated

        def run(row: Row) -> Optional[bool]:
            v = c(row)
            if v is None:
                return None
            matched = regex.match(str(v)) is not None
            return (not matched) if negated else matched

        return run

    def references(self) -> Set[str]:
        return self.item.references()

    def __str__(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        quoted = self.pattern.replace("'", "''")
        return f"({self.item} {op} '{quoted}')"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE WHEN cond THEN value [...] ELSE value END`` (searched CASE)."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def bind(self, schema: Schema) -> Compiled:
        branches = [(c.bind(schema), v.bind(schema)) for c, v in self.whens]
        default = self.default.bind(schema) if self.default is not None else None

        def run(row: Row) -> Any:
            for cond, value in branches:
                if cond(row) is True:
                    return value(row)
            return default(row) if default is not None else None

        return run

    def references(self) -> Set[str]:
        out: Set[str] = set()
        for c, v in self.whens:
            out |= c.references() | v.references()
        if self.default is not None:
            out |= self.default.references()
        return out

    def __str__(self) -> str:
        parts = ["CASE"]
        for c, v in self.whens:
            parts.append(f"WHEN {c} THEN {v}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Coalesce(Expr):
    items: Tuple[Expr, ...]

    def __init__(self, *items: Expr) -> None:
        object.__setattr__(self, "items", tuple(items))

    def bind(self, schema: Schema) -> Compiled:
        compiled = [item.bind(schema) for item in self.items]

        def run(row: Row) -> Any:
            for c in compiled:
                v = c(row)
                if v is not None:
                    return v
            return None

        return run

    def references(self) -> Set[str]:
        out: Set[str] = set()
        for item in self.items:
            out |= item.references()
        return out

    def __str__(self) -> str:
        return f"COALESCE({', '.join(str(i) for i in self.items)})"


def _fn_mod(a: Any, b: Any) -> Any:
    return a % b


def _fn_abs(a: Any) -> Any:
    return abs(a)


def _fn_month(d: Any) -> Any:
    return d.month


def _fn_year(d: Any) -> Any:
    return d.year


def _fn_day(d: Any) -> Any:
    return d.day


_FUNCTIONS: dict = {
    "MOD": (2, _fn_mod),
    "ABS": (1, _fn_abs),
    "MONTH": (1, _fn_month),
    "YEAR": (1, _fn_year),
    "DAY": (1, _fn_day),
}


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar function call (``MOD``, ``ABS``, ``MONTH``, ``YEAR``, ``DAY``)."""

    name: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        upper = self.name.upper()
        if upper not in _FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {self.name!r}")
        arity, _ = _FUNCTIONS[upper]
        if len(self.args) != arity:
            raise ExpressionError(
                f"{upper} takes {arity} argument(s), got {len(self.args)}"
            )
        object.__setattr__(self, "name", upper)

    def bind(self, schema: Schema) -> Compiled:
        _, fn = _FUNCTIONS[self.name]
        compiled = [a.bind(schema) for a in self.args]

        def run(row: Row) -> Any:
            values = [c(row) for c in compiled]
            if any(v is None for v in values):
                return None
            return fn(*values)

        return run

    def references(self) -> Set[str]:
        out: Set[str] = set()
        for a in self.args:
            out |= a.references()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"
