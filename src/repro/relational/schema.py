"""Schemas: ordered, optionally qualified column lists.

A :class:`Schema` describes the shape of the tuples an operator produces.
Columns carry an optional *qualifier* (table name or alias) so that join
outputs can be addressed as ``s1.pos`` vs ``s2.pos`` — exactly the way the
paper's operator patterns (figs. 2, 4, 10, 13) reference their self-join
sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.types import DataType

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A named, typed column with an optional qualifier."""

    name: str
    type: DataType
    qualifier: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def matches(self, name: str, qualifier: Optional[str]) -> bool:
        if self.name != name:
            return False
        return qualifier is None or self.qualifier == qualifier

    def with_qualifier(self, qualifier: Optional[str]) -> "Column":
        return Column(self.name, self.type, qualifier)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.qualified_name} {self.type.name}"


class Schema:
    """An ordered list of :class:`Column` with name resolution."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: Tuple[Column, ...] = tuple(columns)
        seen = set()
        for col in self.columns:
            key = (col.qualifier, col.name)
            if key in seen:
                raise SchemaError(f"duplicate column {col.qualified_name!r}")
            seen.add(key)

    @classmethod
    def of(cls, *specs: Tuple[str, DataType]) -> "Schema":
        """Build from ``(name, type)`` pairs."""
        return cls(Column(name, typ) for name, typ in specs)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    # -- resolution ------------------------------------------------------------

    def resolve(self, name: str, qualifier: Optional[str] = None) -> int:
        """Index of the column matching ``name`` (optionally ``qualifier``).

        Accepts dotted names (``"s1.pos"``) when no explicit qualifier is
        given.

        Raises:
            SchemaError: unknown or ambiguous column reference.
        """
        if qualifier is None and "." in name:
            qualifier, name = name.split(".", 1)
        matches = [
            i for i, col in enumerate(self.columns) if col.matches(name, qualifier)
        ]
        if not matches:
            ref = f"{qualifier}.{name}" if qualifier else name
            raise SchemaError(f"unknown column {ref!r} (have {[c.qualified_name for c in self.columns]})")
        if len(matches) > 1:
            ref = f"{qualifier}.{name}" if qualifier else name
            raise SchemaError(f"ambiguous column {ref!r}")
        return matches[0]

    def column(self, name: str, qualifier: Optional[str] = None) -> Column:
        return self.columns[self.resolve(name, qualifier)]

    # -- construction helpers -----------------------------------------------------

    def qualify(self, qualifier: str) -> "Schema":
        """Re-qualify every column (table scan under an alias)."""
        return Schema(c.with_qualifier(qualifier) for c in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Join output schema (left columns then right columns)."""
        return Schema(tuple(self.columns) + tuple(other.columns))

    def project(self, indexes: Sequence[int]) -> "Schema":
        return Schema(self.columns[i] for i in indexes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Schema(" + ", ".join(str(c) for c in self.columns) + ")"
