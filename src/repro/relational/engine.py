"""The database facade: DDL/DML plus plan execution.

:class:`Database` is the engine's user-facing object.  SQL text goes
through :meth:`Database.sql` (which delegates to :mod:`repro.sql`);
programmatic plans built from the operator classes execute via
:meth:`Database.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.relational.catalog import Catalog, ColumnSpec
from repro.relational.operators import Operator, TableScan
from repro.relational.schema import Schema
from repro.relational.stats import ExecutionStats
from repro.relational.table import Table

__all__ = ["Database", "Result"]

Row = Tuple[Any, ...]


@dataclass
class Result:
    """Materialized result of one plan execution."""

    schema: Schema
    rows: List[Row]
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def columns(self) -> List[str]:
        return self.schema.names()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def first(self) -> Optional[Row]:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> List[Any]:
        """All values of one output column."""
        i = self.schema.resolve(name)
        return [row[i] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        names = self.columns
        return [dict(zip(names, row)) for row in self.rows]

    def to_csv(self, path: str, *, header: bool = True) -> int:
        """Write the rows as CSV; returns the number of data rows written.

        NULL becomes an empty field; dates use ISO format.
        """
        import csv
        import datetime

        def cell(value: Any) -> Any:
            if value is None:
                return ""
            if isinstance(value, datetime.date):
                return value.isoformat()
            return value

        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            if header:
                writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow([cell(v) for v in row])
        return len(self.rows)

    def pretty(self, limit: int = 20) -> str:
        """Fixed-width text rendering (for examples and EXPERIMENTS logs)."""
        names = self.columns
        shown = self.rows[:limit]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max(len(names[i]), *(len(r[i]) for r in cells)) if cells else len(names[i])
            for i in range(len(names))
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [" | ".join(c.rjust(w) for c, w in zip(row, widths)) for row in cells]
        suffix = [] if len(self.rows) <= limit else [f"... ({len(self.rows)} rows)"]
        return "\n".join([header, sep] + body + suffix)


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# Tables at or below this row count are re-analyzed on every bulk insert;
# larger tables keep their (now stale) statistics until an explicit ANALYZE,
# so loads stay O(rows) and the planner degrades to rule-based choices.
AUTO_ANALYZE_MAX_ROWS = 200_000


class Database:
    """An in-memory relational database instance."""

    def __init__(self) -> None:
        from repro.stats.catalog import StatsCatalog

        self.catalog = Catalog()
        self.stats = StatsCatalog()
        # Out-of-core knobs: set by load_database() for v4 (paged) dumps,
        # or directly by callers that want bounded-memory execution.
        # memory_budget_bytes caps both buffer-pool residency and operator
        # state (hash-aggregate partitions / window runs spill past it);
        # None keeps the historical unlimited in-memory behaviour.
        self.buffer_pool = None
        self.memory_budget_bytes: Optional[int] = None

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[ColumnSpec],
        *,
        primary_key: Optional[Sequence[str]] = None,
        if_not_exists: bool = False,
    ) -> Table:
        return self.catalog.create_table(
            name, columns, primary_key=primary_key, if_not_exists=if_not_exists
        )

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        self.catalog.drop_table(name, if_exists=if_exists)
        self.stats.drop(name)

    def rename_table(self, old: str, new: str, *, replace: bool = False) -> Table:
        """Atomically rebind a table name (see :meth:`Catalog.rename_table`)."""
        table = self.catalog.rename_table(old, new, replace=replace)
        self.stats.rename(old, new)
        return table

    def create_index(
        self,
        table: str,
        name: str,
        columns: Sequence[str],
        *,
        kind: str = "sorted",
        unique: bool = False,
    ):
        return self.catalog.table(table).create_index(
            name, columns, kind=kind, unique=unique
        )

    def drop_index(self, table: str, name: str) -> None:
        self.catalog.table(table).drop_index(name)

    # -- DML -----------------------------------------------------------------

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        tbl = self.catalog.table(table)
        count = tbl.insert_many(rows)
        if len(tbl) <= AUTO_ANALYZE_MAX_ROWS:
            self.stats.analyze(tbl)
        return count

    def analyze(self, table: Optional[str] = None) -> dict:
        """Collect optimizer statistics for one table (or all of them)."""
        tables = (
            [self.table(table)] if table is not None else list(self.catalog.tables())
        )
        return {t.name: self.stats.analyze(t) for t in tables}

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def scan(self, name: str, alias: Optional[str] = None) -> TableScan:
        """A table-scan leaf for programmatic plan building."""
        return TableScan(self.catalog.table(name), alias)

    # -- execution -------------------------------------------------------------

    def run(self, plan: Operator, stats: Optional[ExecutionStats] = None) -> Result:
        """Execute a physical plan and materialize the result.

        When this call creates the stats block (``stats=None``), the
        block's counters are published into the global metrics registry on
        completion — callers that pass their own block own publication
        (see :mod:`repro.obs.runtime`).  With a tracer installed, every
        plan node emits a span (unless the caller probed the plan already).
        """
        from repro.obs import runtime

        owns_stats = stats is None
        if owns_stats:
            stats = ExecutionStats()
        tracer = runtime.get_tracer()
        with self._budget_scope():
            if tracer.enabled and "execute" not in plan.__dict__:
                from repro.obs.instrument import PlanProbe

                with tracer.span("query.run"), PlanProbe(plan, tracer):
                    rows = list(plan.execute(stats))
            else:
                rows = list(plan.execute(stats))
        if owns_stats:
            self._publish(stats)
        return Result(plan.schema, rows, stats)

    def _budget_scope(self):
        """Ambient spill budget for one plan execution (no-op when unset)."""
        from contextlib import nullcontext

        if self.memory_budget_bytes is None:
            return nullcontext()
        from repro.storage.spill import engine_budget

        return engine_budget(self.memory_budget_bytes)

    @staticmethod
    def _publish(stats: ExecutionStats) -> None:
        from repro.obs import runtime

        runtime.publish_stats(stats)
        runtime.get_registry().counter(
            "repro_engine_queries_total",
            help="Plan executions whose stats block the engine owned",
        ).inc()

    def run_batches(
        self,
        plan: Operator,
        stats: Optional[ExecutionStats] = None,
        *,
        chunk_rows: int = 65536,
    ) -> "ChunkedBatch":
        """Execute a plan on the batch-at-a-time path.

        Returns the columnar result as a
        :class:`~repro.columns.ChunkedBatch` (possibly zero-copy views of
        table heaps).  The logical rows equal :meth:`run`'s, except
        floating-point aggregates may differ in the last ulp (pairwise
        versus sequential summation).
        """
        from repro.columns import ChunkedBatch
        from repro.obs import runtime

        owns_stats = stats is None
        if owns_stats:
            stats = ExecutionStats()
        tracer = runtime.get_tracer()
        with self._budget_scope():
            if tracer.enabled and "execute" not in plan.__dict__:
                from repro.obs.instrument import PlanProbe

                with tracer.span("query.run"), PlanProbe(plan, tracer):
                    chunks = list(plan.execute_batches(stats, chunk_rows))
            else:
                chunks = list(plan.execute_batches(stats, chunk_rows))
        if owns_stats:
            self._publish(stats)
        return ChunkedBatch(plan.schema.names(), chunks)

    def explain(self, plan: Operator) -> str:
        return plan.explain()

    def explain_analyze(self, text: str, **options: Any) -> str:
        """Execute a SELECT and render the plan tree with actual rows,
        per-operator inclusive wall time and strategy decisions."""
        from repro.obs.explain import explain_analyze_plan
        from repro.sql.parser import parse_query
        from repro.sql.planner import build_plan

        plan = build_plan(self, parse_query(text), **options)
        rendered, _result = explain_analyze_plan(self, plan)
        return rendered

    # -- SQL front door (delegates to repro.sql; import deferred to avoid a
    #    package cycle: repro.sql depends on the relational layer) -------------

    def sql(self, text: str, **options: Any) -> Result:
        """Parse, plan and execute a SQL statement (SELECT or DDL/DML)."""
        from repro.sql.statements import execute_statement, parse_statement

        return execute_statement(self, parse_statement(text), **options)

    def explain_sql(self, text: str, **options: Any) -> str:
        from repro.sql.planner import explain_sql

        return explain_sql(self, text, **options)
