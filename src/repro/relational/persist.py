"""Durable storage: save/load a database to a directory.

Layout::

    <dir>/catalog.json              tables, schemas, primary keys, indexes,
                                    CRCs, page directories, format version
    <dir>/data/<table>.pages        format v4: fixed-size CRC32 pages of
                                    column chunks (out-of-core)
    <dir>/data/<table>.cols.json    format v3: one JSON array per column
    <dir>/data/<table>.jsonl        formats v1/v2: one JSON array per row

Format v3 (the default) serializes each table column-wise — one value
array per column, mirroring the in-memory columnar heap, so saving reads
each column buffer sequentially instead of materializing row tuples.
Versions 1 (no checksums) and 2 (row JSON-lines + CRC32) remain loadable;
``save_database(..., format_version=2)`` still writes the row format for
interoperability, and ``repro migrate`` upgrades old dumps in place.

Format v4 (``format_version=4``) is the *out-of-core* format: each
column is packed into fixed-size pages (:mod:`repro.storage.page`) with a
per-page CRC32 recorded in the catalog's page directory, and loading
builds :class:`~repro.storage.paged.PagedTable`s behind a shared
:class:`~repro.storage.buffer_pool.BufferPool` (``memory_budget_bytes``)
instead of ingesting rows eagerly — only the index rebuild streams the
data once; afterwards residency is bounded by the pool budget.

Values are typed through a small codec shared by all versions (dates
become ``{"$date": "YYYY-MM-DD"}``, NULL is JSON ``null``).  Loading
rebuilds tables and recreates secondary indexes; constraint checks
re-run, so a corrupted dump cannot smuggle in duplicate primary keys.

Crash consistency and corruption detection:

* every file is written to a ``.tmp`` sibling and published with
  ``os.replace`` — a crash mid-save never tears an existing dump;
* the catalog (written *last*, after every data file has landed) records a
  CRC32 per table; :func:`load_database` re-hashes each data file and
  raises a :class:`~repro.errors.CatalogError` naming the corrupt table
  before any rows are ingested.

The ``storage_write`` fault site lets tests inject a write failure for a
chosen table and assert that the pre-existing dump survives untouched.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional

from repro.errors import CatalogError
from repro.relational.engine import Database
from repro.relational.types import type_by_name
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    decode_value as _decode_value,
    encode_value as _encode_value,
    paginate_values,
)

__all__ = ["save_database", "load_database"]

# Version history: 1 = row JSONL, no checksums; 2 = row JSONL + per-table
# CRC32; 3 = columnar JSON (one array per column) + CRC32; 4 = paged
# columnar (fixed-size CRC32 pages, loaded out-of-core).  All four load;
# v3 stays the default write format (v4 is opt-in — callers that want
# bounded-memory loading ask for it explicitly).
_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3, 4)
_WRITABLE_VERSIONS = (2, 3, 4)


def _atomic_write(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a temp file + atomic rename."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def _row_payload(table) -> bytes:
    """Format v1/v2 data payload: one JSON array per row (JSON lines)."""
    lines = []
    for row in table.rows:
        lines.append(json.dumps([_encode_value(v) for v in row]))
        lines.append("\n")
    return "".join(lines).encode("utf-8")


def _columnar_payload(table) -> bytes:
    """Format v3 data payload: one JSON value array per column.

    Reads each column buffer sequentially (``column_values`` is a
    zero-copy snapshot of the heap) — no row tuples are materialized.
    """
    doc = {
        "num_rows": len(table),
        "columns": [
            {
                "name": column.name,
                "values": [
                    _encode_value(v)
                    for v in table.column_values(i).to_pylist()
                ],
            }
            for i, column in enumerate(table.schema)
        ],
    }
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")


def _paged_payload(table, page_size: int):
    """Format v4 data payload + page directory.

    Each column's values are packed into fixed-size pages; the directory
    records ``{column: [{page, start, rows, crc32}, ...]}`` so the loader
    can seek straight to the band of pages a read needs.
    """
    blobs: List[bytes] = []
    directory: Dict[str, Any] = {}
    page_no = 0
    for i, column in enumerate(table.schema):
        values = table.column_values(i).to_pylist()
        raw_pages, entries = paginate_values(
            table.name, column.name, values, page_size, page_no
        )
        blobs.extend(raw_pages)
        directory[column.name] = entries
        page_no += len(raw_pages)
    return b"".join(blobs), directory


def _data_filename(table_name: str, format_version: int) -> str:
    if format_version >= 4:
        return f"{table_name}.pages"
    if format_version >= 3:
        return f"{table_name}.cols.json"
    return f"{table_name}.jsonl"


def save_database(
    db: Database,
    directory: str,
    *,
    format_version: int = _FORMAT_VERSION,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> None:
    """Write every table (schema, rows, indexes) under ``directory``.

    Args:
        format_version: 3 (columnar, default), 4 (paged columnar for
            out-of-core loading) or 2 (row JSON-lines, for
            interoperability with older readers).
        page_size: fixed page size in bytes for format 4 (ignored
            otherwise).

    Atomic at file granularity: each data file and the catalog are staged
    to a temp sibling and renamed into place, and the catalog — the file
    load trusts — is only published after every data file it references
    has landed.  A failure mid-save (including the injected
    ``storage_write`` fault) leaves any previous dump loadable.
    """
    from repro.faults import injector

    if format_version not in _WRITABLE_VERSIONS:
        raise CatalogError(
            f"cannot write dump version {format_version!r} "
            f"(writable: {list(_WRITABLE_VERSIONS)})"
        )
    data_dir = os.path.join(directory, "data")
    os.makedirs(data_dir, exist_ok=True)
    catalog: Dict[str, Any] = {"version": format_version, "tables": []}
    for table in db.catalog.tables():
        injector.check("storage_write", table.name)
        page_directory = None
        if format_version >= 4:
            payload, page_directory = _paged_payload(table, page_size)
        elif format_version >= 3:
            payload = _columnar_payload(table)
        else:
            payload = _row_payload(table)
        data_file = _data_filename(table.name, format_version)
        entry = {
            "name": table.name,
            "columns": [
                {"name": c.name, "type": c.type.name} for c in table.schema
            ],
            "primary_key": list(table.primary_key or ()),
            "indexes": [
                {
                    "name": index.name,
                    "columns": [table.schema.columns[i].name
                                for i in index.column_indexes],
                    "kind": index.kind,
                    "unique": index.unique,
                }
                for index in table.indexes.values()
                if not index.name.endswith("_pk")  # recreated from primary_key
            ],
            "data_file": data_file,
            "crc32": zlib.crc32(payload),
        }
        if page_directory is not None:
            # v4: integrity is per page (header CRC + the directory CRCs
            # below); drop the whole-file CRC so loading never has to
            # read the entire file up front.
            del entry["crc32"]
            entry["pages"] = {
                "page_size": page_size,
                "num_rows": len(table),
                "columns": page_directory,
            }
        stats_doc = db.stats.dump(table.name)
        if stats_doc is not None:
            entry["stats"] = stats_doc
        catalog["tables"].append(entry)
        _atomic_write(os.path.join(data_dir, data_file), payload)
    _atomic_write(
        os.path.join(directory, "catalog.json"),
        json.dumps(catalog, indent=2).encode("utf-8"),
    )


def _decode_rows(payload: bytes) -> List[List[Any]]:
    """Decode a v1/v2 row JSON-lines payload."""
    rows: List[List[Any]] = []
    for line in payload.decode("utf-8").splitlines():
        line = line.strip()
        if line:
            rows.append([_decode_value(v) for v in json.loads(line)])
    return rows


def _decode_columnar(
    table_name: str, payload: bytes, expected_columns: int
) -> List[List[Any]]:
    """Decode a v3 columnar payload back to row lists for ingestion."""
    if not payload:
        return []
    doc = json.loads(payload.decode("utf-8"))
    cols = doc.get("columns", [])
    if len(cols) != expected_columns:
        raise CatalogError(
            f"table {table_name!r}: dump has {len(cols)} columns, "
            f"catalog declares {expected_columns}"
        )
    num_rows = doc.get("num_rows", 0)
    decoded = []
    for col in cols:
        values = [_decode_value(v) for v in col["values"]]
        if len(values) != num_rows:
            raise CatalogError(
                f"table {table_name!r}: column {col.get('name')!r} has "
                f"{len(values)} values for {num_rows} rows"
            )
        decoded.append(values)
    return [list(row) for row in zip(*decoded)] if num_rows else []


def _attach_paged(db: Database, table, entry: Dict[str, Any], path: str):
    """Turn a freshly created empty table into a PagedTable over ``path``."""
    from repro.columns import kind_for_type
    from repro.storage.buffer_pool import PageRef
    from repro.storage.paged import PagedColumnStore, PagedTable
    from repro.storage.pager import PageFile

    pages = entry["pages"]
    if not os.path.exists(path) and pages["num_rows"]:
        raise CatalogError(
            f"data file for table {entry['name']!r} is missing: {path}"
        )
    file = PageFile(path, pages["page_size"])
    stores = []
    for column in table.schema:
        refs = [
            PageRef(
                file,
                e["page"],
                table.name,
                column.name,
                e["start"],
                e["rows"],
                e.get("crc32"),
            )
            for e in pages["columns"].get(column.name, [])
        ]
        stores.append(
            PagedColumnStore(
                kind_for_type(column.type.name),
                db.buffer_pool,
                file,
                table.name,
                column.name,
                refs,
            )
        )
    for i, store in enumerate(stores):
        if len(store) != pages["num_rows"]:
            raise CatalogError(
                f"table {entry['name']!r}: page directory for column "
                f"{table.schema.columns[i].name!r} covers {len(store)} rows "
                f"for {pages['num_rows']} rows"
            )
    return PagedTable.attach(table, stores, db.buffer_pool, pages["num_rows"])


def load_database(
    directory: str, *, memory_budget_bytes: Optional[int] = None
) -> Database:
    """Rebuild a database saved with :func:`save_database`.

    Args:
        memory_budget_bytes: buffer-pool budget for v4 (paged) dumps —
            the cap on resident page bytes.  Defaults to
            :data:`~repro.storage.buffer_pool.DEFAULT_MEMORY_BUDGET`;
            ignored for fully in-memory formats (v1–v3).

    Raises:
        CatalogError: missing or version-incompatible dump, or a data file
            whose CRC32 no longer matches the catalog (the error names the
            corrupt table).  v4 page CRCs are checked lazily on first
            fault-in (:class:`~repro.errors.PageCorruptError`).
    """
    catalog_path = os.path.join(directory, "catalog.json")
    if not os.path.exists(catalog_path):
        raise CatalogError(f"no database dump at {directory!r}")
    with open(catalog_path, encoding="utf-8") as fh:
        catalog = json.load(fh)
    if catalog.get("version") not in _SUPPORTED_VERSIONS:
        raise CatalogError(
            f"dump version {catalog.get('version')!r} is not supported "
            f"(expected one of {list(_SUPPORTED_VERSIONS)})"
        )
    version = catalog.get("version")
    db = Database()
    if version >= 4:
        from repro.storage.buffer_pool import DEFAULT_MEMORY_BUDGET, BufferPool

        budget = (
            DEFAULT_MEMORY_BUDGET
            if memory_budget_bytes is None
            else memory_budget_bytes
        )
        page_size = max(
            (e["pages"]["page_size"] for e in catalog["tables"] if "pages" in e),
            default=4096,
        )
        db.buffer_pool = BufferPool(budget, page_size=page_size)
        db.memory_budget_bytes = budget
    for entry in catalog["tables"]:
        columns = [(c["name"], type_by_name(c["type"])) for c in entry["columns"]]
        table = db.create_table(
            entry["name"], columns, primary_key=entry["primary_key"] or None
        )
        data_file = entry.get("data_file") or _data_filename(
            entry["name"], version
        )
        path = os.path.join(directory, "data", data_file)
        if "pages" in entry:
            table = _attach_paged(db, table, entry, path)
        else:
            payload = b""
            if os.path.exists(path):
                with open(path, "rb") as fh:
                    payload = fh.read()
            want = entry.get("crc32")
            if want is not None and zlib.crc32(payload) != want:
                raise CatalogError(
                    f"data file for table {entry['name']!r} is corrupt: "
                    f"CRC32 {zlib.crc32(payload)} != cataloged {want} "
                    f"({path})"
                )
            if data_file.endswith(".cols.json"):
                rows = _decode_columnar(entry["name"], payload, len(columns))
            else:
                rows = _decode_rows(payload)
            table.insert_many(rows)
        # Optimizer statistics travel with the dump; older dumps (or tables
        # saved before their first ANALYZE) re-collect on load instead.
        from repro.relational.engine import AUTO_ANALYZE_MAX_ROWS

        stats_doc = entry.get("stats")
        if stats_doc is not None:
            db.stats.load(entry["name"], stats_doc)
        elif len(table) <= AUTO_ANALYZE_MAX_ROWS:
            db.stats.analyze(table)
        for index in entry["indexes"]:
            table.create_index(
                index["name"],
                index["columns"],
                kind=index["kind"],
                unique=index["unique"],
            )
    return db
