"""Durable storage: save/load a database to a directory.

Layout::

    <dir>/catalog.json          tables, schemas, primary keys, indexes, CRCs
    <dir>/data/<table>.jsonl    one JSON array per row

JSON-lines keeps the format human-inspectable and diff-able; values are
typed through a small codec (dates become ``{"$date": "YYYY-MM-DD"}``,
NULL is JSON ``null``).  Loading rebuilds tables and recreates secondary
indexes; constraint checks re-run, so a corrupted dump cannot smuggle in
duplicate primary keys.

Crash consistency and corruption detection:

* every file is written to a ``.tmp`` sibling and published with
  ``os.replace`` — a crash mid-save never tears an existing dump;
* the catalog (written *last*, after every data file has landed) records a
  CRC32 per table; :func:`load_database` re-hashes each data file and
  raises a :class:`~repro.errors.CatalogError` naming the corrupt table
  before any rows are ingested.

The ``storage_write`` fault site lets tests inject a write failure for a
chosen table and assert that the pre-existing dump survives untouched.
"""

from __future__ import annotations

import datetime
import json
import os
import zlib
from typing import Any, Dict, List

from repro.errors import CatalogError
from repro.relational.engine import Database
from repro.relational.types import type_by_name

__all__ = ["save_database", "load_database"]

# Version 2 adds the per-table "crc32" field; version-1 dumps (no checksum)
# are still loadable.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def _atomic_write(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a temp file + atomic rename."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def save_database(db: Database, directory: str) -> None:
    """Write every table (schema, rows, indexes) under ``directory``.

    Atomic at file granularity: each data file and the catalog are staged
    to a temp sibling and renamed into place, and the catalog — the file
    load trusts — is only published after every data file it references
    has landed.  A failure mid-save (including the injected
    ``storage_write`` fault) leaves any previous dump loadable.
    """
    from repro.faults import injector

    data_dir = os.path.join(directory, "data")
    os.makedirs(data_dir, exist_ok=True)
    catalog: Dict[str, Any] = {"version": _FORMAT_VERSION, "tables": []}
    for table in db.catalog.tables():
        injector.check("storage_write", table.name)
        lines = []
        for row in table.rows:
            lines.append(json.dumps([_encode_value(v) for v in row]))
            lines.append("\n")
        payload = "".join(lines).encode("utf-8")
        entry = {
            "name": table.name,
            "columns": [
                {"name": c.name, "type": c.type.name} for c in table.schema
            ],
            "primary_key": list(table.primary_key or ()),
            "indexes": [
                {
                    "name": index.name,
                    "columns": [table.schema.columns[i].name
                                for i in index.column_indexes],
                    "kind": index.kind,
                    "unique": index.unique,
                }
                for index in table.indexes.values()
                if not index.name.endswith("_pk")  # recreated from primary_key
            ],
            "crc32": zlib.crc32(payload),
        }
        catalog["tables"].append(entry)
        _atomic_write(os.path.join(data_dir, f"{table.name}.jsonl"), payload)
    _atomic_write(
        os.path.join(directory, "catalog.json"),
        json.dumps(catalog, indent=2).encode("utf-8"),
    )


def load_database(directory: str) -> Database:
    """Rebuild a database saved with :func:`save_database`.

    Raises:
        CatalogError: missing or version-incompatible dump, or a data file
            whose CRC32 no longer matches the catalog (the error names the
            corrupt table).
    """
    catalog_path = os.path.join(directory, "catalog.json")
    if not os.path.exists(catalog_path):
        raise CatalogError(f"no database dump at {directory!r}")
    with open(catalog_path, encoding="utf-8") as fh:
        catalog = json.load(fh)
    if catalog.get("version") not in _SUPPORTED_VERSIONS:
        raise CatalogError(
            f"dump version {catalog.get('version')!r} is not supported "
            f"(expected one of {list(_SUPPORTED_VERSIONS)})"
        )
    db = Database()
    for entry in catalog["tables"]:
        columns = [(c["name"], type_by_name(c["type"])) for c in entry["columns"]]
        table = db.create_table(
            entry["name"], columns, primary_key=entry["primary_key"] or None
        )
        path = os.path.join(directory, "data", f"{entry['name']}.jsonl")
        payload = b""
        if os.path.exists(path):
            with open(path, "rb") as fh:
                payload = fh.read()
        want = entry.get("crc32")
        if want is not None and zlib.crc32(payload) != want:
            raise CatalogError(
                f"data file for table {entry['name']!r} is corrupt: "
                f"CRC32 {zlib.crc32(payload)} != cataloged {want} "
                f"({path})"
            )
        rows: List[List[Any]] = []
        for line in payload.decode("utf-8").splitlines():
            line = line.strip()
            if line:
                rows.append([_decode_value(v) for v in json.loads(line)])
        table.insert_many(rows)
        for index in entry["indexes"]:
            table.create_index(
                index["name"],
                index["columns"],
                kind=index["kind"],
                unique=index["unique"],
            )
    return db
