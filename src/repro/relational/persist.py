"""Durable storage: save/load a database to a directory.

Layout::

    <dir>/catalog.json          tables, schemas, primary keys, indexes
    <dir>/data/<table>.jsonl    one JSON array per row

JSON-lines keeps the format human-inspectable and diff-able; values are
typed through a small codec (dates become ``{"$date": "YYYY-MM-DD"}``,
NULL is JSON ``null``).  Loading rebuilds tables and recreates secondary
indexes; constraint checks re-run, so a corrupted dump cannot smuggle in
duplicate primary keys.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Any, Dict, List

from repro.errors import CatalogError
from repro.relational.engine import Database
from repro.relational.types import type_by_name

__all__ = ["save_database", "load_database"]

_FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def save_database(db: Database, directory: str) -> None:
    """Write every table (schema, rows, indexes) under ``directory``."""
    data_dir = os.path.join(directory, "data")
    os.makedirs(data_dir, exist_ok=True)
    catalog: Dict[str, Any] = {"version": _FORMAT_VERSION, "tables": []}
    for table in db.catalog.tables():
        entry = {
            "name": table.name,
            "columns": [
                {"name": c.name, "type": c.type.name} for c in table.schema
            ],
            "primary_key": list(table.primary_key or ()),
            "indexes": [
                {
                    "name": index.name,
                    "columns": [table.schema.columns[i].name
                                for i in index.column_indexes],
                    "kind": index.kind,
                    "unique": index.unique,
                }
                for index in table.indexes.values()
                if not index.name.endswith("_pk")  # recreated from primary_key
            ],
        }
        catalog["tables"].append(entry)
        path = os.path.join(data_dir, f"{table.name}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            for row in table.rows:
                fh.write(json.dumps([_encode_value(v) for v in row]))
                fh.write("\n")
    with open(os.path.join(directory, "catalog.json"), "w", encoding="utf-8") as fh:
        json.dump(catalog, fh, indent=2)


def load_database(directory: str) -> Database:
    """Rebuild a database saved with :func:`save_database`.

    Raises:
        CatalogError: missing or version-incompatible dump.
    """
    catalog_path = os.path.join(directory, "catalog.json")
    if not os.path.exists(catalog_path):
        raise CatalogError(f"no database dump at {directory!r}")
    with open(catalog_path, encoding="utf-8") as fh:
        catalog = json.load(fh)
    if catalog.get("version") != _FORMAT_VERSION:
        raise CatalogError(
            f"dump version {catalog.get('version')!r} is not supported "
            f"(expected {_FORMAT_VERSION})"
        )
    db = Database()
    for entry in catalog["tables"]:
        columns = [(c["name"], type_by_name(c["type"])) for c in entry["columns"]]
        table = db.create_table(
            entry["name"], columns, primary_key=entry["primary_key"] or None
        )
        path = os.path.join(directory, "data", f"{entry['name']}.jsonl")
        rows: List[List[Any]] = []
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        rows.append([_decode_value(v) for v in json.loads(line)])
        table.insert_many(rows)
        for index in entry["indexes"]:
            table.create_index(
                index["name"],
                index["columns"],
                kind=index["kind"],
                unique=index["unique"],
            )
    return db
