"""Volcano-style iterator operators (scan, filter, project, sort, union).

Every operator exposes:

* ``schema`` — the output row shape (bound at construction time);
* ``execute(stats)`` — an iterator of tuples, threading an
  :class:`~repro.relational.stats.ExecutionStats` block;
* ``explain(indent)`` — a plan-tree pretty print used by ``EXPLAIN``.

Join and aggregation operators live in :mod:`repro.relational.join` and
:mod:`repro.relational.aggregate`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.columns import Batch, kinds_for_schema
from repro.errors import PlanError
from repro.relational.expr import And, ColumnRef, Comparison, Expr, Literal, Or
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.table import Table
from repro.relational.types import DataType, FLOAT

__all__ = [
    "Alias",
    "Operator",
    "TableScan",
    "Filter",
    "Project",
    "Sort",
    "Limit",
    "UnionAll",
    "Distinct",
]

Row = Tuple[Any, ...]

# Default rows per batch on the batch-at-a-time paths.
BATCH_ROWS = 65536


class Operator:
    """Base class for executable plan nodes."""

    schema: Schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        raise NotImplementedError

    def execute_batches(
        self, stats: ExecutionStats, chunk_rows: int = BATCH_ROWS
    ) -> Iterator[Batch]:
        """Batch-at-a-time execution: yield :class:`Batch` chunks.

        The base implementation bridges the tuple-at-a-time ``execute``
        path, columnarizing ``chunk_rows`` rows at a time with kinds
        derived from the operator schema.  Operators with a native
        columnar strategy (scan, filter, band join, aggregate) override
        this; either way the logical row stream is identical to
        ``execute`` (floating-point aggregates excepted — see
        :mod:`repro.relational.aggregate`).
        """
        kinds = kinds_for_schema(self.schema)
        names = self.schema.names()
        buffer: List[Row] = []
        for row in self.execute(stats):
            buffer.append(row)
            if len(buffer) >= chunk_rows:
                yield Batch.from_rows(names, buffer, kinds)
                buffer = []
        if buffer:
            yield Batch.from_rows(names, buffer, kinds)

    def children(self) -> Sequence["Operator"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class TableScan(Operator):
    """Full scan of a base table, optionally under an alias."""

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        self.table = table
        self.alias = alias or table.name
        self.schema = table.schema.qualify(self.alias)

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        # Accumulate locally and flush once: the counter fields are
        # registry-backed properties, too slow for a per-row += in the
        # engine's hottest loop (and the flush also covers early teardown
        # by a LIMIT upstream).
        scanned = 0
        try:
            for row in self.table.rows:
                scanned += 1
                yield row
        finally:
            stats.rows_scanned += scanned

    def execute_batches(
        self, stats: ExecutionStats, chunk_rows: int = BATCH_ROWS
    ) -> Iterator[Batch]:
        # Native path: hand out zero-copy snapshot slices of the heap —
        # no row tuples are ever built.
        for batch in self.table.batches(chunk_rows):
            stats.rows_scanned += batch.num_rows
            yield batch

    def label(self) -> str:
        if self.alias != self.table.name:
            return f"TableScan({self.table.name} AS {self.alias})"
        return f"TableScan({self.table.name})"


class Alias(Operator):
    """Re-qualify a child's output columns under a binding name.

    Used for derived tables: ``FROM (SELECT ...) d`` exposes the subquery's
    columns as ``d.<name>``.
    """

    def __init__(self, child: Operator, alias: str) -> None:
        self.child = child
        self.alias = alias
        self.schema = Schema(
            Column(c.name, c.type, alias) for c in child.schema
        )

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        return self.child.execute(stats)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Alias({self.alias})"


class Filter(Operator):
    """Selection: keep rows whose predicate evaluates to exactly TRUE."""

    def __init__(self, child: Operator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._compiled = predicate.bind(child.schema)
        self._vectorized = _vector_predicate(predicate, child.schema)

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        compiled = self._compiled
        for row in self.child.execute(stats):
            if compiled(row) is True:
                yield row

    def execute_batches(
        self, stats: ExecutionStats, chunk_rows: int = BATCH_ROWS
    ) -> Iterator[Batch]:
        compiled = self._compiled
        vectorized = self._vectorized
        for batch in self.child.execute_batches(stats, chunk_rows):
            mask = vectorized(batch) if vectorized is not None else None
            if mask is None:
                # Row fallback: the predicate shape (or a per-batch object
                # column) is outside the vectorizable subset.
                mask = np.fromiter(
                    (compiled(row) is True for row in batch.iter_rows()),
                    dtype=np.bool_,
                    count=batch.num_rows,
                )
            if mask.all():
                yield batch  # zero-copy pass-through
            elif mask.any():
                yield batch.filter(mask)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.predicate})"


def _vector_predicate(
    expr: Expr, schema: Schema
) -> Optional[Callable[[Batch], Optional[np.ndarray]]]:
    """Compile ``expr`` to a whole-batch ``is TRUE`` mask evaluator.

    Returns ``None`` when the predicate shape is outside the vectorizable
    subset (comparisons between column refs and literals, AND/OR of such).
    The compiled evaluator itself may return ``None`` for a particular
    batch (e.g. an ``object``-kinded operand) — the caller then falls back
    to row evaluation for that batch.  Kleene semantics hold because a
    mask entry means "predicate is exactly TRUE": NULL operands clear it.
    """
    if isinstance(expr, (And, Or)):
        parts = [_vector_predicate(item, schema) for item in expr.items]
        if any(p is None for p in parts):
            return None
        combine = np.logical_and if isinstance(expr, And) else np.logical_or

        def run_bool(batch: Batch) -> Optional[np.ndarray]:
            masks = [p(batch) for p in parts]  # type: ignore[misc]
            if any(m is None for m in masks):
                return None
            out = masks[0]
            for m in masks[1:]:
                out = combine(out, m)
            return out

        return run_bool
    if not isinstance(expr, Comparison):
        return None

    def operand(side: Expr):
        if isinstance(side, ColumnRef):
            return ("col", schema.resolve(side.name, side.qualifier))
        if isinstance(side, Literal):
            return ("lit", side.value)
        return None

    left, right = operand(expr.left), operand(expr.right)
    if left is None or right is None or (left[0] == "lit" and right[0] == "lit"):
        return None
    op = {
        "=": np.equal,
        "<>": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }[expr.op]

    def run_cmp(batch: Batch) -> Optional[np.ndarray]:
        validity: Optional[np.ndarray] = None
        values = []
        for tag, payload in (left, right):
            if tag == "lit":
                if payload is None:
                    return np.zeros(batch.num_rows, dtype=np.bool_)
                if isinstance(payload, bool) or not isinstance(
                    payload, (int, float)
                ):
                    return None
                values.append(payload)
                continue
            col = batch.columns[payload]
            if col.kind not in ("int64", "float64"):
                return None
            values.append(col.data)
            if col.validity is not None:
                validity = (
                    col.validity
                    if validity is None
                    else validity & col.validity
                )
        mask = op(values[0], values[1])
        if validity is not None:
            mask = mask & validity
        return mask

    return run_cmp


class Project(Operator):
    """Projection: compute output columns from expressions.

    Args:
        outputs: ``(expr, name)`` pairs; output columns are unqualified.
        types: optional per-column types; defaults to FLOAT for computed
            expressions and the source type for plain column references.
    """

    def __init__(
        self,
        child: Operator,
        outputs: Sequence[Tuple[Expr, str]],
        types: Optional[Sequence[Optional[DataType]]] = None,
    ) -> None:
        if not outputs:
            raise PlanError("projection needs at least one output column")
        self.child = child
        self.outputs = list(outputs)
        columns: List[Column] = []
        for i, (expr, name) in enumerate(self.outputs):
            declared = types[i] if types else None
            columns.append(Column(name, declared or _infer_type(expr, child.schema)))
        self.schema = Schema(columns)
        self._compiled = [expr.bind(child.schema) for expr, _ in self.outputs]

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        compiled = self._compiled
        for row in self.child.execute(stats):
            yield tuple(c(row) for c in compiled)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        cols = ", ".join(f"{expr} AS {name}" for expr, name in self.outputs)
        return f"Project({cols})"


def _infer_type(expr: Expr, schema: Schema) -> DataType:
    from repro.relational.expr import ColumnRef

    if isinstance(expr, ColumnRef):
        return schema.column(expr.name, expr.qualifier).type
    return FLOAT


class Sort(Operator):
    """Order rows by key expressions (each ascending or descending)."""

    def __init__(self, child: Operator, keys: Sequence[Tuple[Expr, bool]]) -> None:
        if not keys:
            raise PlanError("sort needs at least one key")
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema
        self._compiled = [(expr.bind(child.schema), asc) for expr, asc in self.keys]

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        rows = list(self.child.execute(stats))
        stats.rows_sorted += len(rows)
        # Stable multi-key sort: apply keys right-to-left.
        for compiled, asc in reversed(self._compiled):
            rows.sort(key=compiled, reverse=not asc)
        return iter(rows)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{expr} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort({keys})"


class Limit(Operator):
    """Emit at most ``limit`` rows after skipping ``offset`` rows."""

    def __init__(self, child: Operator, limit: int, offset: int = 0) -> None:
        if limit < 0 or offset < 0:
            raise PlanError("LIMIT/OFFSET must be non-negative")
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        produced = skipped = 0
        for row in self.child.execute(stats):
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.limit:
                return
            produced += 1
            yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


class UnionAll(Operator):
    """Bag union of positionally-compatible inputs (keeps duplicates).

    The paper's "union of simple predicate queries" variants of the
    derivation patterns rely on this operator.
    """

    def __init__(self, inputs: Sequence[Operator]) -> None:
        if not inputs:
            raise PlanError("UNION ALL needs at least one input")
        widths = {len(op.schema) for op in inputs}
        if len(widths) != 1:
            raise PlanError(f"UNION ALL inputs disagree on arity: {sorted(widths)}")
        self.inputs = list(inputs)
        self.schema = inputs[0].schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        for op in self.inputs:
            for row in op.execute(stats):
                yield row

    def children(self) -> Sequence[Operator]:
        return tuple(self.inputs)

    def label(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"


class Distinct(Operator):
    """Duplicate elimination (hash-based)."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        seen = set()
        for row in self.child.execute(stats):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)
