"""Volcano-style iterator operators (scan, filter, project, sort, union).

Every operator exposes:

* ``schema`` — the output row shape (bound at construction time);
* ``execute(stats)`` — an iterator of tuples, threading an
  :class:`~repro.relational.stats.ExecutionStats` block;
* ``explain(indent)`` — a plan-tree pretty print used by ``EXPLAIN``.

Join and aggregation operators live in :mod:`repro.relational.join` and
:mod:`repro.relational.aggregate`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.expr import Expr
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.table import Table
from repro.relational.types import DataType, FLOAT

__all__ = [
    "Alias",
    "Operator",
    "TableScan",
    "Filter",
    "Project",
    "Sort",
    "Limit",
    "UnionAll",
    "Distinct",
]

Row = Tuple[Any, ...]


class Operator:
    """Base class for executable plan nodes."""

    schema: Schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        raise NotImplementedError

    def children(self) -> Sequence["Operator"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class TableScan(Operator):
    """Full scan of a base table, optionally under an alias."""

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        self.table = table
        self.alias = alias or table.name
        self.schema = table.schema.qualify(self.alias)

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        for row in self.table.rows:
            stats.rows_scanned += 1
            yield row

    def label(self) -> str:
        if self.alias != self.table.name:
            return f"TableScan({self.table.name} AS {self.alias})"
        return f"TableScan({self.table.name})"


class Alias(Operator):
    """Re-qualify a child's output columns under a binding name.

    Used for derived tables: ``FROM (SELECT ...) d`` exposes the subquery's
    columns as ``d.<name>``.
    """

    def __init__(self, child: Operator, alias: str) -> None:
        self.child = child
        self.alias = alias
        self.schema = Schema(
            Column(c.name, c.type, alias) for c in child.schema
        )

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        return self.child.execute(stats)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Alias({self.alias})"


class Filter(Operator):
    """Selection: keep rows whose predicate evaluates to exactly TRUE."""

    def __init__(self, child: Operator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._compiled = predicate.bind(child.schema)

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        compiled = self._compiled
        for row in self.child.execute(stats):
            if compiled(row) is True:
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.predicate})"


class Project(Operator):
    """Projection: compute output columns from expressions.

    Args:
        outputs: ``(expr, name)`` pairs; output columns are unqualified.
        types: optional per-column types; defaults to FLOAT for computed
            expressions and the source type for plain column references.
    """

    def __init__(
        self,
        child: Operator,
        outputs: Sequence[Tuple[Expr, str]],
        types: Optional[Sequence[Optional[DataType]]] = None,
    ) -> None:
        if not outputs:
            raise PlanError("projection needs at least one output column")
        self.child = child
        self.outputs = list(outputs)
        columns: List[Column] = []
        for i, (expr, name) in enumerate(self.outputs):
            declared = types[i] if types else None
            columns.append(Column(name, declared or _infer_type(expr, child.schema)))
        self.schema = Schema(columns)
        self._compiled = [expr.bind(child.schema) for expr, _ in self.outputs]

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        compiled = self._compiled
        for row in self.child.execute(stats):
            yield tuple(c(row) for c in compiled)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        cols = ", ".join(f"{expr} AS {name}" for expr, name in self.outputs)
        return f"Project({cols})"


def _infer_type(expr: Expr, schema: Schema) -> DataType:
    from repro.relational.expr import ColumnRef

    if isinstance(expr, ColumnRef):
        return schema.column(expr.name, expr.qualifier).type
    return FLOAT


class Sort(Operator):
    """Order rows by key expressions (each ascending or descending)."""

    def __init__(self, child: Operator, keys: Sequence[Tuple[Expr, bool]]) -> None:
        if not keys:
            raise PlanError("sort needs at least one key")
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema
        self._compiled = [(expr.bind(child.schema), asc) for expr, asc in self.keys]

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        rows = list(self.child.execute(stats))
        stats.rows_sorted += len(rows)
        # Stable multi-key sort: apply keys right-to-left.
        for compiled, asc in reversed(self._compiled):
            rows.sort(key=compiled, reverse=not asc)
        return iter(rows)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{expr} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort({keys})"


class Limit(Operator):
    """Emit at most ``limit`` rows after skipping ``offset`` rows."""

    def __init__(self, child: Operator, limit: int, offset: int = 0) -> None:
        if limit < 0 or offset < 0:
            raise PlanError("LIMIT/OFFSET must be non-negative")
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        produced = skipped = 0
        for row in self.child.execute(stats):
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.limit:
                return
            produced += 1
            yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


class UnionAll(Operator):
    """Bag union of positionally-compatible inputs (keeps duplicates).

    The paper's "union of simple predicate queries" variants of the
    derivation patterns rely on this operator.
    """

    def __init__(self, inputs: Sequence[Operator]) -> None:
        if not inputs:
            raise PlanError("UNION ALL needs at least one input")
        widths = {len(op.schema) for op in inputs}
        if len(widths) != 1:
            raise PlanError(f"UNION ALL inputs disagree on arity: {sorted(widths)}")
        self.inputs = list(inputs)
        self.schema = inputs[0].schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        for op in self.inputs:
            for row in op.execute(stats):
                yield row

    def children(self) -> Sequence[Operator]:
        return tuple(self.inputs)

    def label(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"


class Distinct(Operator):
    """Duplicate elimination (hash-based)."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        seen = set()
        for row in self.child.execute(stats):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)
