"""Heap tables with optional primary key and secondary indexes.

Since the columnar-data-plane refactor, a table's heap is *column-major*:
one :class:`~repro.columns.column.ColumnBuilder` per schema column, so
scans, window measure extraction, and persistence all read typed arrays
instead of Python tuple lists.  The historical row-major contract is
preserved through :class:`RowsView` — ``table.rows`` still supports
``len``/iteration/slot indexing/equality — and *slots* (column positions)
still identify rows for index maintenance.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.columns import Batch, Column, ColumnBuilder
from repro.errors import CatalogError, ConstraintError, SchemaError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import Schema

__all__ = ["Table", "RowsView"]

Row = Tuple[Any, ...]
Index = Union[HashIndex, SortedIndex]

# Rows handed out per materialization step while iterating (bounds the
# transient row-tuple memory of a scan; see Table.iter_rows).
_ITER_CHUNK = 4096


class RowsView:
    """Sequence facade over a table's columnar heap.

    Presents the pre-refactor ``table.rows`` list contract — ``len``,
    iteration, ``rows[slot]``, slicing, ``==`` against any sequence —
    while rows are materialized lazily from the column builders.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "Table") -> None:
        self._table = table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Row]:
        return self._table.iter_rows()

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self._table))
            return [self._table.row(i) for i in range(start, stop, step)]
        if item < 0:
            item += len(self._table)
        return self._table.row(item)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RowsView):
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        return list(self) == list(other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RowsView({self._table.name!r}, {len(self)} rows)"


class Table:
    """A named columnar heap plus its indexes.

    Values live in one :class:`ColumnBuilder` per column; *slots* (column
    positions) identify rows for index maintenance.  Primary keys are
    backed by a unique sorted index named ``<table>_pk`` — sorted rather
    than hash so that the engine can exploit it for the paper's
    band-predicate joins.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self._columns: List[ColumnBuilder] = [
            ColumnBuilder.for_type(c.type.name) for c in schema
        ]
        self._nrows = 0
        # Bumped on structural mutation (insert/delete/truncate): open row
        # iterators check it and refuse to continue over a reshaped heap.
        # In-place slot updates do NOT bump it (UPDATE walks rows while
        # rewriting the current slot, as before the columnar refactor).
        self._structure_version = 0
        self.indexes: Dict[str, Index] = {}
        self.primary_key: Optional[Tuple[str, ...]] = None
        if primary_key:
            self.primary_key = tuple(primary_key)
            cols = [schema.resolve(c) for c in self.primary_key]
            self.indexes[f"{name}_pk"] = SortedIndex(f"{name}_pk", cols, unique=True)

    # -- row access --------------------------------------------------------------

    def __len__(self) -> int:
        return self._nrows

    @property
    def rows(self) -> RowsView:
        """The row-major facade (lazy; see :class:`RowsView`)."""
        return RowsView(self)

    def __iter__(self) -> Iterator[Row]:
        return self.iter_rows()

    def iter_rows(self) -> Iterator[Row]:
        """Yield row tuples lazily, chunk-materialized from the columns.

        Never builds the full row list; at most ``_ITER_CHUNK`` rows of
        tuples exist at a time.

        Raises:
            RuntimeError: when the heap is structurally mutated
                (insert/delete/truncate) while the iterator is open.
                In-place ``update_slot`` is allowed and becomes visible
                from the next chunk.
        """
        expected = self._structure_version
        start = 0
        while start < self._nrows:
            if self._structure_version != expected:
                raise RuntimeError(
                    f"table {self.name!r} mutated during iteration"
                )
            stop = min(start + _ITER_CHUNK, self._nrows)
            chunk = [b.pylist(start, stop) for b in self._columns]
            for row in zip(*chunk):
                yield row
                if self._structure_version != expected:
                    raise RuntimeError(
                        f"table {self.name!r} mutated during iteration"
                    )
            start = stop

    def row(self, slot: int) -> Row:
        return tuple(b.get(slot) for b in self._columns)

    # -- columnar access -----------------------------------------------------------

    def column_values(self, column: Union[int, str]) -> Column:
        """Zero-copy snapshot of one column (by schema position or name)."""
        i = column if isinstance(column, int) else self.schema.resolve(column)
        return self._columns[i].snapshot()

    def batches(self, chunk_rows: int = 65536) -> Iterator[Batch]:
        """Zero-copy columnar snapshot batches of the whole heap."""
        names = self.schema.names()
        snapshot = Batch(names, [b.snapshot() for b in self._columns])
        n = snapshot.num_rows
        if n == 0:
            return
        for start in range(0, n, chunk_rows):
            yield snapshot.slice(start, min(start + chunk_rows, n))

    def memory_bytes(self) -> int:
        """Bytes held by the columnar heap (buffers + validity masks)."""
        return sum(b.memory_bytes() for b in self._columns)

    def row_memory_bytes(self, sample: int = 1000) -> int:
        """Estimated bytes the pre-columnar tuple-list heap would hold.

        Extrapolated from ``sample`` materialized rows; used by
        ``bench_table1`` to report the row-vs-columnar memory ratio.
        """
        import sys

        n = self._nrows
        if n == 0:
            return 0
        k = min(n, sample)
        per_row = sum(
            sys.getsizeof(row) + sum(sys.getsizeof(v) for v in row)
            for row in (self.row(i) for i in range(k))
        ) / k
        # The old heap also held one list of row references.
        return int(per_row * n) + 8 * n + 56

    # -- mutation ------------------------------------------------------------------

    def _coerce(self, values: Sequence[Any]) -> Row:
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.type.validate(value)
            for column, value in zip(self.schema, values)
        )

    def insert(self, values: Sequence[Any]) -> int:
        """Append one row; returns its slot.

        Raises:
            ConstraintError: primary key / unique index violation (the row
                is not inserted).
        """
        row = self._coerce(values)
        slot = self._nrows
        added: List[Index] = []
        try:
            for index in self.indexes.values():
                index.add(row, slot)
                added.append(index)
        except ConstraintError:
            for index in added:
                index.remove(row, slot)
            raise
        for builder, value in zip(self._columns, row):
            builder.append(value)
        self._nrows += 1
        self._structure_version += 1
        return slot

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def update_slot(self, slot: int, values: Sequence[Any]) -> None:
        """Replace the row at ``slot`` (indexes maintained incrementally)."""
        new_row = self._coerce(values)
        old_row = self.row(slot)
        for index in self.indexes.values():
            index.remove(old_row, slot)
        try:
            for index in self.indexes.values():
                index.add(new_row, slot)
        except ConstraintError:
            for index in self.indexes.values():
                index.remove(new_row, slot)
                index.add(old_row, slot)
            raise
        for builder, value in zip(self._columns, new_row):
            builder.set(slot, value)

    def delete_slots(self, slots: Iterable[int]) -> int:
        """Delete rows by slot; remaining slots are renumbered and all
        indexes rebuilt (documented O(n))."""
        doomed = set(slots)
        if not doomed:
            return 0
        kept = [
            [b.get(i) for b in self._columns]
            for i in range(self._nrows)
            if i not in doomed
        ]
        for j, builder in enumerate(self._columns):
            builder.rebuild(row[j] for row in kept)
        self._nrows = len(kept)
        self._structure_version += 1
        for index in self.indexes.values():
            index.rebuild([tuple(row) for row in kept])
        return len(doomed)

    def truncate(self) -> None:
        for builder in self._columns:
            builder.clear()
        self._nrows = 0
        self._structure_version += 1
        for index in self.indexes.values():
            index.rebuild([])

    def clone(self) -> "Table":
        """An independent copy of the heap and its indexes (same name).

        Copy-on-write support for the concurrent serving tier: before a
        serialized writer mutates a table in place, it installs a clone in
        the live catalog so every snapshot pinned to an older epoch keeps
        reading the original, never-again-mutated object.  The schema
        object is shared (immutable); column buffers and indexes are
        copied.
        """
        out = Table.__new__(Table)
        out.name = self.name
        out.schema = self.schema
        out._columns = [b.copy() for b in self._columns]
        out._nrows = self._nrows
        out._structure_version = 0
        out.primary_key = self.primary_key
        out.indexes = {}
        for name, index in self.indexes.items():
            if index.kind == "sorted":
                fresh: Index = SortedIndex(name, list(index.column_indexes),
                                           unique=index.unique)
            else:
                fresh = HashIndex(name, list(index.column_indexes),
                                  unique=index.unique)
            fresh.rebuild(self.rows)
            out.indexes[name] = fresh
        return out

    # -- index management -----------------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: Sequence[str],
        *,
        kind: str = "sorted",
        unique: bool = False,
    ) -> Index:
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")
        cols = [self.schema.resolve(c) for c in columns]
        index: Index
        if kind == "sorted":
            index = SortedIndex(name, cols, unique=unique)
        elif kind == "hash":
            index = HashIndex(name, cols, unique=unique)
        else:
            raise CatalogError(f"unknown index kind {kind!r}")
        index.rebuild(self.rows)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]

    def find_index(self, columns: Sequence[str], *, sorted_only: bool = False) -> Optional[Index]:
        """An index whose key is exactly ``columns`` (first match wins)."""
        wanted = tuple(self.schema.resolve(c) for c in columns)
        for index in self.indexes.values():
            if index.column_indexes == wanted:
                if sorted_only and index.kind != "sorted":
                    continue
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._nrows}, indexes={list(self.indexes)})"
