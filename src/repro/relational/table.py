"""Heap tables with optional primary key and secondary indexes."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import CatalogError, ConstraintError, SchemaError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import Schema

__all__ = ["Table"]

Row = Tuple[Any, ...]
Index = Union[HashIndex, SortedIndex]


class Table:
    """A named heap of tuples plus its indexes.

    Rows live in a Python list; *slots* (list positions) identify rows for
    index maintenance.  Primary keys are backed by a unique sorted index
    named ``<table>_pk`` — sorted rather than hash so that the engine can
    exploit it for the paper's band-predicate joins.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.rows: List[Row] = []
        self.indexes: Dict[str, Index] = {}
        self.primary_key: Optional[Tuple[str, ...]] = None
        if primary_key:
            self.primary_key = tuple(primary_key)
            cols = [schema.resolve(c) for c in self.primary_key]
            self.indexes[f"{name}_pk"] = SortedIndex(f"{name}_pk", cols, unique=True)

    # -- row access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def row(self, slot: int) -> Row:
        return self.rows[slot]

    # -- mutation ------------------------------------------------------------------

    def _coerce(self, values: Sequence[Any]) -> Row:
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.type.validate(value)
            for column, value in zip(self.schema, values)
        )

    def insert(self, values: Sequence[Any]) -> int:
        """Append one row; returns its slot.

        Raises:
            ConstraintError: primary key / unique index violation (the row
                is not inserted).
        """
        row = self._coerce(values)
        slot = len(self.rows)
        added: List[Index] = []
        try:
            for index in self.indexes.values():
                index.add(row, slot)
                added.append(index)
        except ConstraintError:
            for index in added:
                index.remove(row, slot)
            raise
        self.rows.append(row)
        return slot

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def update_slot(self, slot: int, values: Sequence[Any]) -> None:
        """Replace the row at ``slot`` (indexes maintained incrementally)."""
        new_row = self._coerce(values)
        old_row = self.rows[slot]
        for index in self.indexes.values():
            index.remove(old_row, slot)
        try:
            for index in self.indexes.values():
                index.add(new_row, slot)
        except ConstraintError:
            for index in self.indexes.values():
                index.remove(new_row, slot)
                index.add(old_row, slot)
            raise
        self.rows[slot] = new_row

    def delete_slots(self, slots: Iterable[int]) -> int:
        """Delete rows by slot; remaining slots are renumbered and all
        indexes rebuilt (documented O(n))."""
        doomed = set(slots)
        if not doomed:
            return 0
        self.rows = [row for i, row in enumerate(self.rows) if i not in doomed]
        for index in self.indexes.values():
            index.rebuild(self.rows)
        return len(doomed)

    def truncate(self) -> None:
        self.rows.clear()
        for index in self.indexes.values():
            index.rebuild(self.rows)

    # -- index management -----------------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: Sequence[str],
        *,
        kind: str = "sorted",
        unique: bool = False,
    ) -> Index:
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")
        cols = [self.schema.resolve(c) for c in columns]
        index: Index
        if kind == "sorted":
            index = SortedIndex(name, cols, unique=unique)
        elif kind == "hash":
            index = HashIndex(name, cols, unique=unique)
        else:
            raise CatalogError(f"unknown index kind {kind!r}")
        index.rebuild(self.rows)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]

    def find_index(self, columns: Sequence[str], *, sorted_only: bool = False) -> Optional[Index]:
        """An index whose key is exactly ``columns`` (first match wins)."""
        wanted = tuple(self.schema.resolve(c) for c in columns)
        for index in self.indexes.values():
            if index.column_indexes == wanted:
                if sorted_only and index.kind != "sorted":
                    continue
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={len(self.rows)}, indexes={list(self.indexes)})"
