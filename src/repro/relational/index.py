"""Secondary indexes: hash (equality) and sorted (range) structures.

Table 1 of the paper hinges on index availability: the self-join simulation
of a reporting function is only viable when the join can probe an index on
the sequence position instead of scanning the whole table per outer row
("query execution time is then roughly cut down by 95%").  Both index kinds
map key tuples to *row slots* inside their table's row list.

Indexes are maintained incrementally on insert/point-update and rebuilt on
positional deletes (slot renumbering), which matches this engine's
append-mostly warehouse workloads.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConstraintError

__all__ = ["HashIndex", "SortedIndex"]

Key = Tuple[Any, ...]


class HashIndex:
    """Equality index: key tuple -> row slots.

    Args:
        name: index name (catalog key).
        column_indexes: positions of the key columns within the table schema.
        unique: enforce key uniqueness (primary keys).
    """

    kind = "hash"

    def __init__(self, name: str, column_indexes: Sequence[int], unique: bool = False) -> None:
        self.name = name
        self.column_indexes = tuple(column_indexes)
        self.unique = unique
        self._map: Dict[Key, List[int]] = {}

    def key_of(self, row: Tuple[Any, ...]) -> Key:
        return tuple(row[i] for i in self.column_indexes)

    def add(self, row: Tuple[Any, ...], slot: int) -> None:
        key = self.key_of(row)
        slots = self._map.setdefault(key, [])
        if self.unique and slots:
            raise ConstraintError(
                f"unique index {self.name!r} rejects duplicate key {key!r}"
            )
        slots.append(slot)

    def remove(self, row: Tuple[Any, ...], slot: int) -> None:
        key = self.key_of(row)
        slots = self._map.get(key, [])
        if slot in slots:
            slots.remove(slot)
            if not slots:
                del self._map[key]

    def lookup(self, key: Key) -> List[int]:
        """Row slots whose key equals ``key`` (empty list when absent)."""
        return self._map.get(tuple(key), [])

    def rebuild(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        self._map.clear()
        for slot, row in enumerate(rows):
            self.add(row, slot)

    def __len__(self) -> int:
        return sum(len(slots) for slots in self._map.values())


class SortedIndex:
    """Ordered index supporting point and range probes (bisect-based).

    Range probes serve band predicates such as the self-join pattern's
    ``s1.pos IN (s2.pos-1, s2.pos, s2.pos+1)`` generalised to
    ``BETWEEN``-style lookups.
    """

    kind = "sorted"

    def __init__(self, name: str, column_indexes: Sequence[int], unique: bool = False) -> None:
        self.name = name
        self.column_indexes = tuple(column_indexes)
        self.unique = unique
        self._keys: List[Key] = []
        self._slots: List[int] = []

    def key_of(self, row: Tuple[Any, ...]) -> Key:
        return tuple(row[i] for i in self.column_indexes)

    def add(self, row: Tuple[Any, ...], slot: int) -> None:
        key = self.key_of(row)
        i = bisect.bisect_left(self._keys, key)
        if self.unique and i < len(self._keys) and self._keys[i] == key:
            raise ConstraintError(
                f"unique index {self.name!r} rejects duplicate key {key!r}"
            )
        self._keys.insert(i, key)
        self._slots.insert(i, slot)

    def remove(self, row: Tuple[Any, ...], slot: int) -> None:
        key = self.key_of(row)
        i = bisect.bisect_left(self._keys, key)
        while i < len(self._keys) and self._keys[i] == key:
            if self._slots[i] == slot:
                del self._keys[i]
                del self._slots[i]
                return
            i += 1

    def lookup(self, key: Key) -> List[int]:
        key = tuple(key)
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._slots[lo:hi]

    def range(self, low: Optional[Key], high: Optional[Key]) -> Iterator[int]:
        """Row slots with ``low <= key <= high`` (None = unbounded)."""
        lo = 0 if low is None else bisect.bisect_left(self._keys, tuple(low))
        hi = len(self._keys) if high is None else bisect.bisect_right(self._keys, tuple(high))
        return iter(self._slots[lo:hi])

    def rebuild(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        pairs = sorted(
            ((self.key_of(row), slot) for slot, row in enumerate(rows)),
        )
        if self.unique:
            for (ka, _), (kb, _) in zip(pairs, pairs[1:]):
                if ka == kb:
                    raise ConstraintError(
                        f"unique index {self.name!r} rejects duplicate key {ka!r}"
                    )
        self._keys = [k for k, _ in pairs]
        self._slots = [s for _, s in pairs]

    def __len__(self) -> int:
        return len(self._keys)
