"""Grouped aggregation (hash-based) for the relational engine.

Supports the SQL aggregates SUM/COUNT/AVG/MIN/MAX over arbitrary argument
expressions — in particular the ``SUM(CASE WHEN ... THEN val ELSE -val
END)`` shape at the heart of the paper's operator patterns (figs. 4, 10,
13) — plus ``COUNT(*)`` and grouping by arbitrary expressions.

SQL NULL semantics: NULL arguments are skipped; SUM/MIN/MAX/AVG over an
empty group yield NULL, COUNT yields 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.columns import Batch, kinds_for_schema
from repro.errors import PlanError
from repro.relational.expr import ColumnRef, Expr
from repro.relational.operators import BATCH_ROWS, Operator
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.types import FLOAT, INTEGER, DataType

__all__ = ["AggSpec", "HashAggregate"]

Row = Tuple[Any, ...]

_AGG_NAMES = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output column.

    Attributes:
        func: SUM/COUNT/AVG/MIN/MAX.
        arg: argument expression, or ``None`` for ``COUNT(*)``.
        name: output column name.
    """

    func: str
    arg: Optional[Expr]
    name: str

    def __post_init__(self) -> None:
        func = self.func.upper()
        if func not in _AGG_NAMES:
            raise PlanError(f"unknown aggregate {self.func!r}")
        if func != "COUNT" and self.arg is None:
            raise PlanError(f"{func} requires an argument expression")
        object.__setattr__(self, "func", func)

    def output_type(self) -> DataType:
        return INTEGER if self.func == "COUNT" else FLOAT


class _Accumulator:
    """Streaming state for one (group, aggregate) cell."""

    __slots__ = ("func", "count", "total", "extreme")

    def __init__(self, func: str) -> None:
        self.func = func
        self.count = 0
        self.total = 0.0
        self.extreme: Optional[Any] = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.func == "MAX":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def add_column(self, col) -> None:
        """Bulk update from a numeric :class:`~repro.columns.Column`.

        SUM/AVG use pairwise NumPy summation, so the float result may
        differ from sequential accumulation in the last ulp — the batch
        plane's documented deviation from ``execute``.
        """
        values = col.data if col.validity is None else col.data[col.validity]
        if not len(values):
            return
        self.count += len(values)
        if self.func in ("SUM", "AVG"):
            self.total += float(np.sum(values))
        elif self.func == "MIN":
            lo = values.min().item()
            self.extreme = lo if self.extreme is None else min(self.extreme, lo)
        elif self.func == "MAX":
            hi = values.max().item()
            self.extreme = hi if self.extreme is None else max(self.extreme, hi)

    def result(self) -> Any:
        if self.func == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return self.total / self.count
        return self.extreme

    # -- spill support --------------------------------------------------------

    def state(self) -> Tuple[int, float, Any]:
        """Picklable mergeable state (see :class:`_AggSpill`)."""
        return (self.count, self.total, self.extreme)

    def merge_state(self, state: Tuple[int, float, Any]) -> None:
        count, total, extreme = state
        self.count += count
        self.total += total
        if extreme is not None:
            if self.extreme is None:
                self.extreme = extreme
            elif self.func == "MIN":
                self.extreme = min(self.extreme, extreme)
            elif self.func == "MAX":
                self.extreme = max(self.extreme, extreme)


class _AggSpill:
    """Spills hash-aggregate partition state under a memory budget.

    When the ambient :func:`repro.storage.spill.active_budget` is set and
    the estimated group-state footprint crosses half of it, the current
    partials are pickled to the spill store and the hash table is
    cleared; emission merges every spilled partial (chronological order,
    so the global first-seen group order is preserved) with the live
    tail.  SUM/AVG merge partial totals, so a spilled run may differ from
    the unspilled sequential sum in the last ulp — the same documented
    deviation as the batch plane's pairwise summation.
    """

    # Rough per-group resident bytes: key tuple + dict slot + accumulators.
    def __init__(self, n_aggs: int, n_keys: int) -> None:
        self.store = None
        self.handles: List[Any] = []
        self.per_group = 120 + 88 * n_aggs + 32 * max(n_keys, 1)

    def maybe_spill(self, groups: Dict, order: List, budget: Optional[int]) -> None:
        if budget is None or not groups:
            return
        if len(groups) * self.per_group <= max(budget // 2, 1):
            return
        from repro.storage.spill import SpillStore

        if self.store is None:
            self.store = SpillStore()
        self.handles.append(
            self.store.write_obj(
                [(key, [acc.state() for acc in groups[key]]) for key in order]
            )
        )
        groups.clear()
        order.clear()

    def merge(self, groups: Dict, order: List, make_accs) -> Tuple[Dict, List]:
        """Fold spilled partials + the live tail into one (groups, order)."""
        if not self.handles:
            return groups, order
        merged: Dict = {}
        morder: List = []
        for handle in self.handles:
            for key, states in self.store.read_obj(handle):
                accs = merged.get(key)
                if accs is None:
                    accs = make_accs()
                    merged[key] = accs
                    morder.append(key)
                for acc, st in zip(accs, states):
                    acc.merge_state(st)
        for key in order:
            accs = merged.get(key)
            if accs is None:
                merged[key] = groups[key]
                morder.append(key)
            else:
                for acc, live in zip(accs, groups[key]):
                    acc.merge_state(live.state())
        self.store.close()
        return merged, morder


class HashAggregate(Operator):
    """``GROUP BY`` + aggregates in one hash pass.

    Args:
        group_by: ``(expr, name)`` pairs forming the group key (may be
            empty: a single global group, emitted even for empty input).
        aggregates: the :class:`AggSpec` list.
    """

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[Tuple[Expr, str]],
        aggregates: Sequence[AggSpec],
    ) -> None:
        if not aggregates and not group_by:
            raise PlanError("aggregation needs group keys or aggregates")
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        columns: List[Column] = []
        for expr, name in self.group_by:
            columns.append(Column(name, _group_type(expr, child.schema)))
        for spec in self.aggregates:
            columns.append(Column(spec.name, spec.output_type()))
        self.schema = Schema(columns)
        self._keys = [expr.bind(child.schema) for expr, _ in self.group_by]
        self._args = [
            spec.arg.bind(child.schema) if spec.arg is not None else None
            for spec in self.aggregates
        ]

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        from repro.storage.spill import active_budget

        budget = active_budget()
        spill = _AggSpill(len(self.aggregates), len(self.group_by))
        groups: Dict[Tuple[Any, ...], List[_Accumulator]] = {}
        order: List[Tuple[Any, ...]] = []
        consumed = 0
        for row in self.child.execute(stats):
            consumed += 1
            key = tuple(k(row) for k in self._keys)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(spec.func) for spec in self.aggregates]
                groups[key] = accs
                order.append(key)
            for acc, arg in zip(accs, self._args):
                acc.add(arg(row) if arg is not None else 1)
            if budget is not None and consumed % 4096 == 0:
                spill.maybe_spill(groups, order, budget)
        stats.rows_aggregated += consumed
        groups, order = spill.merge(
            groups, order,
            lambda: [_Accumulator(spec.func) for spec in self.aggregates],
        )
        if not groups and not self.group_by:
            # Global aggregate over empty input still emits one row.
            groups[()] = [_Accumulator(spec.func) for spec in self.aggregates]
            order.append(())
        for key in order:
            stats.groups_emitted += 1
            yield key + tuple(acc.result() for acc in groups[key])

    def execute_batches(
        self, stats: ExecutionStats, chunk_rows: int = BATCH_ROWS
    ) -> Iterator[Batch]:
        """Batch path: one output batch of group rows.

        A *global* aggregate (no GROUP BY) whose arguments are plain
        column references is evaluated column-at-a-time via
        :meth:`_Accumulator.add_column`; anything else streams rows out
        of each batch into the same accumulators ``execute`` uses.
        """
        vector_args = not self.group_by and all(
            spec.arg is None or isinstance(spec.arg, ColumnRef)
            for spec in self.aggregates
        )
        arg_indexes = [
            None
            if spec.arg is None
            else self.child.schema.resolve(spec.arg.name, spec.arg.qualifier)
            for spec in self.aggregates
        ] if vector_args else []

        from repro.storage.spill import active_budget

        budget = active_budget()
        spill = _AggSpill(len(self.aggregates), len(self.group_by))
        groups: Dict[Tuple[Any, ...], List[_Accumulator]] = {}
        order: List[Tuple[Any, ...]] = []
        for batch in self.child.execute_batches(stats, chunk_rows):
            stats.rows_aggregated += batch.num_rows
            if vector_args:
                accs = groups.get(())
                if accs is None:
                    accs = [_Accumulator(spec.func) for spec in self.aggregates]
                    groups[()] = accs
                    order.append(())
                for acc, idx in zip(accs, arg_indexes):
                    if idx is None:
                        acc.count += batch.num_rows  # COUNT(*)
                        continue
                    col = batch.columns[idx]
                    if col.kind in ("int64", "float64"):
                        acc.add_column(col)
                    else:
                        for v in col.to_pylist():
                            acc.add(v)
                continue
            for row in batch.iter_rows():
                key = tuple(k(row) for k in self._keys)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(spec.func) for spec in self.aggregates]
                    groups[key] = accs
                    order.append(key)
                for acc, arg in zip(accs, self._args):
                    acc.add(arg(row) if arg is not None else 1)
            if budget is not None:
                spill.maybe_spill(groups, order, budget)
        groups, order = spill.merge(
            groups, order,
            lambda: [_Accumulator(spec.func) for spec in self.aggregates],
        )
        if not groups and not self.group_by:
            groups[()] = [_Accumulator(spec.func) for spec in self.aggregates]
            order.append(())
        rows = []
        for key in order:
            stats.groups_emitted += 1
            rows.append(key + tuple(acc.result() for acc in groups[key]))
        yield Batch.from_rows(
            self.schema.names(), rows, kinds_for_schema(self.schema)
        )

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(name for _, name in self.group_by) or "<global>"
        aggs = ", ".join(
            f"{s.func}({s.arg if s.arg is not None else '*'}) AS {s.name}"
            for s in self.aggregates
        )
        return f"HashAggregate(by [{keys}]: {aggs})"


def _group_type(expr: Expr, schema: Schema) -> DataType:
    from repro.relational.expr import ColumnRef

    if isinstance(expr, ColumnRef):
        return schema.column(expr.name, expr.qualifier).type
    return FLOAT
