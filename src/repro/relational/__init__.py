"""A from-scratch, in-memory relational engine (the paper's DB2 substitute).

Provides tables with hash/sorted indexes, a bound-expression evaluator with
SQL three-valued logic, volcano-style operators (scans, filters,
projections, sorts, unions, three join algorithms, hash aggregation), and a
:class:`~repro.relational.engine.Database` facade with execution statistics.

The engine intentionally exposes the *cost structure* the paper's
evaluation depends on: nested-loop joins examine O(n²) pairs, index
nested-loop joins O(n·matches), hash joins O(n + matches) — so Table 1 and
Table 2 shapes reproduce on top of it.
"""

from repro.relational.aggregate import AggSpec, HashAggregate
from repro.relational.catalog import Catalog
from repro.relational.engine import Database, Result
from repro.relational.expr import (
    And,
    Arithmetic,
    CaseExpr,
    Coalesce,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    col,
    lit,
)
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.join import HashJoin, IndexNestedLoopJoin, NestedLoopJoin, SortMergeJoin
from repro.relational.operators import (
    Alias,
    Distinct,
    Filter,
    Limit,
    Operator,
    Project,
    Sort,
    TableScan,
    UnionAll,
)
from repro.relational.schema import Column, Schema
from repro.relational.stats import ExecutionStats
from repro.relational.table import Table
from repro.relational.types import BOOLEAN, DATE, FLOAT, INTEGER, TEXT, DataType, type_by_name

__all__ = [
    "AggSpec",
    "Alias",
    "And",
    "Arithmetic",
    "BOOLEAN",
    "CaseExpr",
    "Catalog",
    "Coalesce",
    "Column",
    "ColumnRef",
    "Comparison",
    "DATE",
    "DataType",
    "Database",
    "Distinct",
    "ExecutionStats",
    "Expr",
    "FLOAT",
    "Filter",
    "FuncCall",
    "HashAggregate",
    "HashIndex",
    "HashJoin",
    "InList",
    "IndexNestedLoopJoin",
    "INTEGER",
    "IsNull",
    "Like",
    "Limit",
    "Literal",
    "NestedLoopJoin",
    "Not",
    "Operator",
    "Or",
    "Project",
    "Result",
    "Schema",
    "Sort",
    "SortMergeJoin",
    "SortedIndex",
    "Table",
    "TableScan",
    "TEXT",
    "UnionAll",
    "col",
    "lit",
    "type_by_name",
]
