"""Execution statistics for the relational engine.

Every plan execution threads one :class:`ExecutionStats` through its
operators.  The counters make cost behaviour *observable* independent of
wall clocks: the benchmark harness uses them to show, e.g., that the
self-join pattern without an index examines O(n²) row pairs while the
indexed variant touches O(n·w) (Table 1), and that the derivation patterns'
join work grows superlinearly (Table 2).

Since the observability plane landed, ``ExecutionStats`` is a **view over a
private** :class:`~repro.obs.metrics.MetricsRegistry`: each public field is
a property backed by a registry counter that already carries its final
global metric name (``repro_engine_rows_scanned_total`` …), so "publish
this query's counters" is a plain registry merge and the two accountings
cannot drift apart.  The public API is unchanged — kwargs construction,
attribute ``+=`` for owner-exclusive serial operators, :meth:`bump` /
:meth:`merge` for parallel ones, and pickling without locks.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.obs.metrics import Counter, MetricsRegistry

__all__ = ["ExecutionStats"]

_COUNTERS = (
    "rows_scanned",
    "pairs_examined",
    "index_lookups",
    "rows_joined",
    "rows_aggregated",
    "groups_emitted",
    "rows_sorted",
    "tasks_retried",
    "worker_failures",
    "serial_fallbacks",
)

# Final global metric name per counter.  Scan/join/aggregate/sort counters
# belong to the engine layer; the robustness counters to the parallel layer
# (DESIGN.md §5f naming scheme: repro_<layer>_<name>).
_METRIC_OF = {
    name: (
        f"repro_parallel_{name}_total"
        if name in ("tasks_retried", "worker_failures", "serial_fallbacks")
        else f"repro_engine_{name}_total"
    )
    for name in _COUNTERS
}

_OPERATOR_ROWS_METRIC = "repro_engine_operator_rows_total"


def _make_property(name: str) -> property:
    def getter(self: "ExecutionStats") -> int:
        return self._counters[name].value

    def setter(self: "ExecutionStats", value: int) -> None:
        self._counters[name].value = value

    getter.__name__ = setter.__name__ = name
    return property(getter, setter)


class ExecutionStats:
    """Mutable counter block shared by all operators of one execution.

    Attributes (all registry-backed properties):
        rows_scanned: tuples produced by base-table scans.
        pairs_examined: row pairs for which a join predicate was evaluated.
        index_lookups: point/range probes against an index.
        rows_joined: rows emitted by join operators.
        rows_aggregated: input rows consumed by aggregation.
        groups_emitted: groups produced by aggregation.
        rows_sorted: rows passing through sort operators.
        tasks_retried: pool tasks re-submitted after a failure/timeout.
        worker_failures: task failures observed (exceptions, timeouts,
            broken pools) before any retry succeeded.
        serial_fallbacks: times a pool degraded to in-process serial
            execution (broken pool or retry exhaustion).
        operator_rows: per-operator-label emitted row counts.
    """

    __slots__ = ("registry", "_counters", "_lock")

    def __init__(self, **counters: int) -> None:
        self.registry = MetricsRegistry()
        self._counters: Dict[str, Counter] = {
            name: self.registry.counter(_METRIC_OF[name]) for name in _COUNTERS
        }
        self._lock = threading.Lock()
        for name, value in counters.items():
            if name not in _COUNTERS:
                raise TypeError(f"unknown execution counter {name!r}")
            self._counters[name].value = value

    @property
    def operator_rows(self) -> Dict[str, int]:
        """Per-operator-label row counts (a snapshot dict view)."""
        out: Dict[str, int] = {}
        for inst in self.registry.instruments():
            if inst.name == _OPERATOR_ROWS_METRIC and inst.labels:
                out[dict(inst.labels)["operator"]] = inst.value
        return out

    def bump(self, **counters: int) -> None:
        """Atomically add to named counters (parallel operators' entry point).

        Raises:
            AttributeError: for names outside the known counter set.
        """
        for name in counters:
            if name not in _COUNTERS:
                raise AttributeError(f"unknown execution counter {name!r}")
        with self._lock:
            for name, delta in counters.items():
                self._counters[name].value += delta

    def record_operator(self, label: str, rows: int) -> None:
        """Add emitted rows under an operator label (lock-protected)."""
        counter = self.registry.counter(
            _OPERATOR_ROWS_METRIC, {"operator": label}
        )
        with self._lock:
            counter.value += rows

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats block into this one (sub-plan or per-worker
        accumulation); atomic with respect to concurrent merges/bumps on
        ``self``."""
        with self._lock:
            self.registry.merge(other.registry)

    def summary(self) -> str:
        """Render the counters as a one-line report.

        The robustness counters (retries, worker failures, serial
        fallbacks) appear only when nonzero — a clean run reads exactly as
        it always did.
        """
        text = (
            f"scanned={self.rows_scanned} pairs={self.pairs_examined} "
            f"index_lookups={self.index_lookups} joined={self.rows_joined} "
            f"aggregated={self.rows_aggregated} groups={self.groups_emitted} "
            f"sorted={self.rows_sorted}"
        )
        if self.tasks_retried or self.worker_failures or self.serial_fallbacks:
            text += (
                f" retried={self.tasks_retried} "
                f"worker_failures={self.worker_failures} "
                f"serial_fallbacks={self.serial_fallbacks}"
            )
        return text

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={self._counters[name].value}"
            for name in _COUNTERS
            if self._counters[name].value
        )
        return f"ExecutionStats({parts})"

    # Locks do not pickle; process workers therefore never ship stats blocks,
    # but persistence of result objects must still work.
    def __getstate__(self) -> Dict[str, Any]:
        return {"registry": self.registry}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        object.__setattr__(self, "registry", state["registry"])
        object.__setattr__(
            self,
            "_counters",
            {name: self.registry.counter(_METRIC_OF[name]) for name in _COUNTERS},
        )
        object.__setattr__(self, "_lock", threading.Lock())


for _name in _COUNTERS:
    setattr(ExecutionStats, _name, _make_property(_name))
del _name
