"""Execution statistics for the relational engine.

Every plan execution threads one :class:`ExecutionStats` through its
operators.  The counters make cost behaviour *observable* independent of
wall clocks: the benchmark harness uses them to show, e.g., that the
self-join pattern without an index examines O(n²) row pairs while the
indexed variant touches O(n·w) (Table 1), and that the derivation patterns'
join work grows superlinearly (Table 2).

Counters are **thread-safe**: parallel operators either increment through
:meth:`ExecutionStats.bump` (one lock-protected addition per batch) or
accumulate into a private per-worker block and fold it in at the end via
:meth:`ExecutionStats.merge`, which takes the same lock.  Plain attribute
``+=`` remains fine for the serial operators that own their stats block
exclusively.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["ExecutionStats"]

_COUNTERS = (
    "rows_scanned",
    "pairs_examined",
    "index_lookups",
    "rows_joined",
    "rows_aggregated",
    "groups_emitted",
    "rows_sorted",
    "tasks_retried",
    "worker_failures",
    "serial_fallbacks",
)


@dataclass
class ExecutionStats:
    """Mutable counter block shared by all operators of one execution.

    Attributes:
        rows_scanned: tuples produced by base-table scans.
        pairs_examined: row pairs for which a join predicate was evaluated.
        index_lookups: point/range probes against an index.
        rows_joined: rows emitted by join operators.
        rows_aggregated: input rows consumed by aggregation.
        groups_emitted: groups produced by aggregation.
        rows_sorted: rows passing through sort operators.
        tasks_retried: pool tasks re-submitted after a failure/timeout.
        worker_failures: task failures observed (exceptions, timeouts,
            broken pools) before any retry succeeded.
        serial_fallbacks: times a pool degraded to in-process serial
            execution (broken pool or retry exhaustion).
        operator_rows: per-operator-label emitted row counts.
    """

    rows_scanned: int = 0
    pairs_examined: int = 0
    index_lookups: int = 0
    rows_joined: int = 0
    rows_aggregated: int = 0
    groups_emitted: int = 0
    rows_sorted: int = 0
    tasks_retried: int = 0
    worker_failures: int = 0
    serial_fallbacks: int = 0
    operator_rows: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, **counters: int) -> None:
        """Atomically add to named counters (parallel operators' entry point).

        Raises:
            AttributeError: for names outside the known counter set.
        """
        for name in counters:
            if name not in _COUNTERS:
                raise AttributeError(f"unknown execution counter {name!r}")
        with self._lock:
            for name, delta in counters.items():
                setattr(self, name, getattr(self, name) + delta)

    def record_operator(self, label: str, rows: int) -> None:
        """Add emitted rows under an operator label (lock-protected)."""
        with self._lock:
            self.operator_rows[label] = self.operator_rows.get(label, 0) + rows

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats block into this one (sub-plan or per-worker
        accumulation); atomic with respect to concurrent merges/bumps on
        ``self``."""
        with self._lock:
            for name in _COUNTERS:
                setattr(self, name, getattr(self, name) + getattr(other, name))
            for label, rows in other.operator_rows.items():
                self.operator_rows[label] = (
                    self.operator_rows.get(label, 0) + rows
                )

    def summary(self) -> str:
        """Render the counters as a one-line report.

        The robustness counters (retries, worker failures, serial
        fallbacks) appear only when nonzero — a clean run reads exactly as
        it always did.
        """
        text = (
            f"scanned={self.rows_scanned} pairs={self.pairs_examined} "
            f"index_lookups={self.index_lookups} joined={self.rows_joined} "
            f"aggregated={self.rows_aggregated} groups={self.groups_emitted} "
            f"sorted={self.rows_sorted}"
        )
        if self.tasks_retried or self.worker_failures or self.serial_fallbacks:
            text += (
                f" retried={self.tasks_retried} "
                f"worker_failures={self.worker_failures} "
                f"serial_fallbacks={self.serial_fallbacks}"
            )
        return text

    # Locks do not pickle; process workers therefore never ship stats blocks,
    # but persistence of result objects must still work.
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__["_lock"] = threading.Lock()
