"""Execution statistics for the relational engine.

Every plan execution threads one :class:`ExecutionStats` through its
operators.  The counters make cost behaviour *observable* independent of
wall clocks: the benchmark harness uses them to show, e.g., that the
self-join pattern without an index examines O(n²) row pairs while the
indexed variant touches O(n·w) (Table 1), and that the derivation patterns'
join work grows superlinearly (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ExecutionStats"]


@dataclass
class ExecutionStats:
    """Mutable counter block shared by all operators of one execution.

    Attributes:
        rows_scanned: tuples produced by base-table scans.
        pairs_examined: row pairs for which a join predicate was evaluated.
        index_lookups: point/range probes against an index.
        rows_joined: rows emitted by join operators.
        rows_aggregated: input rows consumed by aggregation.
        groups_emitted: groups produced by aggregation.
        rows_sorted: rows passing through sort operators.
        operator_rows: per-operator-label emitted row counts.
    """

    rows_scanned: int = 0
    pairs_examined: int = 0
    index_lookups: int = 0
    rows_joined: int = 0
    rows_aggregated: int = 0
    groups_emitted: int = 0
    rows_sorted: int = 0
    operator_rows: Dict[str, int] = field(default_factory=dict)

    def record_operator(self, label: str, rows: int) -> None:
        self.operator_rows[label] = self.operator_rows.get(label, 0) + rows

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats block into this one (sub-plan execution)."""
        self.rows_scanned += other.rows_scanned
        self.pairs_examined += other.pairs_examined
        self.index_lookups += other.index_lookups
        self.rows_joined += other.rows_joined
        self.rows_aggregated += other.rows_aggregated
        self.groups_emitted += other.groups_emitted
        self.rows_sorted += other.rows_sorted
        for label, rows in other.operator_rows.items():
            self.record_operator(label, rows)

    def summary(self) -> str:
        return (
            f"scanned={self.rows_scanned} pairs={self.pairs_examined} "
            f"index_lookups={self.index_lookups} joined={self.rows_joined} "
            f"aggregated={self.rows_aggregated} groups={self.groups_emitted} "
            f"sorted={self.rows_sorted}"
        )
