"""Join operators: nested loop, index nested loop, hash join.

The three physical joins span the cost spectrum the paper's evaluation
exercises:

* :class:`NestedLoopJoin` — arbitrary predicates, O(|L|·|R|) pairs.  This is
  the only choice for the *disjunctive* derivation patterns (figs. 10, 13)
  when the predicate mixes several MOD-residue conditions.
* :class:`IndexNestedLoopJoin` — per outer row, probe an index on the inner
  table (equality keys or a sorted-index band ``lo..hi``).  The paper's
  Table 1 "with primary key index" columns correspond to this operator
  serving the self-join pattern's ``s2.pos BETWEEN s1.pos-l AND s1.pos+h``
  band.
* :class:`HashJoin` — equi-joins on computed keys (e.g. ``MOD(pos, P)``),
  used by the *union of simple predicate queries* variants where each
  branch has a single residue-equality conjunct.

All joins support INNER and LEFT OUTER semantics; LEFT outer rows pad the
right side with NULLs (the patterns' ``COALESCE(val, 0)`` then repairs the
aggregate).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.columns import Batch, Column
from repro.errors import PlanError
from repro.relational.expr import Expr
from repro.relational.operators import BATCH_ROWS, Operator
from repro.relational.stats import ExecutionStats
from repro.relational.table import Table

__all__ = ["NestedLoopJoin", "IndexNestedLoopJoin", "HashJoin", "SortMergeJoin"]

Row = Tuple[Any, ...]

_JOIN_TYPES = ("inner", "left")


def _take_padded(col: Column, slots: np.ndarray, pad: np.ndarray) -> Column:
    """Gather ``col[slots]`` with NULLs wherever ``pad`` is set.

    Pad positions carry slot ``-1``; the gather clips them to a harmless
    index and the validity bit is cleared instead (for empty inner heaps
    the whole result is the NULL pad).
    """
    if len(col) == 0:
        data = np.empty(len(slots), dtype=col.data.dtype)
        if col.data.dtype == object:
            data[:] = None
        else:
            data[:] = 0
        return Column(data, np.zeros(len(slots), dtype=np.bool_))
    taken = col.take(np.where(pad, 0, slots))
    if not pad.any():
        return taken
    validity = (
        np.ones(len(slots), dtype=np.bool_)
        if taken.validity is None
        else taken.validity.copy()
    )
    validity[pad] = False
    if col.data.dtype == object:
        data = taken.data.copy()
        data[pad] = None
        return Column(data, validity)
    return Column(taken.data, validity)


def _check_join_type(join_type: str) -> None:
    if join_type not in _JOIN_TYPES:
        raise PlanError(f"unsupported join type {join_type!r}; use {_JOIN_TYPES}")


class NestedLoopJoin(Operator):
    """Tuple-at-a-time nested loop with an arbitrary predicate.

    The inner input is materialized once (block nested loop), then every
    outer/inner pair is tested — the engine's honest worst case.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Optional[Expr] = None,
        join_type: str = "inner",
    ) -> None:
        _check_join_type(join_type)
        self.left = left
        self.right = right
        self.predicate = predicate
        self.join_type = join_type
        self.schema = left.schema.concat(right.schema)
        self._compiled = predicate.bind(self.schema) if predicate is not None else None

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        inner: List[Row] = list(self.right.execute(stats))
        compiled = self._compiled
        null_row = (None,) * len(self.right.schema)
        # O(|L|·|R|) inner loop: accumulate counters locally, flush once
        # (the stats fields are registry-backed properties now).
        pairs = joined = 0
        try:
            for lrow in self.left.execute(stats):
                matched = False
                for rrow in inner:
                    pairs += 1
                    combined = lrow + rrow
                    if compiled is None or compiled(combined) is True:
                        matched = True
                        joined += 1
                        yield combined
                if not matched and self.join_type == "left":
                    joined += 1
                    yield lrow + null_row
        finally:
            stats.bump(pairs_examined=pairs, rows_joined=joined)

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def label(self) -> str:
        pred = str(self.predicate) if self.predicate is not None else "TRUE"
        return f"NestedLoopJoin[{self.join_type}]({pred})"


class IndexNestedLoopJoin(Operator):
    """Per outer row, probe an index on the inner base table.

    Two probe modes:

    * equality — ``probe_keys`` expressions (over the *left* schema) are
      evaluated per outer row and looked up in the index;
    * band — ``band_low``/``band_high`` expressions give an inclusive key
      range served by a sorted index (the self-join pattern's
      ``s2.pos IN (s1.pos-1, s1.pos, s1.pos+1)`` becomes the band
      ``[s1.pos-1, s1.pos+1]``).

    A ``residual`` predicate (over the combined schema) re-checks candidates,
    preserving exact semantics when the index condition over-approximates.
    """

    def __init__(
        self,
        left: Operator,
        inner_table: Table,
        index_name: str,
        *,
        alias: Optional[str] = None,
        probe_keys: Optional[Sequence[Expr]] = None,
        band_low: Optional[Sequence[Expr]] = None,
        band_high: Optional[Sequence[Expr]] = None,
        residual: Optional[Expr] = None,
        join_type: str = "inner",
    ) -> None:
        _check_join_type(join_type)
        if index_name not in inner_table.indexes:
            raise PlanError(f"table {inner_table.name!r} has no index {index_name!r}")
        self.left = left
        self.inner_table = inner_table
        self.index = inner_table.indexes[index_name]
        self.alias = alias or inner_table.name
        self.join_type = join_type
        right_schema = inner_table.schema.qualify(self.alias)
        self.schema = left.schema.concat(right_schema)

        eq_mode = probe_keys is not None
        band_mode = band_low is not None or band_high is not None
        if eq_mode == band_mode:
            raise PlanError("specify exactly one of probe_keys or band_low/high")
        if band_mode and self.index.kind != "sorted":
            raise PlanError("band probes require a sorted index")
        self._probe = (
            [e.bind(left.schema) for e in probe_keys] if probe_keys else None
        )
        self._lo = [e.bind(left.schema) for e in band_low] if band_low else None
        self._hi = [e.bind(left.schema) for e in band_high] if band_high else None
        self.residual = residual
        self._residual = residual.bind(self.schema) if residual is not None else None

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        # Materialize the inner heap once: slots are probed in random
        # order, and per-probe tuple construction from the columnar heap
        # would dominate the O(pairs) inner loop.
        rows = list(self.inner_table.rows)
        residual = self._residual
        null_row = (None,) * len(self.inner_table.schema)
        lookups = pairs = joined = 0
        try:
            for lrow in self.left.execute(stats):
                lookups += 1
                if self._probe is not None:
                    slots = self.index.lookup(tuple(p(lrow) for p in self._probe))
                else:
                    lo = tuple(p(lrow) for p in self._lo) if self._lo else None
                    hi = tuple(p(lrow) for p in self._hi) if self._hi else None
                    slots = self.index.range(lo, hi)  # type: ignore[union-attr]
                matched = False
                for slot in slots:
                    pairs += 1
                    combined = lrow + rows[slot]
                    if residual is None or residual(combined) is True:
                        matched = True
                        joined += 1
                        yield combined
                if not matched and self.join_type == "left":
                    joined += 1
                    yield lrow + null_row
        finally:
            stats.bump(
                index_lookups=lookups, pairs_examined=pairs, rows_joined=joined
            )

    def execute_batches(
        self, stats: ExecutionStats, chunk_rows: int = BATCH_ROWS
    ) -> Iterator[Batch]:
        """Columnar probe path: gather matches with ``take`` per left batch.

        Probing stays per-row (it is an index lookup), but the output is
        assembled column-wise: one gather over the left batch and one over
        a zero-copy snapshot of the inner heap, with LEFT-outer pad rows
        expressed as cleared validity bits on the inner columns.  Output
        row order matches ``execute`` exactly.  Residual predicates need
        combined row tuples, so they take the generic row bridge.
        """
        if self._residual is not None:
            yield from super().execute_batches(stats, chunk_rows)
            return
        inner_schema = self.inner_table.schema
        inner = Batch(
            inner_schema.names(),
            [self.inner_table.column_values(i) for i in range(len(inner_schema))],
        )
        left_outer = self.join_type == "left"
        for lbatch in self.left.execute_batches(stats, chunk_rows):
            left_pos: List[int] = []
            inner_slots: List[int] = []
            lookups = pairs = joined = 0
            for pos, lrow in enumerate(lbatch.iter_rows()):
                lookups += 1
                if self._probe is not None:
                    slots = self.index.lookup(tuple(p(lrow) for p in self._probe))
                else:
                    lo = tuple(p(lrow) for p in self._lo) if self._lo else None
                    hi = tuple(p(lrow) for p in self._hi) if self._hi else None
                    slots = self.index.range(lo, hi)  # type: ignore[union-attr]
                matched = False
                for slot in slots:
                    pairs += 1
                    joined += 1
                    matched = True
                    left_pos.append(pos)
                    inner_slots.append(slot)
                if not matched and left_outer:
                    joined += 1
                    left_pos.append(pos)
                    inner_slots.append(-1)  # NULL pad marker
            stats.bump(
                index_lookups=lookups, pairs_examined=pairs, rows_joined=joined
            )
            if not left_pos:
                continue
            slot_arr = np.asarray(inner_slots, dtype=np.intp)
            pad = slot_arr < 0
            left_part = lbatch.take(np.asarray(left_pos, dtype=np.intp))
            right_cols = [
                _take_padded(col, slot_arr, pad) for col in inner.columns
            ]
            yield Batch(
                self.schema.names(), list(left_part.columns) + right_cols
            )

    def children(self) -> Sequence[Operator]:
        return (self.left,)

    def label(self) -> str:
        mode = "eq" if self._probe is not None else "band"
        res = f", residual={self.residual}" if self.residual is not None else ""
        return (
            f"IndexNestedLoopJoin[{self.join_type}]({self.inner_table.name} "
            f"AS {self.alias} via {self.index.name}/{mode}{res})"
        )


class HashJoin(Operator):
    """Equi-join on computed key expressions (build right, probe left)."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expr],
        right_keys: Sequence[Expr],
        residual: Optional[Expr] = None,
        join_type: str = "inner",
    ) -> None:
        _check_join_type(join_type)
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.join_type = join_type
        self.schema = left.schema.concat(right.schema)
        self._lk = [e.bind(left.schema) for e in self.left_keys]
        self._rk = [e.bind(right.schema) for e in self.right_keys]
        self.residual = residual
        self._residual = residual.bind(self.schema) if residual is not None else None

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        build: dict = {}
        for rrow in self.right.execute(stats):
            key = tuple(k(rrow) for k in self._rk)
            if any(v is None for v in key):
                continue  # NULL keys never join
            build.setdefault(key, []).append(rrow)
        residual = self._residual
        null_row = (None,) * len(self.right.schema)
        pairs = joined = 0
        try:
            for lrow in self.left.execute(stats):
                key = tuple(k(lrow) for k in self._lk)
                matched = False
                if not any(v is None for v in key):
                    for rrow in build.get(key, ()):
                        pairs += 1
                        combined = lrow + rrow
                        if residual is None or residual(combined) is True:
                            matched = True
                            joined += 1
                            yield combined
                if not matched and self.join_type == "left":
                    joined += 1
                    yield lrow + null_row
        finally:
            stats.bump(pairs_examined=pairs, rows_joined=joined)

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        res = f", residual={self.residual}" if self.residual is not None else ""
        return f"HashJoin[{self.join_type}]({keys}{res})"


class SortMergeJoin(Operator):
    """Equi-join by sorting both inputs on their keys and merging.

    Complements :class:`HashJoin` with deterministic memory behaviour and
    sorted output (useful when a downstream Sort on the join key can then
    be elided).  NULL keys never join, matching SQL semantics.  Duplicate
    keys on both sides produce the full cross product of the matching
    groups.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expr],
        right_keys: Sequence[Expr],
        residual: Optional[Expr] = None,
        join_type: str = "inner",
    ) -> None:
        _check_join_type(join_type)
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("sort-merge join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.join_type = join_type
        self.schema = left.schema.concat(right.schema)
        self._lk = [e.bind(left.schema) for e in self.left_keys]
        self._rk = [e.bind(right.schema) for e in self.right_keys]
        self.residual = residual
        self._residual = residual.bind(self.schema) if residual is not None else None

    def _keyed(self, rows, compiled, stats: ExecutionStats):
        keyed = []
        for row in rows:
            key = tuple(k(row) for k in compiled)
            if any(v is None for v in key):
                keyed.append((None, row))  # NULL keys sort out of the merge
            else:
                keyed.append((key, row))
        non_null = [(k, r) for k, r in keyed if k is not None]
        non_null.sort(key=lambda kr: kr[0])
        stats.rows_sorted += len(non_null)
        null_rows = [r for k, r in keyed if k is None]
        return non_null, null_rows

    def execute(self, stats: ExecutionStats) -> Iterator[Row]:
        left_sorted, left_nulls = self._keyed(
            list(self.left.execute(stats)), self._lk, stats
        )
        right_sorted, _ = self._keyed(
            list(self.right.execute(stats)), self._rk, stats
        )
        residual = self._residual
        null_row = (None,) * len(self.right.schema)

        i = j = 0
        nl, nr = len(left_sorted), len(right_sorted)
        pairs = joined = 0
        try:
            while i < nl and j < nr:
                lkey = left_sorted[i][0]
                rkey = right_sorted[j][0]
                if lkey < rkey:
                    if self.join_type == "left":
                        joined += 1
                        yield left_sorted[i][1] + null_row
                    i += 1
                elif lkey > rkey:
                    j += 1
                else:
                    # Collect both equal-key groups, emit their cross product.
                    i_end = i
                    while i_end < nl and left_sorted[i_end][0] == lkey:
                        i_end += 1
                    j_end = j
                    while j_end < nr and right_sorted[j_end][0] == rkey:
                        j_end += 1
                    for li in range(i, i_end):
                        matched = False
                        for rj in range(j, j_end):
                            pairs += 1
                            combined = left_sorted[li][1] + right_sorted[rj][1]
                            if residual is None or residual(combined) is True:
                                matched = True
                                joined += 1
                                yield combined
                        if not matched and self.join_type == "left":
                            joined += 1
                            yield left_sorted[li][1] + null_row
                    i, j = i_end, j_end
            if self.join_type == "left":
                for li in range(i, nl):
                    joined += 1
                    yield left_sorted[li][1] + null_row
                for row in left_nulls:
                    joined += 1
                    yield row + null_row
        finally:
            stats.bump(pairs_examined=pairs, rows_joined=joined)

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        res = f", residual={self.residual}" if self.residual is not None else ""
        return f"SortMergeJoin[{self.join_type}]({keys}{res})"
