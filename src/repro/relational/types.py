"""Column types for the relational engine.

A deliberately small type system — INTEGER, FLOAT, TEXT, BOOLEAN, DATE —
mirroring what the paper's schemas need (``c_transactions``,
``l_locations``, and the sequence tables ``seq(pos, val)`` /
``matseq(pos, val)``).  Dates are stored as ``datetime.date``.

Types validate and coerce Python values on insert; NULL is represented by
``None`` and accepted by every type.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SchemaError

__all__ = ["DataType", "INTEGER", "FLOAT", "TEXT", "BOOLEAN", "DATE", "type_by_name"]


@dataclass(frozen=True)
class DataType:
    """A column type: a name plus a coercion/validation function."""

    name: str
    coerce: Callable[[Any], Any]

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to this type (``None`` passes through as NULL).

        Raises:
            SchemaError: when the value cannot represent this type.
        """
        if value is None:
            return None
        try:
            return self.coerce(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot store {value!r} in a {self.name} column") from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise TypeError("boolean is not an integer")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{value} has a fractional part")
    return int(value)


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeError("boolean is not a float")
    return float(value)


def _coerce_text(value: Any) -> str:
    if not isinstance(value, str):
        raise TypeError(f"expected str, got {type(value).__name__}")
    return value


def _coerce_bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise TypeError(f"expected bool, got {type(value).__name__}")
    return value


def _coerce_date(value: Any) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        return datetime.date.fromisoformat(value)
    raise TypeError(f"expected date, got {type(value).__name__}")


INTEGER = DataType("INTEGER", _coerce_int)
FLOAT = DataType("FLOAT", _coerce_float)
TEXT = DataType("TEXT", _coerce_text)
BOOLEAN = DataType("BOOLEAN", _coerce_bool)
DATE = DataType("DATE", _coerce_date)

_TYPES = {t.name: t for t in (INTEGER, FLOAT, TEXT, BOOLEAN, DATE)}
_ALIASES = {"INT": INTEGER, "DOUBLE": FLOAT, "REAL": FLOAT, "VARCHAR": TEXT, "STRING": TEXT, "BOOL": BOOLEAN}


def type_by_name(name: str) -> DataType:
    """Look up a type by SQL-ish name (``INT``/``VARCHAR`` aliases accepted)."""
    upper = name.upper()
    if upper in _TYPES:
        return _TYPES[upper]
    if upper in _ALIASES:
        return _ALIASES[upper]
    raise SchemaError(f"unknown column type {name!r}")
