"""Catalog: the named-object registry of a database instance."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import CatalogError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, type_by_name

__all__ = ["Catalog"]

ColumnSpec = Union[Tuple[str, DataType], Tuple[str, str], Column]


def _normalize_columns(specs: Sequence[ColumnSpec]) -> Schema:
    columns: List[Column] = []
    for spec in specs:
        if isinstance(spec, Column):
            columns.append(Column(spec.name, spec.type))
        else:
            name, typ = spec
            if isinstance(typ, str):
                typ = type_by_name(typ)
            columns.append(Column(name, typ))
    return Schema(columns)


class Catalog:
    """Case-preserving, name-keyed table registry.

    Args:
        tables: optional pre-bound ``{name: Table}`` mapping — used by the
            serving tier to build a catalog over an epoch snapshot's frozen
            table versions without copying any data.
    """

    def __init__(self, tables: Optional[Dict[str, Table]] = None) -> None:
        self._tables: Dict[str, Table] = dict(tables) if tables else {}

    def create_table(
        self,
        name: str,
        columns: Sequence[ColumnSpec],
        *,
        primary_key: Optional[Sequence[str]] = None,
        if_not_exists: bool = False,
    ) -> Table:
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, _normalize_columns(columns), primary_key=primary_key)
        self._tables[name] = table
        return table

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        if name not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table {name!r}")
        del self._tables[name]

    def rename_table(self, old: str, new: str, *, replace: bool = False) -> Table:
        """Rename ``old`` to ``new``; with ``replace`` an existing ``new``
        is dropped in the same step.

        This is the commit primitive of crash-consistent view refresh: the
        registry mutation is a plain dict rebinding, so readers observe
        either the previous table or the fully-built replacement — never a
        partially-filled one.
        """
        if old not in self._tables:
            raise CatalogError(f"no table {old!r}")
        if new in self._tables and not replace:
            raise CatalogError(f"table {new!r} already exists")
        table = self._tables.pop(old)
        table.name = new
        self._tables[new] = table
        return table

    def replace(self, table: Table) -> None:
        """Rebind ``table.name`` to ``table`` in one atomic step.

        The copy-on-write primitive of the serving tier: a serialized
        writer installs a clone under the same name before mutating it, so
        snapshot readers holding the previous object are never affected.
        The rebinding is a single dict store — readers observe either the
        old or the new table, never a mixture.
        """
        if table.name not in self._tables:
            raise CatalogError(f"no table {table.name!r} to replace")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"no table {name!r} (have {sorted(self._tables)})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def names(self) -> List[str]:
        return sorted(self._tables)
