"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subclasses are grouped by subsystem: the core sequence algebra,
the relational engine, the SQL layer, and the materialized-view manager.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Core sequence algebra (repro.core)
# ---------------------------------------------------------------------------

class SequenceError(ReproError):
    """Invalid sequence specification or sequence operation."""


class WindowError(SequenceError):
    """Invalid window specification (e.g. negative bounds on a sliding window)."""


class IncompleteSequenceError(SequenceError):
    """An operation required a complete sequence (header/trailer) that is missing.

    See section 3.2 of the paper: derivation from a materialized sliding
    window sequence needs the sequence *header* (positions ``-h+1 .. 0``) and
    *trailer* (positions ``n+1 .. n+l``).
    """


class DerivationError(ReproError):
    """A sequence query is not derivable from the given materialized sequence."""


class MaintenanceError(ReproError):
    """An incremental maintenance rule could not be applied."""


# ---------------------------------------------------------------------------
# Parallel execution (repro.parallel)
# ---------------------------------------------------------------------------

class ParallelError(ReproError):
    """Invalid parallel-execution configuration or a failed worker task."""


class TaskTimeoutError(ParallelError):
    """A pool task exceeded the configured per-task timeout."""


# ---------------------------------------------------------------------------
# Fault injection (repro.faults)
# ---------------------------------------------------------------------------

class FaultError(ReproError):
    """Invalid fault plan or misuse of the injection framework."""


class InjectedFault(ReproError):
    """A deterministic fault fired by an installed :class:`FaultPlan`.

    Raised at the hooked site (executor task, storage write, refresh
    checkpoint, maintenance rule) so the surrounding robustness machinery
    — retry, serial fallback, atomic-swap rollback, quarantine — can be
    exercised without real hardware failures.
    """


# ---------------------------------------------------------------------------
# Relational engine (repro.relational)
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for relational-engine errors."""


class SchemaError(RelationalError):
    """Schema mismatch: unknown column, duplicate column, wrong arity/type."""


class CatalogError(RelationalError):
    """Unknown or duplicate table/index/view name."""


class ConstraintError(RelationalError):
    """Violation of a declared constraint (e.g. duplicate primary key)."""


class PageCorruptError(CatalogError):
    """A storage page failed its CRC32 check (or is quarantined).

    Raised by the buffer pool when a v4 page read decodes to bytes whose
    checksum disagrees with the page header / catalog directory.  The
    page is *quarantined* — subsequent reads fail fast with this error
    instead of retrying the bad bytes — and no corrupt values are ever
    returned to the engine.  Subclasses :class:`CatalogError` so existing
    corruption handling (verify CLI, warehouse fallback) applies.
    """


class PageCapacityError(RelationalError):
    """An updated value no longer fits its fixed-size storage page.

    Internal control flow: :class:`~repro.storage.paged.PagedTable`
    catches it and falls back to hydrating the column into memory before
    retrying the update.
    """


class ExpressionError(RelationalError):
    """Malformed expression tree or evaluation failure."""


class PlanError(RelationalError):
    """Malformed or non-executable query plan."""


# ---------------------------------------------------------------------------
# SQL layer (repro.sql)
# ---------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """Unrecognised token in the SQL input."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """The SQL input does not match the supported grammar."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class BindError(SqlError):
    """Name resolution failure: unknown table, column, or function."""


class UnsupportedSqlError(SqlError):
    """Syntactically valid SQL that this engine intentionally does not support."""


# ---------------------------------------------------------------------------
# Materialized views / warehouse (repro.views, repro.warehouse)
# ---------------------------------------------------------------------------

class ViewError(ReproError):
    """Base class for materialized-view errors."""


class ViewDefinitionError(ViewError):
    """The view definition is not a recognisable reporting-function view."""


class NoRewriteError(ViewError):
    """No registered materialized view can answer the query.

    Raised only when the caller demanded a rewrite
    (``require_rewrite=True``); the default behaviour is to fall back to
    evaluation over base tables.
    """


class QuarantinedViewError(ViewError):
    """A directly-addressed view is quarantined and cannot serve reads.

    Quarantined views are skipped transparently by the query rewriter
    (queries route back to base data); only *explicitly* view-addressed
    operations such as ``value_at`` raise.  ``DataWarehouse.repair()``
    re-refreshes, re-verifies and reinstates the view.
    """


# ---------------------------------------------------------------------------
# Concurrent serving tier (repro.serve)
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """Base class for serving-tier errors (server, protocol, sessions)."""


class ProtocolError(ServeError):
    """Malformed wire request/response (bad JSON, unknown op, bad fields)."""


class BackpressureError(ServeError):
    """The server's bounded query queue is full; retry later.

    Admission control rejects rather than queues unboundedly: the client
    receives this as a clean ``backpressure`` error instead of an ever-
    growing tail latency.
    """


class SessionKilledError(ServeError):
    """The session was terminated mid-query (fault injection or shutdown).

    The epoch pinned by the killed query is always released — a kill can
    never leak a pin or hold old epochs alive.
    """


class ConcurrencyError(ServeError):
    """An operation that requires exclusivity ran under concurrent serving.

    Raised e.g. by :meth:`DataWarehouse.save` when the warehouse is owned
    by a :class:`~repro.serve.concurrent.ConcurrentWarehouse` and the call
    did not go through the wrapper's serialized write path.
    """


class ServeConnectionError(ServeError):
    """The connection to a serve-tier peer failed mid-request.

    Wraps raw socket failures (``ConnectionResetError``, ``BrokenPipeError``,
    timeouts, unexpected EOF) so callers handle one typed error instead of
    transport internals.  ``request_id`` identifies the in-flight request
    whose response was lost — the caller cannot know whether the server
    executed it, so non-idempotent ops need an explicit status check before
    a retry.
    """

    def __init__(self, message: str, *, request_id=None) -> None:
        super().__init__(message)
        self.request_id = request_id


# ---------------------------------------------------------------------------
# Durable replication (repro.replicate)
# ---------------------------------------------------------------------------

class ReplicationError(ReproError):
    """Base class for write-ahead-log / replication / failover errors."""


class WalCorruptionError(ReplicationError):
    """The write-ahead log is corrupt *before* its tail.

    A torn tail (a crash mid-append) is expected and silently truncated on
    open; a bad frame followed by good frames means the log itself was
    damaged and recovery cannot trust anything after the corruption point.
    """


class DivergenceError(ReplicationError):
    """A replica's post-apply state digest disagrees with the primary's.

    The shipped epoch record carries the primary's content digest; a
    mismatch after apply means the replica can no longer serve answers
    bit-identical to the primary and must stop applying (it keeps serving
    reads at its last verified epoch).
    """


class NotPrimaryError(ReplicationError):
    """A write reached a replica that has not been promoted.

    Replicas serve (stale-flagged) reads at their last replicated epoch;
    writes fail fast with this error so the client can redirect to the
    primary (or wait for failover to promote one).
    """
