"""Metamorphic relations: oracle-free correctness checks.

Each relation transforms a case's dataset in a way whose effect on the
output is known *exactly* from the window model, then checks the engine's
answers track it.  None of them needs SQLite — they guard the suite even
where no external oracle exists (and they catch bugs an oracle shared by
all paths would miss, e.g. a wrong NULL rule applied consistently).

NULL note: the engine's semantics make an absent measure count as 0, so
every transformation first *materializes* that rule (``val or 0``) before
transforming — otherwise a window containing NULLs would shift by less
than ``c`` and the relation would be wrong, not the engine.

Relations (over the engine path unless stated):

``shift``        ``x -> x + c``: SUM shifts by ``c·W(k)`` (W from the COUNT
                 path), MIN/MAX/AVG shift by ``c``, COUNT is invariant.
``scale``        ``x -> a·x`` with ``a < 0``: SUM/AVG scale by ``a``,
                 COUNT is invariant, MIN and MAX swap roles.
``permutation``  permuting the *input row order* (and partition labels'
                 insert order) never changes any output value.
``insert_delete``  inserting a row into a maintained view and deleting it
                 again is the identity on the view (maintenance §2.3).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List

from repro.testkit.differ import PathDiscrepancy, diff_results
from repro.testkit.generator import FuzzCase
from repro.testkit.paths import run_path
from repro.views.verify import values_differ

__all__ = ["RELATIONS", "run_relation", "run_relations"]


def _normalized_rows(case: FuzzCase):
    """Dataset rows with the NULL-counts-as-0 rule applied."""
    return [(g, pos, 0.0 if v is None else float(v)) for g, pos, v in case.rows]


def relation_shift(case: FuzzCase, path: str = "engine") -> List[PathDiscrepancy]:
    """``x -> x + c``: SUM moves by ``c·W(k)``, MIN/MAX/AVG by ``c``,
    COUNT not at all."""
    c = 7.5
    base = run_path(path, case) or {}
    counts = run_path(path, replace(case, aggregate_name="COUNT")) or {}
    shifted_case = case.with_rows(
        [(g, pos, v + c) for g, pos, v in _normalized_rows(case)]
    )
    got = run_path(path, shifted_case) or {}
    if case.aggregate_name == "SUM":
        expected = {k: v + c * counts[k] for k, v in base.items()}
    elif case.aggregate_name == "COUNT":
        expected = dict(base)
    else:  # AVG, MIN, MAX all shift by exactly c
        expected = {k: v + c for k, v in base.items()}
    return diff_results("meta:shift", expected, path, got)


def relation_scale(case: FuzzCase, path: str = "engine") -> List[PathDiscrepancy]:
    """``x -> a·x`` with ``a < 0``: SUM/AVG scale linearly, COUNT is
    invariant, and MIN/MAX swap roles (``MIN(a·x) = a·MAX(x)``)."""
    a = -2.0
    scaled_case = case.with_rows(
        [(g, pos, a * v) for g, pos, v in _normalized_rows(case)]
    )
    got = run_path(path, scaled_case) or {}
    if case.aggregate_name == "COUNT":
        expected = dict(run_path(path, case) or {})
    elif case.aggregate_name in ("MIN", "MAX"):
        # Negative scaling swaps the extremes: MIN(a·x) = a·MAX(x) for a < 0.
        dual = "MAX" if case.aggregate_name == "MIN" else "MIN"
        expected = {
            k: a * v
            for k, v in (run_path(path, replace(case, aggregate_name=dual)) or {}).items()
        }
    else:  # SUM, AVG are linear
        expected = {k: a * v for k, v in (run_path(path, case) or {}).items()}
    return diff_results("meta:scale", expected, path, got)


def relation_permutation(case: FuzzCase, path: str = "engine") -> List[PathDiscrepancy]:
    """Permuting the input row order never changes any output value."""
    base = run_path(path, case) or {}
    shuffled = list(case.rows)
    random.Random(case.seed ^ 0x5EED).shuffle(shuffled)
    got = run_path(path, case.with_rows(shuffled)) or {}
    return diff_results("meta:permutation", base, path, got)


def relation_insert_delete(case: FuzzCase, path: str = "engine") -> List[PathDiscrepancy]:
    """Insert then delete a row on a *maintained* view: identity.

    Exercises the incremental maintenance rules (§2.3) end to end: the view
    is materialized once, a fresh row is propagated in and back out, and
    the storage table must match the original bit for bit (tolerance rule
    shared with verify).
    """
    from repro.relational import FLOAT, INTEGER
    from repro.warehouse import DataWarehouse

    agg = "SUM" if case.aggregate_name == "AVG" else case.aggregate_name
    wh = DataWarehouse()
    wh.create_table("t", [("g", INTEGER), ("pos", INTEGER), ("val", FLOAT)])
    rows = _normalized_rows(case)
    wh.insert("t", rows)
    over = "PARTITION BY g ORDER BY pos" if case.partitioned else "ORDER BY pos"
    view = wh.create_view(
        "tk_meta_mv",
        f"SELECT {'g, ' if case.partitioned else ''}pos, {agg}(val) "
        f"OVER ({over} {case.window.to_frame_sql()}) AS w FROM t",
    )

    def snapshot() -> Dict[tuple, float]:
        table = wh.db.table(view.definition.storage_table)
        n_part = len(view.definition.partition_by)
        pos_slot = table.schema.resolve("__pos")
        val_slot = table.schema.resolve("__val")
        return {
            tuple(r[:n_part]) + (r[pos_slot],): float(r[val_slot])
            for r in table.rows
        }

    before = snapshot()
    new_pos = max(r[1] for r in rows) + 1
    new_g = rows[0][0]
    wh.insert_row("t", (new_g, new_pos, 123.25))
    wh.delete_row("t", keys={"g": new_g, "pos": new_pos})
    after = snapshot()
    out = diff_results("meta:insert_delete", before, "maintained-view", after)
    for name, report in wh.verify(quarantine=False).items():
        for d in report.discrepancies:
            out.append(PathDiscrepancy(
                "meta:insert_delete", "maintained-view", None, None, None,
                f"verify({name}) after insert+delete: {d.detail}"))
    return out


RELATIONS: Dict[str, Callable[..., List[PathDiscrepancy]]] = {
    "shift": relation_shift,
    "scale": relation_scale,
    "permutation": relation_permutation,
    "insert_delete": relation_insert_delete,
}


def run_relation(name: str, case: FuzzCase, *, path: str = "engine") -> List[PathDiscrepancy]:
    """Check one named relation for ``case``; returns its discrepancies.

    Multi-window cases are skipped: each relation's expected transform is
    stated for the case's *base* aggregate, and the extra OVER clauses
    (possibly different aggregates) would not follow it.
    """
    try:
        fn = RELATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown metamorphic relation {name!r}; expected one of {sorted(RELATIONS)}"
        ) from None
    if case.extra_windows:
        return []
    return fn(case, path)


def run_relations(case: FuzzCase, names=tuple(RELATIONS), *, path: str = "engine"):
    """Run several relations; returns all discrepancies found."""
    out: List[PathDiscrepancy] = []
    for name in names:
        out.extend(run_relation(name, case, path=path))
    return out
