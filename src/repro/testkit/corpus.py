"""Replayable repro files.

Every failure the fuzzer finds is written — already shrunk — to a small
JSON file that contains everything needed to reproduce it: the dataset,
the query, the paths and oracle that disagreed, the fault plan that was
armed (if any), and the generating seed.  The checked-in corpus under
``tests/testkit/corpus/`` is replayed by the regression suite, so a bug
found by fuzzing once is guarded forever.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.window import WindowSpec, cumulative, sliding
from repro.testkit.differ import PathDiscrepancy
from repro.testkit.generator import FuzzCase

__all__ = ["ReproFile", "save_repro", "load_repro", "replay_file", "replay"]

FORMAT = 1

# Default on-disk home of fuzzer-found repros (relative to the repo root).
DEFAULT_CORPUS_DIR = os.path.join("tests", "testkit", "corpus")


def _window_to_dict(window: WindowSpec) -> dict:
    return {"kind": window.kind, "l": window.l, "h": window.h}


def _window_from_dict(doc: dict) -> WindowSpec:
    if doc["kind"] == "cumulative":
        return cumulative()
    return sliding(doc["l"], doc["h"], allow_point=True)


@dataclass
class ReproFile:
    """In-memory form of one corpus entry."""

    case: FuzzCase
    paths: Tuple[str, ...]
    oracle: Optional[str] = "sqlite"
    relations: Tuple[str, ...] = ()
    fault_specs: Tuple[dict, ...] = ()
    fault_seed: int = 0
    discrepancies: List[dict] = field(default_factory=list)
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "seed": self.case.seed,
            "note": self.note,
            "case": {
                "rows": [list(r) for r in self.case.rows],
                "partitioned": self.case.partitioned,
                "window": _window_to_dict(self.case.window),
                "aggregate": self.case.aggregate_name,
                # Optional key: only multi-window cases carry it, so older
                # corpus files (and readers) are unaffected.
                **(
                    {
                        "extra_windows": [
                            [agg, _window_to_dict(win)]
                            for agg, win in self.case.extra_windows
                        ]
                    }
                    if self.case.extra_windows
                    else {}
                ),
            },
            "paths": list(self.paths),
            "oracle": self.oracle,
            "relations": list(self.relations),
            "faults": (
                {"seed": self.fault_seed, "specs": list(self.fault_specs)}
                if self.fault_specs
                else None
            ),
            "discrepancies": self.discrepancies,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ReproFile":
        if doc.get("format") != FORMAT:
            raise ValueError(
                f"unsupported repro file format {doc.get('format')!r} "
                f"(this build reads format {FORMAT})"
            )
        c = doc["case"]
        case = FuzzCase(
            seed=doc["seed"],
            rows=tuple(tuple(r) for r in c["rows"]),
            partitioned=c["partitioned"],
            window=_window_from_dict(c["window"]),
            aggregate_name=c["aggregate"],
            extra_windows=tuple(
                (agg, _window_from_dict(win))
                for agg, win in c.get("extra_windows", ())
            ),
        )
        faults = doc.get("faults") or {}
        return cls(
            case=case,
            paths=tuple(doc["paths"]),
            oracle=doc.get("oracle"),
            relations=tuple(doc.get("relations", ())),
            fault_specs=tuple(faults.get("specs", ())),
            fault_seed=faults.get("seed", 0),
            discrepancies=list(doc.get("discrepancies", ())),
            note=doc.get("note", ""),
        )


def _active_fault_state() -> Tuple[Tuple[dict, ...], int]:
    """Capture the currently armed fault plan, if any, for the repro file."""
    from repro.faults import injector

    plan = injector.active_plan()
    if plan is None:
        return (), 0
    specs = tuple(
        {
            "kind": s.kind,
            "target": s.target,
            "at": s.at,
            "times": s.times,
            "point": s.point,
            "seconds": s.seconds,
        }
        for s in plan.specs
    )
    return specs, plan.seed


def save_repro(
    case: FuzzCase,
    discrepancies: Sequence[PathDiscrepancy],
    *,
    directory: str = DEFAULT_CORPUS_DIR,
    paths: Sequence[str],
    oracle: Optional[str] = "sqlite",
    relations: Sequence[str] = (),
    note: str = "",
) -> str:
    """Write one repro file; returns its path.

    The file name is derived from the seed plus a content hash, so distinct
    failures from the same seed never overwrite each other, while re-saving
    the identical repro is idempotent.
    """
    specs, fault_seed = _active_fault_state()
    doc = ReproFile(
        case=case,
        paths=tuple(paths),
        oracle=oracle,
        relations=tuple(relations),
        fault_specs=specs,
        fault_seed=fault_seed,
        discrepancies=[d.to_dict() for d in discrepancies],
        note=note,
    ).to_dict()
    body = json.dumps(doc, indent=2, sort_keys=True)
    digest = hashlib.sha1(
        json.dumps(doc["case"], sort_keys=True).encode()
    ).hexdigest()[:10]
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"repro_seed{case.seed}_{digest}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(body + "\n")
    os.replace(tmp, path)
    return path


def load_repro(path: str) -> ReproFile:
    """Read one repro file back into its in-memory form."""
    with open(path, encoding="utf-8") as fh:
        return ReproFile.from_dict(json.load(fh))


def replay(repro: ReproFile) -> List[PathDiscrepancy]:
    """Re-run a repro: paths, oracle, relations, under its fault plan.

    Returns every discrepancy found now (an empty list means the underlying
    bug is fixed).  If the repro recorded a fault plan and none is active, a
    fresh plan with the recorded seed/specs is armed for the duration.
    """
    from contextlib import nullcontext

    from repro.faults import FaultPlan, FaultSpec, injector
    from repro.testkit.differ import diff_paths
    from repro.testkit.metamorphic import run_relations
    from repro.testkit.oracle import sqlite_oracle
    from repro.testkit.paths import run_paths

    if repro.fault_specs and injector.active_plan() is None:
        plan = FaultPlan(
            [FaultSpec(**spec) for spec in repro.fault_specs],
            seed=repro.fault_seed,
        )
        ctx = injector.active(plan)
    else:
        ctx = nullcontext()
    with ctx:
        results = run_paths(repro.case, repro.paths)
        reference = "pipelined" if "pipelined" in results else repro.paths[0]
        if repro.oracle == "sqlite":
            results["sqlite"] = sqlite_oracle(repro.case)
            reference = "sqlite"
        found = diff_paths(results, reference=reference)
        if repro.relations:
            found.extend(run_relations(repro.case, repro.relations))
    return found


def replay_file(path: str) -> List[PathDiscrepancy]:
    """Load and replay one corpus file."""
    return replay(load_repro(path))
