"""Seeded random reporting-function cases.

A :class:`FuzzCase` bundles one dataset with one query.  The generator is
fully deterministic: the same seed always produces the same case, and the
seed rides along in the case, every discrepancy record, and the JSON fuzz
report, so a CI failure replays locally with nothing but the seed.

The dataset deliberately includes the spots where window rewrites go wrong:

* NULL measures (the engine's documented semantics: an absent measure
  counts as 0 — the oracle mirrors this with ``COALESCE``);
* duplicated values (ties) including exact zeros and sign flips;
* tiny partitions (1-2 rows) where the window clips at both the header and
  trailer edge simultaneously;
* sparse, non-dense ordering keys (ordering is an order, not an index).

Ordering keys stay unique per partition — the sequence model (and
deterministic ``ROWS`` frames in any engine, SQLite included) requires a
strict linear order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.aggregates import Aggregate, by_name
from repro.core.window import WindowSpec, cumulative, sliding

__all__ = ["FuzzCase", "CaseGenerator", "AGGREGATE_NAMES"]

AGGREGATE_NAMES = ("SUM", "COUNT", "AVG", "MIN", "MAX")

# One dataset row: (partition key, ordering key, measure or NULL).
Row = Tuple[int, int, Optional[float]]


@dataclass(frozen=True)
class FuzzCase:
    """One generated dataset + query, with its generating seed.

    Attributes:
        seed: the exact seed that produced this case (echoed everywhere).
        rows: dataset rows ``(g, pos, val)``; ``val`` may be None (NULL).
        partitioned: whether the query has a ``PARTITION BY g`` clause.
        window: the query's window frame.
        aggregate_name: SUM/COUNT/AVG/MIN/MAX.
        extra_windows: additional ``(aggregate, window)`` OVER clauses on
            the same partitioning/ordering — the multi-window case family
            exercising the operator's sort/derivation sharing.  Empty for
            the classic single-clause cases.
    """

    seed: int
    rows: Tuple[Row, ...]
    partitioned: bool
    window: WindowSpec
    aggregate_name: str
    extra_windows: Tuple[Tuple[str, WindowSpec], ...] = ()

    @property
    def aggregate(self) -> Aggregate:
        return by_name(self.aggregate_name)

    @property
    def window_names(self) -> Tuple[str, ...]:
        """Output column names: ``w`` plus ``w2, w3, ...`` for extras."""
        return ("w",) + tuple(
            f"w{i}" for i in range(2, len(self.extra_windows) + 2)
        )

    def all_windows(self) -> List[Tuple[str, str, WindowSpec]]:
        """Every OVER clause as ``(column_name, aggregate, window)``."""
        out = [("w", self.aggregate_name, self.window)]
        for name, (agg, win) in zip(self.window_names[1:], self.extra_windows):
            out.append((name, agg, win))
        return out

    @property
    def sql(self) -> str:
        """The query text every internal engine path executes."""
        over = "PARTITION BY g ORDER BY pos" if self.partitioned else "ORDER BY pos"
        cols = ", ".join(
            f"{agg}(val) OVER ({over} {win.to_frame_sql()}) AS {name}"
            for name, agg, win in self.all_windows()
        )
        return f"SELECT g, pos, {cols} FROM t"

    def partitions(self) -> Dict[Tuple[object, ...], List[Row]]:
        """Rows grouped by the query's partitioning, sorted by ``pos``.

        An unpartitioned query has the single partition key ``()``.
        """
        groups: Dict[Tuple[object, ...], List[Row]] = {}
        for row in self.rows:
            key = (row[0],) if self.partitioned else ()
            groups.setdefault(key, []).append(row)
        for rows in groups.values():
            rows.sort(key=lambda r: r[1])
        return groups

    def with_rows(self, rows) -> "FuzzCase":
        """A copy over a different dataset (used by the shrinker)."""
        return replace(self, rows=tuple(tuple(r) for r in rows))

    def with_window(self, window: WindowSpec) -> "FuzzCase":
        return replace(self, window=window)

    def describe(self) -> str:
        nulls = sum(1 for r in self.rows if r[2] is None)
        extra = (
            f" +{len(self.extra_windows)} extra OVER clauses"
            if self.extra_windows
            else ""
        )
        return (
            f"seed={self.seed}: {self.aggregate_name} over {self.window}"
            f"{extra}, {len(self.rows)} rows ({nulls} NULL), "
            + ("partitioned" if self.partitioned else "unpartitioned")
        )


class CaseGenerator:
    """Deterministic case factory: ``case(seed)`` is a pure function.

    Args:
        max_rows: upper bound on dataset size (small keeps every path fast
            and keeps shrunk repros readable).
        max_bound: upper bound on the window's ``l``/``h``.
        null_rate: probability that a measure is NULL.
        multi_over_rate: probability that a case carries 1-2 extra OVER
            clauses (the multi-window family).  The extra draws happen
            strictly *after* the classic draws, so any seed's base case is
            identical to what older generators produced.
    """

    def __init__(
        self,
        *,
        max_rows: int = 48,
        max_bound: int = 6,
        null_rate: float = 0.15,
        multi_over_rate: float = 0.2,
    ) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows
        self.max_bound = max_bound
        self.null_rate = null_rate
        self.multi_over_rate = multi_over_rate

    def case(self, seed: int) -> FuzzCase:
        rng = random.Random(seed)
        partitioned = rng.random() < 0.6
        window = self._window(rng)
        aggregate_name = rng.choice(AGGREGATE_NAMES)
        rows = self._rows(rng, partitioned)
        extra = self._extra_windows(rng, aggregate_name, window)
        return FuzzCase(
            seed=seed,
            rows=tuple(rows),
            partitioned=partitioned,
            window=window,
            aggregate_name=aggregate_name,
            extra_windows=extra,
        )

    def cases(self, n: int, *, base_seed: int = 0):
        """``n`` cases with seeds ``base_seed .. base_seed + n - 1``."""
        return [self.case(base_seed + i) for i in range(n)]

    # -- pieces ------------------------------------------------------------

    def _window(self, rng: random.Random) -> WindowSpec:
        if rng.random() < 0.25:
            return cumulative()
        # l + h >= 1 (the paper's footnote); bias toward small frames where
        # the header/trailer clipping dominates the output.
        l = rng.randint(0, self.max_bound)
        h = rng.randint(0 if l else 1, self.max_bound)
        return sliding(l, h)

    def _rows(self, rng: random.Random, partitioned: bool) -> List[Row]:
        n = rng.randint(1, self.max_rows)
        n_groups = rng.randint(1, 4) if partitioned else 1
        # Sparse, shuffled ordering keys: ordering is an order, not an index.
        keys = rng.sample(range(1, 4 * n + 1), n)
        rows: List[Row] = []
        for pos in keys:
            g = rng.randint(1, n_groups)
            rows.append((g, pos, self._value(rng)))
        # Occasionally force a tiny partition so a 1-row sequence (pure
        # header+trailer clipping) is always in the mix.
        if partitioned and rng.random() < 0.5:
            extra = max(k for _, k, _ in rows) + rng.randint(1, 3)
            rows.append((n_groups + 1, extra, self._value(rng)))
        return rows

    def _extra_windows(
        self, rng: random.Random, aggregate_name: str, window: WindowSpec
    ) -> Tuple[Tuple[str, WindowSpec], ...]:
        """1-2 extra OVER clauses for the multi-window family (maybe none).

        MIN/MAX base clauses are biased toward a *same-function wider
        sliding* sibling — exactly the shape the window operator can serve
        by MaxOA derivation from the first clause's sequence.
        """
        if rng.random() >= self.multi_over_rate:
            return ()
        extra = []
        for _ in range(rng.randint(1, 2)):
            if (
                aggregate_name in ("MIN", "MAX")
                and window.is_sliding
                and rng.random() < 0.5
            ):
                wx = window.width
                dl = rng.randint(0, min(wx, self.max_bound))
                dh = rng.randint(0, min(wx, self.max_bound))
                if dl == 0 and dh == 0:
                    dh = 1
                extra.append(
                    (aggregate_name, sliding(window.l + dl, window.h + dh))
                )
            else:
                extra.append((rng.choice(AGGREGATE_NAMES), self._window(rng)))
        return tuple(extra)

    def _value(self, rng: random.Random) -> Optional[float]:
        roll = rng.random()
        if roll < self.null_rate:
            return None
        if roll < self.null_rate + 0.15:
            # Ties and exact edge values.
            return rng.choice([0.0, 1.0, -1.0, 10.0, -10.0])
        if roll < self.null_rate + 0.35:
            return float(rng.randint(-100, 100))
        return round(rng.uniform(-1000.0, 1000.0), 3)
