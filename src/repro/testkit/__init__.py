"""Differential testing and fuzzing subsystem.

The paper's value proposition is that every evaluation strategy — the
explicit (naive) form, the pipelined form (§2.2), the relational mapping
(fig. 2), parallel execution, and view-derived plans via MaxOA/MinOA
(§4-§5) — returns the *same* answer.  This package turns that claim into a
standing harness:

* :mod:`~repro.testkit.generator` — seeded random reporting-function
  queries plus datasets (NULLs, ties, tiny partitions, negative values);
* :mod:`~repro.testkit.oracle` — an external oracle running the same query
  through the stdlib ``sqlite3`` module (native window functions);
* :mod:`~repro.testkit.paths` — every internal execution path as a
  uniform ``case -> {row_key: value}`` function;
* :mod:`~repro.testkit.differ` — cross-path comparison with the tolerance
  rules shared with :mod:`repro.views.verify`;
* :mod:`~repro.testkit.metamorphic` — metamorphic relations that need no
  oracle at all (shift, scale, permutation, insert/delete identity);
* :mod:`~repro.testkit.shrinker` — delta-debugging reduction of a failing
  case to a minimal dataset + query;
* :mod:`~repro.testkit.corpus` — replayable repro files under
  ``tests/testkit/corpus/``;
* :mod:`~repro.testkit.runner` — the fuzz loop behind ``repro fuzz``.

Every future optimization PR must keep ``repro fuzz --seeds N --oracle
sqlite`` clean; any failure it ever finds arrives pre-shrunk and replayable.
"""

from repro.testkit.corpus import ReproFile, load_repro, replay_file, save_repro
from repro.testkit.differ import PathDiscrepancy, diff_paths
from repro.testkit.generator import CaseGenerator, FuzzCase
from repro.testkit.oracle import SQLITE_WINDOWS_OK, sqlite_oracle
from repro.testkit.paths import PATHS, run_path, run_paths
from repro.testkit.runner import FuzzReport, FuzzRunner
from repro.testkit.shrinker import shrink_case

__all__ = [
    "CaseGenerator",
    "FuzzCase",
    "FuzzReport",
    "FuzzRunner",
    "PATHS",
    "PathDiscrepancy",
    "ReproFile",
    "SQLITE_WINDOWS_OK",
    "diff_paths",
    "load_repro",
    "replay_file",
    "run_path",
    "run_paths",
    "save_repro",
    "shrink_case",
    "sqlite_oracle",
]
