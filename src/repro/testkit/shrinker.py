"""Delta-debugging shrinker: reduce a failing case to a minimal repro.

Classic ddmin over the dataset rows, then window-bound reduction, then
value simplification — each step re-runs the failure predicate and keeps a
reduction only when the case *still fails*.  The loop repeats to a
fixpoint, so row removal that only becomes possible after a window shrink
is still found.

The predicate is a plain ``Callable[[FuzzCase], bool]`` so the same
shrinker serves oracle diffs, metamorphic failures and fault-injection
discrepancies alike.  Shrinking is deterministic: candidates are tried in
a fixed order and no randomness is involved.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.window import cumulative, sliding
from repro.testkit.generator import FuzzCase

__all__ = ["shrink_case"]

Predicate = Callable[[FuzzCase], bool]


def _try(case: FuzzCase, fails: Predicate) -> bool:
    """Run the predicate, treating a crashing candidate as "does not fail".

    A reduction that makes the harness itself blow up (e.g. an empty
    dataset, an underivable window) is simply not taken.
    """
    if not case.rows:
        return False
    try:
        return bool(fails(case))
    except Exception:
        return False


def _ddmin_rows(case: FuzzCase, fails: Predicate, *, max_checks: int) -> FuzzCase:
    """Minimize the row set with ddmin (remove chunks, halving granularity)."""
    rows = list(case.rows)
    n_chunks = 2
    checks = 0
    while len(rows) > 1 and checks < max_checks:
        n_chunks = min(n_chunks, len(rows))
        chunk = max(1, len(rows) // n_chunks)
        reduced = False
        for start in range(0, len(rows), chunk):
            candidate = rows[:start] + rows[start + chunk:]
            checks += 1
            if _try(case.with_rows(candidate), fails):
                rows = candidate
                n_chunks = max(n_chunks - 1, 2)
                reduced = True
                break
            if checks >= max_checks:
                break
        if not reduced:
            if n_chunks >= len(rows):
                break
            n_chunks = min(len(rows), n_chunks * 2)
    return case.with_rows(rows)


def _shrink_window(case: FuzzCase, fails: Predicate) -> FuzzCase:
    """Reduce the window toward the smallest frame that still fails."""
    if case.window.is_cumulative:
        # Try the smallest sliding frames as simpler stand-ins.
        for candidate in (sliding(1, 0), sliding(0, 1)):
            if _try(case.with_window(candidate), fails):
                return case.with_window(candidate)
        return case
    current = case.window
    changed = True
    while changed:
        changed = False
        for l, h in ((current.l - 1, current.h), (current.l, current.h - 1)):
            if l < 0 or h < 0 or l + h < 1:
                continue
            candidate = case.with_window(sliding(l, h))
            if _try(candidate, fails):
                current = sliding(l, h)
                case = candidate
                changed = True
                break
    return case


def _simplify_values(case: FuzzCase, fails: Predicate) -> FuzzCase:
    """Replace each measure with the simplest value that keeps the failure."""
    rows = [list(r) for r in case.rows]
    for i, row in enumerate(rows):
        value = row[2]
        candidates: List[object] = [0.0, 1.0]
        if isinstance(value, float) and value != int(value):
            candidates.append(float(int(value)))
        for candidate in candidates:
            if candidate == value:
                continue
            trial = [list(r) for r in rows]
            trial[i][2] = candidate
            if _try(case.with_rows(trial), fails):
                rows = trial
                break
    return case.with_rows(rows)


def shrink_case(
    case: FuzzCase,
    fails: Predicate,
    *,
    max_rounds: int = 8,
    max_checks_per_round: int = 400,
) -> FuzzCase:
    """Reduce ``case`` to a (locally) minimal case that still fails.

    The input case itself must fail the predicate; the result is guaranteed
    to fail it too (every accepted reduction re-ran it).

    Args:
        max_rounds: fixpoint iterations of the row/window/value passes.
        max_checks_per_round: ddmin predicate-evaluation budget per round.
    """
    if not _try(case, fails):
        raise ValueError(
            f"shrink_case needs a failing case (seed={case.seed} passes the predicate)"
        )
    for _ in range(max_rounds):
        before = (case.rows, case.window)
        case = _ddmin_rows(case, fails, max_checks=max_checks_per_round)
        case = _shrink_window(case, fails)
        case = _simplify_values(case, fails)
        if (case.rows, case.window) == before:
            break
    return case
