"""Every internal execution path as a uniform ``case -> {key: value}`` map.

Each path evaluates a :class:`~repro.testkit.generator.FuzzCase` and
returns ``{(g, pos): value}``; ``pos`` is globally unique in generated
datasets, so the key identifies a row even for unpartitioned queries.

Paths:

``naive``            explicit form, O(W) per position (§2.2)
``pipelined``        recursive form, O(1) amortised per position (§2.2)
``vectorized``       numpy kernels (skipped when numpy is unavailable)
``engine``           full SQL stack: parse -> plan -> WindowOperator
``engine-parallel``  same, through the partition-parallel subsystem
``engine-cost``      same, planned by the cost-based optimizer (statistics
                     drive the strategy/route choice; results must match)
``engine-paged``     same, on a v4 paged store loaded behind a small
                     buffer-pool budget (out-of-core reads + spilling)
``view-maxoa``       materialized view one step *narrower*, MaxOA (§4)
``view-minoa``       materialized view one step *wider*, MinOA (§5)

Multi-window cases (``case.extra_windows``) run on the core and engine
paths with result keys ``(g, pos, column)``; the view paths return None
for them (the rewriter targets single reporting-function shapes).

The view paths execute in ``mode="relational"`` wherever the engine has a
relational pattern (invertible aggregates, identity matches) — the
relational patterns read the view's *storage table*, so corruption injected
into storage (the ``bitflip`` fault) is visible to the differ, not just to
``verify_view``; MIN/MAX derivations and prefix tiling fall back to the
in-memory form the engine provides.  They call
:func:`repro.faults.injector.verify_hook` on the freshly materialized view
first: that is the testkit's storage fault point, reusing the ``verify``
site so existing fault plans work unchanged.

A path that does not apply to a case (e.g. MinOA for MIN/MAX, whose
aggregate is not invertible) returns None and is reported as skipped, never
silently dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.aggregates import Aggregate
from repro.core.compute import compute_naive, compute_pipelined
from repro.core.window import WindowSpec, cumulative, sliding
from repro.testkit.generator import FuzzCase

__all__ = ["PATHS", "DEFAULT_PATHS", "run_path", "run_paths"]

ResultMap = Dict[Tuple[object, ...], float]
PathFn = Callable[[FuzzCase], Optional[ResultMap]]


def _raw_values(rows) -> List[float]:
    """Measures of one sorted partition; NULL counts as 0 (engine semantics)."""
    return [0.0 if r[2] is None else float(r[2]) for r in rows]


def _core_path(case: FuzzCase, compute) -> ResultMap:
    """Evaluate per partition with a core kernel ``compute(raw, window, agg)``.

    Single-window cases keep the classic ``(g, pos)`` keys; multi-window
    cases key each value by ``(g, pos, column)`` so one map carries every
    OVER clause.
    """
    from repro.core.aggregates import by_name

    multi = bool(case.extra_windows)
    out: ResultMap = {}
    for _key, rows in case.partitions().items():
        raw = _raw_values(rows)
        for name, agg_name, window in case.all_windows():
            values = compute(raw, window, by_name(agg_name))
            for (g, pos, _val), value in zip(rows, values):
                key = (g, pos, name) if multi else (g, pos)
                out[key] = float(value)
    return out


def path_naive(case: FuzzCase) -> ResultMap:
    """The explicit form: every position aggregates its whole window."""
    return _core_path(case, compute_naive)


def path_pipelined(case: FuzzCase) -> ResultMap:
    """The recursive form: each value derived from its predecessor."""
    return _core_path(case, compute_pipelined)


def path_vectorized(case: FuzzCase) -> Optional[ResultMap]:
    """The numpy kernels; None (skipped) when numpy is unavailable."""
    try:
        from repro.core.vectorized import compute_vectorized
    except Exception:
        return None
    return _core_path(case, compute_vectorized)


def _engine_path(
    case: FuzzCase, exec_config=None, planner: str = "rule", paged: bool = False
) -> ResultMap:
    """The full SQL stack against the in-process relational engine.

    With ``paged=True`` the dataset takes a detour through the v4 paged
    dump format: saved with a small page size, reloaded behind a buffer
    pool with a deliberately tiny memory budget, and queried out of core
    — results must stay bit-identical to the in-memory paths.
    """
    from repro.relational import FLOAT, INTEGER
    from repro.warehouse import DataWarehouse

    wh = DataWarehouse(execution=exec_config, planner=planner)
    wh.create_table("t", [("g", INTEGER), ("pos", INTEGER), ("val", FLOAT)])
    wh.insert("t", list(case.rows))
    if paged:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            wh.save(tmp, storage_format=4, page_size=512)
            wh = DataWarehouse.load(tmp, memory_budget_bytes=4096)
            result = wh.query(case.sql, use_views=False)
    else:
        result = wh.query(case.sql, use_views=False)
    g_i = result.schema.resolve("g")
    pos_i = result.schema.resolve("pos")
    if not case.extra_windows:
        w_i = result.schema.resolve("w")
        return {(row[g_i], row[pos_i]): float(row[w_i]) for row in result.rows}
    slots = [(name, result.schema.resolve(name)) for name in case.window_names]
    out: ResultMap = {}
    for row in result.rows:
        for name, slot in slots:
            out[(row[g_i], row[pos_i], name)] = float(row[slot])
    return out


def path_engine(case: FuzzCase) -> ResultMap:
    """The full SQL stack, serial: parse -> plan -> WindowOperator."""
    return _engine_path(case)


def path_engine_parallel(case: FuzzCase) -> ResultMap:
    """The full SQL stack through the partition-parallel subsystem."""
    from repro.parallel import ExecutionConfig

    config = ExecutionConfig(jobs=2, backend="thread", chunk_size=8)
    return _engine_path(case, exec_config=config)


def path_engine_cost(case: FuzzCase) -> ResultMap:
    """The full SQL stack under the cost-based planner.

    The dataset is auto-ANALYZEd on insert, so statistics are fresh and
    the cost model actually drives the strategy/route/sharing choices;
    the planner contract says those choices must never change results.
    """
    return _engine_path(case, planner="cost")


def path_engine_paged(case: FuzzCase) -> ResultMap:
    """The full SQL stack over a v4 paged store with a tiny buffer budget.

    Exercises the out-of-core read path end to end: page encode/decode
    with CRCs, buffer-pool fault-in and eviction, and the spilling window
    plan — all of which must be invisible in the answers.
    """
    return _engine_path(case, paged=True)


# -- view-derived paths -----------------------------------------------------


def _maxoa_source(window: WindowSpec) -> Optional[WindowSpec]:
    """A view window one step narrower than the target (MaxOA direction)."""
    if window.is_cumulative:
        return cumulative()  # identity plan; still reads view storage
    if window.l + window.h < 2:
        return None  # the narrower window would be the forbidden point window
    if window.l > 0:
        return sliding(window.l - 1, window.h)
    return sliding(window.l, window.h - 1)


def _minoa_source(window: WindowSpec, aggregate: Aggregate) -> Optional[WindowSpec]:
    """A view window one step wider than the target (MinOA direction)."""
    if aggregate.name == "AVG":
        # The AVG combination derives from SUM and COUNT views, which are
        # invertible, so the wider window still works.
        pass
    elif not aggregate.invertible:
        return None  # MIN/MAX have no subtraction — MinOA does not apply
    if window.is_cumulative:
        # Cumulative target from a sliding view: MinOA's prefix tiling.
        return sliding(1, 1)
    return sliding(window.l + 1, window.h + 1)


def _rewrite_mode(case: FuzzCase, source: WindowSpec) -> str:
    """Choose the rewrite execution mode the engine supports for this combo.

    The relational patterns (which read view *storage*) exist for invertible
    aggregates — SUM/COUNT, and AVG through its SUM+COUNT combination — and
    for identity matches; MIN/MAX derivations and the sliding-to-cumulative
    prefix tiling only have the in-memory form.
    """
    if source == case.window or (source.is_cumulative and case.window.is_cumulative):
        return "relational"  # identity always has a relational form
    if case.aggregate_name in ("MIN", "MAX"):
        return "memory"
    if case.window.is_cumulative and source.is_sliding:
        return "memory"  # prefix tiling
    return "relational"


def _view_path(case: FuzzCase, source: WindowSpec, algorithm: str) -> Optional[ResultMap]:
    if case.extra_windows:
        return None  # the rewriter answers single reporting-function shapes
    from repro.faults import injector
    from repro.relational import FLOAT, INTEGER
    from repro.warehouse import DataWarehouse

    wh = DataWarehouse()
    wh.create_table("t", [("g", INTEGER), ("pos", INTEGER), ("val", FLOAT)])
    # Views materialize measures as floats: normalize NULL to its documented
    # meaning (0) before the rows reach the view's base table.
    wh.insert("t", [(g, pos, 0.0 if v is None else v) for g, pos, v in case.rows])
    over = "PARTITION BY g ORDER BY pos" if case.partitioned else "ORDER BY pos"
    aggs = ("SUM", "COUNT") if case.aggregate_name == "AVG" else (case.aggregate_name,)
    for agg in aggs:
        name = f"tk_mv_{agg.lower()}"
        wh.create_view(
            name,
            f"SELECT {'g, ' if case.partitioned else ''}pos, {agg}(val) "
            f"OVER ({over} {source.to_frame_sql()}) AS w FROM t",
        )
        injector.verify_hook(wh.view(name))  # testkit storage fault point
    select = "g, pos" if case.partitioned else "pos"
    sql = (
        f"SELECT {select}, {case.aggregate_name}(val) "
        f"OVER ({over} {case.window.to_frame_sql()}) AS w FROM t"
    )
    result = wh.query(
        sql,
        require_rewrite=True,
        algorithm=algorithm,
        mode=_rewrite_mode(case, source),
    )
    pos_i = result.schema.resolve("pos")
    w_i = result.schema.resolve("w")
    if case.partitioned:
        g_i = result.schema.resolve("g")
        return {(row[g_i], row[pos_i]): float(row[w_i]) for row in result.rows}
    # The rewritable shape may only select partition/order columns, so an
    # unpartitioned query cannot carry g along; pos is globally unique, so
    # join it back from the dataset.
    g_of = {pos: g for g, pos, _ in case.rows}
    return {(g_of[row[pos_i]], row[pos_i]): float(row[w_i]) for row in result.rows}


def path_view_maxoa(case: FuzzCase) -> Optional[ResultMap]:
    """Answer from a materialized view one step *narrower* (MaxOA, §4)."""
    source = _maxoa_source(case.window)
    if source is None:
        return None
    algorithm = "auto" if case.window.is_cumulative else "maxoa"
    if case.aggregate_name == "AVG":
        algorithm = "auto"  # the AVG combination picks per-component plans
    return _view_path(case, source, algorithm)


def path_view_minoa(case: FuzzCase) -> Optional[ResultMap]:
    """Answer from a materialized view one step *wider* (MinOA, §5)."""
    source = _minoa_source(case.window, case.aggregate)
    if source is None:
        return None
    algorithm = "auto" if case.window.is_cumulative else "minoa"
    if case.aggregate_name == "AVG":
        algorithm = "auto"
    return _view_path(case, source, algorithm)


PATHS: Dict[str, PathFn] = {
    "naive": path_naive,
    "pipelined": path_pipelined,
    "vectorized": path_vectorized,
    "engine": path_engine,
    "engine-parallel": path_engine_parallel,
    "engine-cost": path_engine_cost,
    "engine-paged": path_engine_paged,
    "view-maxoa": path_view_maxoa,
    "view-minoa": path_view_minoa,
}

DEFAULT_PATHS = tuple(PATHS)


def run_path(name: str, case: FuzzCase) -> Optional[ResultMap]:
    """Run one named path; None means "not applicable to this case"."""
    try:
        fn = PATHS[name]
    except KeyError:
        raise ValueError(f"unknown path {name!r}; expected one of {sorted(PATHS)}") from None
    return fn(case)


def run_paths(case: FuzzCase, names=DEFAULT_PATHS) -> Dict[str, ResultMap]:
    """Run several paths; inapplicable ones are omitted from the result."""
    out: Dict[str, ResultMap] = {}
    for name in names:
        result = run_path(name, case)
        if result is not None:
            out[name] = result
    return out
