"""Cross-path result comparison.

The comparison rule is :func:`repro.views.verify.values_differ` — the
*same* helper view verification uses, so "two paths agree" and "a view is
consistent" mean the same thing everywhere (NaN == NaN, relative tolerance
floored at 1).

Row-set drift (a path losing or inventing rows) is reported structurally,
mirroring how ``verify_view`` treats missing/unexpected partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.views.verify import TOLERANCE, values_differ

__all__ = ["PathDiscrepancy", "diff_results", "diff_paths"]

ResultMap = Dict[Tuple[object, ...], float]


@dataclass(frozen=True)
class PathDiscrepancy:
    """One disagreement between a path and the reference.

    Attributes:
        reference: name of the result the path was compared against.
        path: the disagreeing execution path.
        key: ``(g, pos)`` row key, or None for structural drift.
        expected: reference value (None for structural drift).
        got: path value (None for structural drift).
        detail: human-readable description.
    """

    reference: str
    path: str
    key: Optional[Tuple[object, ...]]
    expected: Optional[float]
    got: Optional[float]
    detail: str

    def to_dict(self) -> dict:
        return {
            "reference": self.reference,
            "path": self.path,
            "key": list(self.key) if self.key is not None else None,
            "expected": self.expected,
            "got": self.got,
            "detail": self.detail,
        }


def diff_results(
    reference_name: str,
    reference: ResultMap,
    path_name: str,
    result: ResultMap,
    *,
    tolerance: float = TOLERANCE,
) -> List[PathDiscrepancy]:
    """All disagreements of ``result`` against ``reference``."""
    out: List[PathDiscrepancy] = []
    for key in sorted(set(reference) - set(result), key=repr):
        out.append(PathDiscrepancy(
            reference_name, path_name, key, reference[key], None,
            f"row {key!r} missing from {path_name}"))
    for key in sorted(set(result) - set(reference), key=repr):
        out.append(PathDiscrepancy(
            reference_name, path_name, key, None, result[key],
            f"unexpected row {key!r} in {path_name}"))
    for key in sorted(set(reference) & set(result), key=repr):
        want, got = reference[key], result[key]
        if values_differ(want, got, tolerance=tolerance):
            out.append(PathDiscrepancy(
                reference_name, path_name, key, want, got,
                f"{path_name} value {got!r} != {reference_name} value {want!r}"))
    return out


def diff_paths(
    results: Dict[str, ResultMap],
    *,
    reference: str,
    tolerance: float = TOLERANCE,
) -> List[PathDiscrepancy]:
    """Compare every path in ``results`` against the named reference.

    Raises:
        KeyError: when the reference result is absent.
    """
    ref = results[reference]
    out: List[PathDiscrepancy] = []
    for name, result in results.items():
        if name == reference:
            continue
        out.extend(diff_results(reference, ref, name, result, tolerance=tolerance))
    return out
