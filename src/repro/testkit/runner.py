"""The fuzz loop behind ``repro fuzz``.

For every seed the runner generates a case, evaluates it on every
configured path plus the oracle, diffs all results, and — on failure —
shrinks the case with delta debugging and writes a replayable repro file
to the corpus.  The JSON report echoes every seed involved so a CI failure
reproduces locally from the report alone::

    repro fuzz --seeds 500 --oracle sqlite --json fuzz_report.json
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.testkit.differ import PathDiscrepancy, diff_paths
from repro.testkit.generator import CaseGenerator, FuzzCase
from repro.testkit.shrinker import shrink_case
from repro.views.verify import TOLERANCE

__all__ = ["CaseOutcome", "FuzzReport", "FuzzRunner"]


@dataclass
class CaseOutcome:
    """One failing case, as recorded in the report."""

    seed: int
    description: str
    discrepancies: List[dict]
    shrunk_rows: Optional[int] = None
    shrunk_description: Optional[str] = None
    repro_file: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "description": self.description,
            "discrepancies": self.discrepancies,
            "shrunk_rows": self.shrunk_rows,
            "shrunk_description": self.shrunk_description,
            "repro_file": self.repro_file,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (JSON-serializable)."""

    base_seed: int
    seeds: int
    paths: List[str]
    oracle: Optional[str]
    relations: List[str]
    cases_run: int = 0
    paths_skipped: Dict[str, int] = field(default_factory=dict)
    # Per-path parity: {"path": {"agree": n, "disagree": n, "skipped": n}}
    # against the run's reference — the planner-parity artifact CI uploads.
    path_agreements: Dict[str, Dict[str, int]] = field(default_factory=dict)
    failures: List[CaseOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILING SEEDS"
        skipped = sum(self.paths_skipped.values())
        return (
            f"fuzz: {self.cases_run} cases (seeds {self.base_seed}.."
            f"{self.base_seed + self.seeds - 1}), paths {'+'.join(self.paths)}"
            + (f", oracle {self.oracle}" if self.oracle else "")
            + (f", {skipped} path runs skipped" if skipped else "")
            + f", {self.elapsed:.1f}s: {status}"
        )

    def to_dict(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "seeds": self.seeds,
            "paths": self.paths,
            "oracle": self.oracle,
            "relations": self.relations,
            "cases_run": self.cases_run,
            "paths_skipped": self.paths_skipped,
            "path_agreements": self.path_agreements,
            "failing_seeds": [f.seed for f in self.failures],
            "failures": [f.to_dict() for f in self.failures],
            "elapsed": self.elapsed,
            "ok": self.ok,
        }


class FuzzRunner:
    """Differential fuzzer: generate, evaluate everywhere, diff, shrink.

    Args:
        paths: internal paths to run (:data:`repro.testkit.paths.PATHS`).
        oracle: ``"sqlite"`` or None (diff internal paths against each
            other, with ``pipelined`` as the reference).
        relations: metamorphic relations to check per case (may be empty).
        generator: case factory; defaults to :class:`CaseGenerator`.
        corpus_dir: where shrunk repro files are written (None disables).
        tolerance: value comparison tolerance (shared default with verify).
    """

    def __init__(
        self,
        *,
        paths: Optional[Sequence[str]] = None,
        oracle: Optional[str] = "sqlite",
        relations: Sequence[str] = (),
        generator: Optional[CaseGenerator] = None,
        corpus_dir: Optional[str] = None,
        tolerance: float = TOLERANCE,
        shrink: bool = True,
    ) -> None:
        from repro.testkit.corpus import DEFAULT_CORPUS_DIR
        from repro.testkit.paths import DEFAULT_PATHS, PATHS

        self.paths = list(paths if paths is not None else DEFAULT_PATHS)
        unknown = [p for p in self.paths if p not in PATHS]
        if unknown:
            raise ValueError(f"unknown paths {unknown}; expected among {sorted(PATHS)}")
        if oracle not in (None, "sqlite"):
            raise ValueError(f"unknown oracle {oracle!r}; expected 'sqlite' or None")
        if oracle is None and "pipelined" not in self.paths:
            raise ValueError("without an oracle the 'pipelined' path must be "
                             "included to serve as the reference")
        self.oracle = oracle
        self.relations = list(relations)
        self.generator = generator or CaseGenerator()
        self.corpus_dir = corpus_dir if corpus_dir is not None else DEFAULT_CORPUS_DIR
        self.tolerance = tolerance
        self.shrink = shrink
        self._skipped: Dict[str, int] = {}
        self._agreements: Dict[str, Dict[str, int]] = {}

    # -- single case --------------------------------------------------------

    def run_case(self, case: FuzzCase, *, count_skips: bool = False) -> List[PathDiscrepancy]:
        """All discrepancies for one case (paths + oracle + relations)."""
        from repro.testkit.metamorphic import run_relations
        from repro.testkit.oracle import sqlite_oracle
        from repro.testkit.paths import run_path

        results = {}
        for name in self.paths:
            result = run_path(name, case)
            if result is None:
                if count_skips:
                    self._skipped[name] = self._skipped.get(name, 0) + 1
                continue
            results[name] = result
        if self.oracle == "sqlite":
            results["sqlite"] = sqlite_oracle(case)
            reference = "sqlite"
        else:
            reference = "pipelined"
        found = diff_paths(results, reference=reference, tolerance=self.tolerance)
        if count_skips:
            disagreeing = {d.path for d in found}
            for name in results:
                if name == reference:
                    continue
                bucket = self._agreements.setdefault(
                    name, {"agree": 0, "disagree": 0}
                )
                bucket["disagree" if name in disagreeing else "agree"] += 1
        if self.relations:
            found.extend(run_relations(case, self.relations))
        return found

    def fails(self, case: FuzzCase) -> bool:
        """The shrinker's predicate: does this case still show a discrepancy?"""
        return bool(self.run_case(case))

    def check_case(self, case: FuzzCase) -> Optional[CaseOutcome]:
        """Push one externally supplied case through the full pipeline.

        Diffs the case on every path (plus oracle and relations); on failure
        it is shrunk and written to the corpus exactly as a fuzzed case would
        be.  Returns None when the case is clean.
        """
        found = self.run_case(case)
        if not found:
            return None
        return self._record_failure(case, found)

    # -- the loop -----------------------------------------------------------

    def run(
        self,
        seeds: int,
        *,
        base_seed: int = 0,
        progress=None,
    ) -> FuzzReport:
        """Fuzz ``seeds`` consecutive seeds starting at ``base_seed``.

        Args:
            progress: optional callable ``(i, case)`` invoked before each
                case (the CLI uses it for a live line).
        """
        self._skipped = {}
        self._agreements = {}
        report = FuzzReport(
            base_seed=base_seed,
            seeds=seeds,
            paths=list(self.paths),
            oracle=self.oracle,
            relations=list(self.relations),
        )
        start = time.perf_counter()
        for i in range(seeds):
            case = self.generator.case(base_seed + i)
            if progress is not None:
                progress(i, case)
            found = self.run_case(case, count_skips=True)
            report.cases_run += 1
            if found:
                report.failures.append(self._record_failure(case, found))
        report.paths_skipped = dict(sorted(self._skipped.items()))
        report.path_agreements = {
            name: {
                "agree": self._agreements.get(name, {}).get("agree", 0),
                "disagree": self._agreements.get(name, {}).get("disagree", 0),
                "skipped": self._skipped.get(name, 0),
            }
            for name in self.paths
        }
        report.elapsed = time.perf_counter() - start
        return report

    def _record_failure(
        self, case: FuzzCase, found: List[PathDiscrepancy]
    ) -> CaseOutcome:
        outcome = CaseOutcome(
            seed=case.seed,
            description=case.describe(),
            discrepancies=[d.to_dict() for d in found],
        )
        shrunk = case
        if self.shrink:
            shrunk = shrink_case(case, self.fails)
            outcome.shrunk_rows = len(shrunk.rows)
            outcome.shrunk_description = shrunk.describe()
        if self.corpus_dir:
            from repro.testkit.corpus import save_repro

            # Prefer discrepancies re-observed on the shrunk case; fall back
            # to the original ones (a randomized fault may not re-fire
            # identically on any single evaluation).
            recorded = (self.run_case(shrunk) or found) if self.shrink else found
            outcome.repro_file = save_repro(
                shrunk,
                recorded,
                directory=self.corpus_dir,
                paths=self.paths,
                oracle=self.oracle,
                relations=self.relations,
                note=f"found by fuzzing at seed {case.seed}, shrunk from "
                     f"{len(case.rows)} rows",
            )
        return outcome
