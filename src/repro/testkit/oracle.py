"""External oracle: the stdlib ``sqlite3`` module.

SQLite ships native window functions since 3.25 (2018); running the
generated query through a completely independent engine is the strongest
check we have — a bug shared by every internal path (all built on the same
window model) still disagrees with SQLite.

Semantics bridge: the sequence model has no NULLs — the engine documents
that an absent measure counts as 0 (:mod:`repro.sql.window_exec`), and its
``COUNT(col)`` is frame size, not non-NULL count.  The oracle therefore
wraps the measure in ``COALESCE(val, 0.0)``, which makes SQLite compute the
same function for every aggregate:

==========  =====================================================
aggregate    with COALESCE both engines compute
==========  =====================================================
SUM          sum over the frame, NULL contributing 0
COUNT        the clipped frame size
AVG          frame sum / frame size
MIN/MAX      extremum with NULL participating as 0
==========  =====================================================
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Tuple

from repro.testkit.generator import FuzzCase

__all__ = ["SQLITE_WINDOWS_OK", "sqlite_oracle"]

# Native window functions landed in SQLite 3.25.0.
SQLITE_WINDOWS_OK = sqlite3.sqlite_version_info >= (3, 25, 0)

ResultMap = Dict[Tuple[object, ...], float]


def sqlite_oracle(case: FuzzCase) -> ResultMap:
    """Evaluate ``case`` in an in-memory SQLite database.

    Returns ``{(g, pos): value}`` — the same key shape every internal path
    produces, so the differ can compare them directly.

    Raises:
        RuntimeError: when the linked SQLite predates window functions.
    """
    if not SQLITE_WINDOWS_OK:
        raise RuntimeError(
            "the sqlite oracle needs SQLite >= 3.25 (native window "
            f"functions); linked version is {sqlite3.sqlite_version}"
        )
    over = "PARTITION BY g ORDER BY pos" if case.partitioned else "ORDER BY pos"
    clauses = case.all_windows()
    cols = ", ".join(
        f"{agg}(COALESCE(val, 0.0)) OVER ({over} {win.to_frame_sql()})"
        for _name, agg, win in clauses
    )
    sql = f"SELECT g, pos, {cols} FROM t"
    multi = bool(case.extra_windows)
    with sqlite3.connect(":memory:") as conn:
        conn.execute("CREATE TABLE t (g INTEGER, pos INTEGER, val REAL)")
        conn.executemany("INSERT INTO t VALUES (?, ?, ?)", case.rows)
        out: ResultMap = {}
        for row in conn.execute(sql):
            g, pos = row[0], row[1]
            for (name, _agg, _win), value in zip(clauses, row[2:]):
                key = (g, pos, name) if multi else (g, pos)
                out[key] = float(value)
    return out
