"""Batches: ordered, named collections of equal-length columns.

A :class:`Batch` is the unit the batch-at-a-time operator paths exchange:
a row *range* represented column-wise.  A :class:`ChunkedBatch` is an
ordered sequence of batches presenting one logical row range — the shape a
table scan or an operator pipeline produces without ever concatenating
(concatenation is explicit and lazy via :meth:`ChunkedBatch.combine`).

Row materialization (``iter_rows``) converts through ``ndarray.tolist``
chunk-wise, so int64/float64 values come back as exactly the Python
``int``/``float`` that went in — bit-identical round-trips are what lets
the batch paths coexist with the tuple-at-a-time paths.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.columns.column import Column, kind_for_type

__all__ = ["Batch", "ChunkedBatch", "kinds_for_schema"]

Row = Tuple[Any, ...]


def kinds_for_schema(schema) -> List[str]:
    """Physical column kinds for a relational ``Schema``."""
    return [kind_for_type(c.type.name) for c in schema]


class Batch:
    """Named, equal-length columns representing a run of rows."""

    __slots__ = ("names", "columns")

    def __init__(self, names: Sequence[str], columns: Sequence[Column]) -> None:
        if len(names) != len(columns):
            raise ValueError(
                f"{len(names)} names for {len(columns)} columns"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged batch: column lengths {sorted(lengths)}")
        self.names = tuple(names)
        self.columns = tuple(columns)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        names: Sequence[str],
        rows: Sequence[Row],
        kinds: Optional[Sequence[str]] = None,
    ) -> "Batch":
        """Columnarize row tuples (``kinds`` defaults to all-``object``)."""
        if kinds is None:
            kinds = ["object"] * len(names)
        columns = [
            Column.from_values([row[i] for row in rows], kinds[i])
            for i in range(len(names))
        ]
        return cls(names, columns)

    @classmethod
    def concat(cls, batches: Sequence["Batch"]) -> "Batch":
        if not batches:
            raise ValueError("cannot concat zero batches")
        first = batches[0]
        if len(batches) == 1:
            return first
        columns = [
            Column.concat([b.columns[i] for b in batches])
            for i in range(len(first.columns))
        ]
        return cls(first.names, columns)

    # -- shape ----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, ref) -> Column:
        """Column by position or (first-match) name."""
        if isinstance(ref, int):
            return self.columns[ref]
        return self.columns[self.names.index(ref)]

    # -- transforms -----------------------------------------------------------

    def slice(self, start: int, stop: int) -> "Batch":
        """Zero-copy row-range slice."""
        return Batch(self.names, [c.slice(start, stop) for c in self.columns])

    def take(self, indices) -> "Batch":
        idx = np.asarray(indices, dtype=np.intp)
        return Batch(self.names, [c.take(idx) for c in self.columns])

    def filter(self, mask: np.ndarray) -> "Batch":
        return Batch(self.names, [c.filter(mask) for c in self.columns])

    # -- row materialization --------------------------------------------------

    def iter_rows(self) -> Iterator[Row]:
        """Row tuples of Python scalars (NULL -> ``None``)."""
        if not self.columns:
            return
        yield from zip(*(c.to_pylist() for c in self.columns))

    def to_rows(self) -> List[Row]:
        return list(self.iter_rows())

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        return sum(c.memory_bytes() for c in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch({list(self.names)}, rows={self.num_rows})"


class ChunkedBatch:
    """An ordered chunk list presenting one logical row range.

    Chunk boundaries are an execution artifact; every read API behaves as
    if the chunks were one contiguous batch.
    """

    __slots__ = ("names", "chunks")

    def __init__(self, names: Sequence[str], chunks: Sequence[Batch]) -> None:
        self.names = tuple(names)
        self.chunks = [c for c in chunks if c.num_rows]

    @classmethod
    def from_batches(cls, batches: Iterable[Batch]) -> "ChunkedBatch":
        chunks = list(batches)
        if not chunks:
            raise ValueError("cannot build a ChunkedBatch from zero batches")
        return cls(chunks[0].names, chunks)

    @property
    def num_rows(self) -> int:
        return sum(c.num_rows for c in self.chunks)

    def iter_batches(self) -> Iterator[Batch]:
        return iter(self.chunks)

    def combine(self) -> Batch:
        """One contiguous batch (copies once; the only eager concat)."""
        if not self.chunks:
            return Batch(self.names, [Column.from_values([], "object")
                                      for _ in self.names])
        return Batch.concat(self.chunks)

    def column(self, ref) -> Column:
        """One logical column across all chunks (concatenated view)."""
        if not self.chunks:
            raise ValueError("empty ChunkedBatch has no columns")
        if isinstance(ref, int):
            parts = [c.columns[ref] for c in self.chunks]
        else:
            i = self.names.index(ref)
            parts = [c.columns[i] for c in self.chunks]
        return Column.concat(parts)

    def slice(self, start: int, stop: int) -> "ChunkedBatch":
        """Zero-copy row-range slice spanning chunk boundaries."""
        out: List[Batch] = []
        offset = 0
        for chunk in self.chunks:
            n = chunk.num_rows
            lo, hi = max(start - offset, 0), min(stop - offset, n)
            if lo < hi:
                out.append(chunk.slice(lo, hi) if (lo, hi) != (0, n) else chunk)
            offset += n
            if offset >= stop:
                break
        return ChunkedBatch(self.names, out)

    def iter_rows(self) -> Iterator[Row]:
        for chunk in self.chunks:
            yield from chunk.iter_rows()

    def to_rows(self) -> List[Row]:
        return list(self.iter_rows())

    def memory_bytes(self) -> int:
        return sum(c.memory_bytes() for c in self.chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChunkedBatch({list(self.names)}, rows={self.num_rows}, chunks={len(self.chunks)})"
