"""The columnar data plane shared by every execution layer.

One chunked-batch representation — :class:`Column` (typed array +
validity mask), :class:`Batch`, and :class:`ChunkedBatch` with zero-copy
slice — underlies table storage (:mod:`repro.relational.table`), the
batch-at-a-time operator paths, the window strategies' measure
extraction, the parallel partitioner's chunk payloads, and the v3 storage
format.  See DESIGN.md §5e.
"""

from repro.columns.batch import Batch, ChunkedBatch, kinds_for_schema
from repro.columns.column import Column, ColumnBuilder, KINDS, kind_for_type

__all__ = [
    "Batch",
    "ChunkedBatch",
    "Column",
    "ColumnBuilder",
    "KINDS",
    "kind_for_type",
    "kinds_for_schema",
]
