"""Typed columns: a NumPy value buffer plus a validity (non-NULL) mask.

A :class:`Column` is the unit of the columnar data plane: an immutable
*view* of a 1-D NumPy array together with an optional boolean validity
mask (``True`` = value present, ``False`` = SQL NULL).  Slicing is
zero-copy — both the value buffer and the mask are NumPy views — which is
what lets the window strategies, the parallel partitioner, and the batch
operators hand the same measure buffer around without re-marshalling.

Four physical *kinds* cover the engine's type system:

==========  =================  ========================================
kind        NumPy dtype        engine types
==========  =================  ========================================
``int64``   ``np.int64``       INTEGER (overflowing ints fall back to
                               ``object``)
``float64`` ``np.float64``     FLOAT
``bool``    ``np.bool_``       BOOLEAN
``object``  ``object``         TEXT, DATE, and any fallback
==========  =================  ========================================

NULLs in the fixed-width kinds are stored as a sentinel (0 / 0.0 / False)
with the validity bit cleared; ``object`` columns store ``None`` directly
*and* clear the bit, so every kind answers NULL questions the same way.

:class:`ColumnBuilder` is the mutable, amortised-append companion used by
:class:`~repro.relational.table.Table` for its heap storage; its
:meth:`~ColumnBuilder.snapshot` hands out zero-copy :class:`Column` views
of the live buffer.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["Column", "ColumnBuilder", "KINDS", "kind_for_type"]

KINDS = ("int64", "float64", "bool", "object")

_DTYPES = {
    "int64": np.dtype(np.int64),
    "float64": np.dtype(np.float64),
    "bool": np.dtype(np.bool_),
    "object": np.dtype(object),
}

_FILL = {"int64": 0, "float64": 0.0, "bool": False, "object": None}

# Engine DataType.name -> physical kind.
_KIND_BY_TYPE_NAME = {
    "INTEGER": "int64",
    "FLOAT": "float64",
    "BOOLEAN": "bool",
    "TEXT": "object",
    "DATE": "object",
}


def kind_for_type(type_name: str) -> str:
    """Physical column kind for an engine type name (unknown -> object)."""
    return _KIND_BY_TYPE_NAME.get(type_name, "object")


def _kind_of_dtype(dtype: np.dtype) -> str:
    if dtype == np.int64:
        return "int64"
    if dtype == np.float64:
        return "float64"
    if dtype == np.bool_:
        return "bool"
    return "object"


class Column:
    """An immutable typed array view plus validity mask (see module doc).

    Args:
        data: 1-D NumPy array of the values (sentinel-filled at NULLs).
        validity: boolean mask, ``True`` where a value is present;
            ``None`` means every slot is valid.
    """

    __slots__ = ("data", "validity")

    def __init__(self, data: np.ndarray, validity: Optional[np.ndarray] = None) -> None:
        self.data = data
        if validity is not None and bool(validity.all()):
            validity = None  # normalize: all-valid is represented as None
        self.validity = validity

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[Any], kind: str = "object") -> "Column":
        """Build a column from Python values (``None`` = NULL).

        A fixed-width ``kind`` falls back to ``object`` when the values do
        not fit it exactly (e.g. an INTEGER overflowing int64, or a stray
        float) — never silently truncates.
        """
        n = len(values)
        validity: Optional[np.ndarray] = None
        if any(v is None for v in values):
            validity = np.fromiter(
                (v is not None for v in values), dtype=np.bool_, count=n
            )
        if kind == "object":
            data = np.empty(n, dtype=object)
            for i, v in enumerate(values):
                data[i] = v
            return cls(data, validity)
        if not _fits_kind(values, kind):
            return cls.from_values(values, "object")
        fill = _FILL[kind]
        try:
            data = np.asarray(
                [fill if v is None else v for v in values], dtype=_DTYPES[kind]
            )
        except (ValueError, TypeError, OverflowError):
            return cls.from_values(values, "object")
        return cls(data, validity)

    @classmethod
    def concat(cls, columns: Sequence["Column"]) -> "Column":
        """Concatenate columns of one kind (validity masks merged)."""
        if len(columns) == 1:
            return columns[0]
        data = np.concatenate([c.data for c in columns])
        if all(c.validity is None for c in columns):
            return cls(data)
        validity = np.concatenate(
            [
                c.validity
                if c.validity is not None
                else np.ones(len(c), dtype=np.bool_)
                for c in columns
            ]
        )
        return cls(data, validity)

    # -- shape / kind ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    @property
    def kind(self) -> str:
        return _kind_of_dtype(self.data.dtype)

    @property
    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return int(len(self.validity) - np.count_nonzero(self.validity))

    # -- element access -------------------------------------------------------

    def is_valid(self, i: int) -> bool:
        return self.validity is None or bool(self.validity[i])

    def value(self, i: int) -> Any:
        """Python value at ``i`` (``None`` for NULL)."""
        if self.validity is not None and not self.validity[i]:
            return None
        v = self.data[i]
        return v if self.data.dtype == object else v.item()

    def to_pylist(self, start: int = 0, stop: Optional[int] = None) -> List[Any]:
        """Python values of ``[start, stop)`` (NULLs as ``None``)."""
        if stop is None:
            stop = len(self.data)
        out = self.data[start:stop].tolist()
        if self.validity is not None:
            for i in np.flatnonzero(~self.validity[start:stop]):
                out[i] = None
        return out

    # -- zero-copy / bulk transforms ------------------------------------------

    def slice(self, start: int, stop: int) -> "Column":
        """Zero-copy contiguous slice (both buffers are NumPy views)."""
        return Column(
            self.data[start:stop],
            None if self.validity is None else self.validity[start:stop],
        )

    def take(self, indices) -> "Column":
        """Gather rows by position (this one copies, by construction)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Column(
            self.data[idx],
            None if self.validity is None else self.validity[idx],
        )

    def filter(self, mask: np.ndarray) -> "Column":
        return Column(
            self.data[mask],
            None if self.validity is None else self.validity[mask],
        )

    def as_float64(self, null_fill: float = 0.0) -> np.ndarray:
        """The values as a float64 array, NULLs replaced by ``null_fill``.

        Zero-copy when the column is already float64 with no NULLs — the
        path the window kernels and the parallel partitioner ride.
        """
        if self.data.dtype == np.float64 and self.validity is None:
            return self.data
        if self.data.dtype == object:
            return np.asarray(
                [null_fill if v is None else float(v) for v in self.data],
                dtype=np.float64,
            )
        out = self.data.astype(np.float64)
        if self.validity is not None:
            out[~self.validity] = null_fill
        return out

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        """Buffer bytes held (object columns add a payload estimate)."""
        total = self.data.nbytes
        if self.validity is not None:
            total += self.validity.nbytes
        if self.data.dtype == object and len(self.data):
            sample = self.data[: min(len(self.data), 256)]
            per = sum(0 if v is None else sys.getsizeof(v) for v in sample) / len(sample)
            total += int(per * len(self.data))
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column(kind={self.kind}, len={len(self)}, nulls={self.null_count})"


def _fits_kind(values: Sequence[Any], kind: str) -> bool:
    """Whether every non-NULL value belongs in ``kind`` without coercion."""
    if kind == "int64":
        lo, hi = -(2**63), 2**63 - 1
        return all(
            v is None
            or (isinstance(v, int) and not isinstance(v, bool) and lo <= v <= hi)
            for v in values
        )
    if kind == "float64":
        return all(
            v is None
            or (isinstance(v, (int, float)) and not isinstance(v, bool))
            for v in values
        )
    if kind == "bool":
        return all(v is None or isinstance(v, bool) for v in values)
    return True


class ColumnBuilder:
    """Mutable, amortised-append column storage (capacity doubling).

    The table's heap uses one builder per column; :meth:`snapshot` exposes
    the live prefix as a zero-copy :class:`Column` view.  Appending within
    spare capacity does not move the buffer, so existing snapshots stay
    valid; a capacity grow reallocates, leaving old snapshots on the old
    buffer (a consistent frozen copy).
    """

    __slots__ = ("kind", "_data", "_validity", "_size")

    _INITIAL_CAPACITY = 16

    def __init__(self, kind: str) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown column kind {kind!r}")
        self.kind = kind
        self._data = np.empty(self._INITIAL_CAPACITY, dtype=_DTYPES[kind])
        self._validity = np.ones(self._INITIAL_CAPACITY, dtype=np.bool_)
        self._size = 0

    @classmethod
    def for_type(cls, type_name: str) -> "ColumnBuilder":
        return cls(kind_for_type(type_name))

    def __len__(self) -> int:
        return self._size

    # -- mutation -------------------------------------------------------------

    def _grow_to(self, capacity: int) -> None:
        new_data = np.empty(capacity, dtype=self._data.dtype)
        new_data[: self._size] = self._data[: self._size]
        new_validity = np.ones(capacity, dtype=np.bool_)
        new_validity[: self._size] = self._validity[: self._size]
        self._data, self._validity = new_data, new_validity

    def _promote_to_object(self) -> None:
        data = np.empty(len(self._data), dtype=object)
        for i in range(self._size):
            data[i] = self._data[i].item() if self._validity[i] else None
        self._data = data
        self.kind = "object"

    def _store(self, slot: int, value: Any) -> None:
        if value is None:
            self._data[slot] = _FILL[self.kind]
            self._validity[slot] = False
            return
        if self.kind != "object":
            try:
                self._data[slot] = value
            except (OverflowError, ValueError, TypeError):
                # e.g. an INTEGER beyond int64: keep exact values, lose the
                # fixed-width representation for this column only.
                self._promote_to_object()
                self._data[slot] = value
        else:
            self._data[slot] = value
        self._validity[slot] = True

    def append(self, value: Any) -> None:
        if self._size == len(self._data):
            self._grow_to(max(self._INITIAL_CAPACITY, 2 * self._size))
        self._store(self._size, value)
        self._size += 1

    def set(self, slot: int, value: Any) -> None:
        if not 0 <= slot < self._size:
            raise IndexError(f"slot {slot} out of range (size {self._size})")
        self._store(slot, value)

    def rebuild(self, values: Iterable[Any]) -> None:
        """Replace all contents (positional deletes renumber slots)."""
        self._data = np.empty(self._INITIAL_CAPACITY, dtype=_DTYPES[self.kind])
        self._validity = np.ones(self._INITIAL_CAPACITY, dtype=np.bool_)
        self._size = 0
        for value in values:
            self.append(value)

    def clear(self) -> None:
        self._size = 0

    def copy(self) -> "ColumnBuilder":
        """An independent builder with the same contents.

        The copy-on-write primitive of the concurrent serving tier: a
        writer clones the builders of a table it is about to mutate so
        that readers pinned to an older epoch keep seeing the original
        buffers untouched.
        """
        out = ColumnBuilder.__new__(ColumnBuilder)
        out.kind = self.kind
        out._data = self._data[: self._size].copy()
        out._validity = self._validity[: self._size].copy()
        out._size = self._size
        return out

    # -- reads ----------------------------------------------------------------

    def get(self, slot: int) -> Any:
        if not 0 <= slot < self._size:
            raise IndexError(f"slot {slot} out of range (size {self._size})")
        if not self._validity[slot]:
            return None
        v = self._data[slot]
        return v if self._data.dtype == object else v.item()

    def pylist(self, start: int = 0, stop: Optional[int] = None) -> List[Any]:
        if stop is None or stop > self._size:
            stop = self._size
        return self.snapshot().to_pylist(start, stop)

    def snapshot(self) -> Column:
        """A zero-copy :class:`Column` view of the current contents."""
        validity = self._validity[: self._size]
        return Column(
            self._data[: self._size],
            None if bool(validity.all()) else validity,
        )

    def memory_bytes(self) -> int:
        total = self._data.nbytes + self._validity.nbytes
        if self._data.dtype == object and self._size:
            sample = self._data[: min(self._size, 256)]
            per = sum(
                0 if v is None else sys.getsizeof(v) for v in sample
            ) / len(sample)
            total += int(per * self._size)
        return total
