"""Process-wide backend health registry for self-healing query routing.

When an :class:`~repro.parallel.executor.ExecutorPool` observes a broken
executor (``BrokenProcessPool`` after a worker crash, or a pool abandoned
on timeout exhaustion), it records the incident here.  The SQL planner
consults the registry before wiring a parallel backend into a plan and
**downgrades to serial execution** while the backend is marked broken —
so after one crash, subsequent queries skip the doomed backend instead of
paying the crash-and-fallback cost on every statement.

The registry is deliberately simple: a counted set with a lock.  Calling
:func:`reset` (e.g. after an operator fixed the environment, or in test
teardown) re-enables the backend; :func:`mark_healthy` clears one backend.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = [
    "incidents",
    "is_broken",
    "last_reason",
    "mark_broken",
    "mark_healthy",
    "reset",
]

_lock = threading.Lock()
_incidents: Dict[str, int] = {}
_reasons: Dict[str, str] = {}


def mark_broken(backend: str, reason: str = "") -> None:
    """Record a broken-executor incident for ``backend``."""
    with _lock:
        _incidents[backend] = _incidents.get(backend, 0) + 1
        _reasons[backend] = reason


def mark_healthy(backend: str) -> None:
    """Forget incidents for one backend."""
    with _lock:
        _incidents.pop(backend, None)
        _reasons.pop(backend, None)


def is_broken(backend: str) -> bool:
    """Has ``backend`` a recorded, un-reset incident?"""
    with _lock:
        return _incidents.get(backend, 0) > 0


def incidents(backend: Optional[str] = None) -> int:
    """Incident count for one backend, or the total."""
    with _lock:
        if backend is not None:
            return _incidents.get(backend, 0)
        return sum(_incidents.values())


def last_reason(backend: str) -> str:
    """The reason recorded with the most recent incident (or '')."""
    with _lock:
        return _reasons.get(backend, "")


def reset() -> None:
    """Forget every incident (all backends become routable again)."""
    with _lock:
        _incidents.clear()
        _reasons.clear()
