"""Chunked (partition-parallel) sequence computation.

:func:`compute_parallel` is the parallel counterpart of
:func:`repro.core.compute.compute` — same inputs, same outputs, evaluated
as independent chunks on an :class:`~repro.parallel.executor.ExecutorPool`:

1. the :class:`~repro.parallel.partitioner.Partitioner` cuts the sequence
   into chunks whose payloads carry the ``l``-row header / ``h``-row
   trailer overlap (sliding windows) or plain raw slices (cumulative);
2. every chunk is evaluated independently by a worker running the scalar
   pipelined or NumPy vectorized kernel over its padded payload;
3. the merge concatenates core slices **in chunk order** — and, for
   cumulative windows, folds the carry-in prefix state (running SUM /
   COUNT offset / extremum of all earlier chunks) into each chunk's local
   values.

Results agree with the serial strategies: bit-identical for integer-valued
data (every intermediate is exactly representable), and equal up to
floating-point summation order otherwise — the same caveat that already
distinguishes the vectorized from the pipelined serial kernel.

:func:`compute_grouped_parallel` schedules many partitions' chunks through
one pool (parallelism *across* PARTITION BY groups and *within* long
groups at once); :func:`evaluate_positions` batch-evaluates explicit
window values for scattered positions — the §2.3 maintenance band
recomputation runs through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM, Aggregate, by_name
from repro.core.sequence import SequenceSpec
from repro.core.window import WindowSpec
from repro.errors import ParallelError, SequenceError
from repro.parallel.config import ExecutionConfig
from repro.parallel.executor import ExecutorPool
from repro.parallel.partitioner import Chunk, Partitioner

__all__ = ["compute_parallel", "compute_grouped_parallel", "evaluate_positions"]


# ---------------------------------------------------------------------------
# Worker-side task evaluation (module level so it pickles to processes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class _ChunkTask:
    """Picklable unit of work: one chunk plus everything a worker needs.

    ``window_kind``/``l``/``h`` and ``aggregate`` travel as plain values so
    the task ships to process workers without closures.  For cumulative AVG
    the worker computes the SUM numerator (the merge divides by the global
    position), recorded in ``worker_aggregate``.
    """

    payload: np.ndarray
    offset: int
    core_len: int
    window_kind: str
    l: int
    h: int
    worker_aggregate: str
    kernel: str
    group: int
    index: int


def _task_window(task: _ChunkTask) -> WindowSpec:
    if task.window_kind == "cumulative":
        return WindowSpec.cumulative()
    return WindowSpec.sliding(task.l, task.h, allow_point=True)


def _run_chunk(task: _ChunkTask) -> np.ndarray:
    """Evaluate one chunk; returns the chunk-local value array.

    Sliding windows: the kernel runs over the padded payload (header +
    core + trailer) and the core slice is cut out — clipping at the payload
    boundary coincides with the sequence-boundary clipping of the serial
    algorithm exactly where the padding was clipped, and is absent
    everywhere else.

    Cumulative windows: the kernel's result over the bare payload *is* the
    local cumulative aggregate; the caller folds in the carry.
    """
    window = _task_window(task)
    aggregate = by_name(task.worker_aggregate)
    if task.kernel == "pipelined":
        from repro.core.compute import compute_pipelined

        values = np.asarray(
            compute_pipelined(task.payload.tolist(), window, aggregate),
            dtype=np.float64,
        )
    else:
        from repro.core.vectorized import compute_vectorized

        values = np.asarray(
            compute_vectorized(task.payload, window, aggregate), dtype=np.float64
        )
    if window.is_cumulative:
        return values
    return values[task.offset : task.offset + task.core_len]


def _make_task(chunk: Chunk, window: WindowSpec, aggregate: Aggregate, kernel: str) -> _ChunkTask:
    worker_agg = aggregate
    if window.is_cumulative and aggregate is AVG:
        worker_agg = SUM  # merge divides by the global position
    return _ChunkTask(
        payload=chunk.payload,
        offset=chunk.offset,
        core_len=chunk.core_len,
        window_kind=window.kind,
        l=window.l,
        h=window.h,
        worker_aggregate=worker_agg.name,
        kernel="pipelined" if kernel == "pipelined" else "vectorized",
        group=chunk.group,
        index=chunk.index,
    )


# ---------------------------------------------------------------------------
# Ordered merge
# ---------------------------------------------------------------------------


def _merge_sliding(parts: Sequence[np.ndarray]) -> List[float]:
    return np.concatenate(parts).tolist()


def _merge_cumulative(
    parts: Sequence[np.ndarray], aggregate: Aggregate
) -> List[float]:
    """Fold carry-in prefix state through the ordered chunk results."""
    out: List[np.ndarray] = []
    if aggregate in (SUM, AVG, COUNT):
        carry = 0.0  # running SUM (or COUNT) of all earlier chunks
        offset = 0  # positions produced by earlier chunks
        for local in parts:
            m = len(local)
            absolute = local + carry
            if aggregate is AVG:
                absolute = absolute / np.arange(offset + 1, offset + m + 1)
            out.append(absolute)
            carry += float(local[-1])
            offset += m
    elif aggregate in (MIN, MAX):
        fold = np.minimum if aggregate is MIN else np.maximum
        carry = np.inf if aggregate is MIN else -np.inf
        for local in parts:
            out.append(fold(local, carry))
            carry = float(fold(carry, local[-1]))
    else:  # pragma: no cover - aggregates are a closed set
        raise ParallelError(f"no cumulative merge for {aggregate.name}")
    return np.concatenate(out).tolist()


def _merge_group(
    parts: Sequence[np.ndarray], window: WindowSpec, aggregate: Aggregate
) -> List[float]:
    if window.is_cumulative:
        return _merge_cumulative(parts, aggregate)
    return _merge_sliding(parts)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def compute_parallel(
    raw: Sequence[float],
    window: WindowSpec,
    aggregate: Aggregate = SUM,
    config: Optional[ExecutionConfig] = None,
    *,
    pool: Optional[ExecutorPool] = None,
) -> List[float]:
    """Compute ``[x̃_1 .. x̃_n]`` with chunked, optionally parallel execution.

    Args:
        config: execution knobs; defaults to the serial single-chunk
            configuration (then this is just the kernel on one chunk).
        pool: reuse an existing :class:`ExecutorPool` (one-shot pools are
            created — and torn down — per call otherwise).

    Raises:
        SequenceError: on empty input (the strategies' shared contract).
    """
    return compute_grouped_parallel([raw], window, aggregate, config, pool=pool)[0]


def compute_grouped_parallel(
    groups: Sequence[Sequence[float]],
    window: WindowSpec,
    aggregate: Aggregate = SUM,
    config: Optional[ExecutionConfig] = None,
    *,
    pool: Optional[ExecutorPool] = None,
) -> List[List[float]]:
    """Compute one sequence per PARTITION BY group through a single pool.

    All groups' chunks enter one ordered ``map``, so many short partitions
    saturate the workers just as well as one long partition.  Returns the
    per-group value lists in input order.

    Raises:
        SequenceError: when any group is empty.
    """
    cfg = config or ExecutionConfig()
    chunks = Partitioner(cfg).plan(groups, window)
    tasks = [_make_task(c, window, aggregate, _resolve_kernel(cfg)) for c in chunks]
    if pool is not None:
        results = pool.map(_run_chunk, tasks)
    else:
        with ExecutorPool(cfg) as own:
            results = own.map(_run_chunk, tasks)
    by_group: Dict[int, List[Tuple[int, np.ndarray]]] = {}
    for chunk, values in zip(chunks, results):
        by_group.setdefault(chunk.group, []).append((chunk.index, values))
    out: List[List[float]] = []
    for g in range(len(groups)):
        parts = [v for _, v in sorted(by_group[g], key=lambda item: item[0])]
        out.append(_merge_group(parts, window, aggregate))
    return out


def _resolve_kernel(config: ExecutionConfig) -> str:
    return "vectorized" if config.kernel == "auto" else config.kernel


# ---------------------------------------------------------------------------
# Scattered-position (maintenance band) evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class _BandTask:
    """Explicit evaluation of a batch of positions over shared raw data."""

    raw: np.ndarray
    window_kind: str
    l: int
    h: int
    aggregate: str
    positions: Tuple[int, ...]


def _run_band(task: _BandTask) -> List[float]:
    window = (
        WindowSpec.cumulative()
        if task.window_kind == "cumulative"
        else WindowSpec.sliding(task.l, task.h, allow_point=True)
    )
    spec = SequenceSpec(window, by_name(task.aggregate))
    raw = task.raw
    return [spec.value_at(raw, k) for k in task.positions]


def evaluate_positions(
    raw: Sequence[float],
    window: WindowSpec,
    aggregate: Aggregate,
    positions: Sequence[int],
    config: Optional[ExecutionConfig] = None,
    *,
    pool: Optional[ExecutorPool] = None,
) -> List[float]:
    """Explicit-form values ``x̃_k`` for scattered positions, pool-assisted.

    The §2.3 incremental-maintenance rules recompute a band of up to
    ``w = l + h + 1`` values on MIN/MAX fallbacks; for wide windows that
    band is the dominant cost, and its positions are independent — so they
    are split across the pool.  Positions may lie in the header/trailer;
    evaluation clips to ``1..n`` exactly like
    :meth:`~repro.core.sequence.SequenceSpec.value_at`.
    """
    cfg = config or ExecutionConfig()
    if not positions:
        return []
    values = np.asarray(raw, dtype=np.float64)
    jobs = cfg.resolved_jobs if cfg.is_parallel else 1
    n_batches = min(max(jobs, 1), len(positions)) if cfg.is_parallel else 1
    batches = [list(positions)[i::n_batches] for i in range(n_batches)]
    tasks = [
        _BandTask(values, window.kind, window.l, window.h, aggregate.name, tuple(b))
        for b in batches
        if b
    ]
    if pool is not None:
        results = pool.map(_run_band, tasks)
    else:
        with ExecutorPool(cfg) as own:
            results = own.map(_run_band, tasks)
    out: Dict[int, float] = {}
    for task, vals in zip(tasks, results):
        for k, v in zip(task.positions, vals):
            out[k] = v
    return [out[k] for k in positions]
