"""Splitting sequence work into independently computable chunks.

The paper's *complete sequence* (section 3.2) materializes a header
(positions ``1-h .. 0``) and trailer (``n+1 .. n+l``) so a consumer can
derive values without going back to raw data.  The same idea makes chunked
evaluation embarrassingly parallel: a segment of a sliding-window sequence
``[start .. stop]`` is fully determined by the raw values
``x_{start-l} .. x_{stop+h}`` — i.e. the segment's raw data plus an
``l``-row *header* and ``h``-row *trailer* overlap borrowed from its
neighbours (clipped at the sequence boundaries, exactly where the serial
algorithm clips too).  Chunks therefore carry a padded raw slice and can be
evaluated in any order; an ordered concatenation of their core values
reproduces the serial result.

Cumulative windows have no finite window, so chunks cannot be made fully
independent; instead each chunk computes a *local* cumulative aggregate
over its own raw slice and the merge step folds a **carry-in prefix state**
(the running SUM / COUNT / extremum of all earlier chunks) into the local
values — one O(chunks) sequential pass over already-reduced totals.

:class:`Partitioner` additionally plans across PARTITION BY groups: every
group contributes its own chunk list, so short partitions parallelize
across groups while a single long partition still splits within itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.window import WindowSpec
from repro.errors import ParallelError, SequenceError
from repro.parallel.config import ExecutionConfig

__all__ = ["Chunk", "Partitioner"]


@dataclass(frozen=True, eq=False)
class Chunk:
    """One independently computable slice of a sequence computation.

    Attributes:
        group: index of the PARTITION BY group this chunk belongs to.
        index: chunk position within its group (merge order).
        start: first core sequence position covered (1-based, inclusive).
        stop: last core sequence position covered (inclusive).
        payload: NumPy float64 array of the raw values
            ``x_{max(1, start-l)} .. x_{min(n, stop+h)}`` for sliding
            windows, or exactly ``x_start .. x_stop`` for cumulative ones.
        offset: index into ``payload`` where the core slice begins (the
            number of header rows actually present after boundary clipping).
    """

    group: int
    index: int
    start: int
    stop: int
    payload: np.ndarray
    offset: int

    @property
    def core_len(self) -> int:
        """Number of core sequence positions this chunk produces."""
        return self.stop - self.start + 1


class Partitioner:
    """Plans chunk lists for one or many partitions of sequence work.

    The chunk count balances two forces: enough chunks to occupy
    ``config.resolved_jobs`` workers, but no chunk smaller than
    ``config.chunk_size`` core positions (header/trailer padding is repeated
    per chunk, so tiny chunks waste work).  Callers may force finer chunks
    by passing a smaller ``chunk_size`` — correctness never depends on the
    chunk size, only speed does (verified down to chunks smaller than the
    window ``l + h + 1``).
    """

    def __init__(self, config: ExecutionConfig) -> None:
        self.config = config

    # -- single sequence ---------------------------------------------------------

    def split(
        self, raw: Sequence[float], window: WindowSpec, *, group: int = 0
    ) -> List[Chunk]:
        """Cut one raw sequence into overlap-carrying chunks.

        Raises:
            SequenceError: on empty input (aligned with the computation
                strategies' empty-input contract).
        """
        n = len(raw)
        if n == 0:
            raise SequenceError("cannot partition an empty raw sequence")
        if hasattr(raw, "as_float64"):
            # A columns.Column: chunk payloads become zero-copy views of
            # its buffer (no per-chunk row-list copies).
            values = raw.as_float64(0.0)
        else:
            values = np.asarray(raw, dtype=np.float64)
        n_chunks = self._chunk_count(n)
        bounds = _even_bounds(n, n_chunks)
        return [
            self._make_chunk(values, window, group, i, start, stop)
            for i, (start, stop) in enumerate(bounds)
        ]

    # -- many partitions ---------------------------------------------------------

    def plan(
        self,
        partitions: Sequence[Sequence[float]],
        window: WindowSpec,
    ) -> List[Chunk]:
        """Chunk every PARTITION BY group into one flat, mergeable task list.

        Group ``g``'s chunks carry ``group=g``; :func:`merge_chunks` in
        :mod:`repro.parallel.compute` reassembles per-group results from the
        flat list regardless of completion order.
        """
        chunks: List[Chunk] = []
        for g, raw in enumerate(partitions):
            chunks.extend(self.split(raw, window, group=g))
        return chunks

    # -- internals ---------------------------------------------------------------

    def _chunk_count(self, n: int) -> int:
        by_size = n // self.config.chunk_size
        if by_size <= 1:
            return 1
        if self.config.is_parallel:
            # Cap the split: padding is repeated per chunk, so there is no
            # point cutting finer than the pool can keep busy.
            return min(by_size, self.config.resolved_jobs * _CHUNKS_PER_JOB)
        return by_size

    def _make_chunk(
        self,
        values: np.ndarray,
        window: WindowSpec,
        group: int,
        index: int,
        start: int,
        stop: int,
    ) -> Chunk:
        n = len(values)
        if window.is_cumulative:
            # No finite overlap exists; the merge carries prefix state.
            payload = values[start - 1 : stop]
            return Chunk(group, index, start, stop, payload, 0)
        pad_start = max(start - window.l, 1)
        pad_stop = min(stop + window.h, n)
        payload = values[pad_start - 1 : pad_stop]
        return Chunk(group, index, start, stop, payload, start - pad_start)


# How many chunks to aim for per worker: a little oversplitting smooths out
# uneven chunk runtimes without repeating much overlap padding.
_CHUNKS_PER_JOB = 4


def _even_bounds(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split positions ``1..n`` into ``n_chunks`` contiguous non-empty runs."""
    if not 1 <= n_chunks <= n:
        raise ParallelError(f"cannot cut {n} positions into {n_chunks} chunks")
    base, extra = divmod(n, n_chunks)
    bounds: List[Tuple[int, int]] = []
    start = 1
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size - 1))
        start += size
    return bounds
