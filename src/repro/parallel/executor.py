"""Worker pools for chunked sequence execution.

:class:`ExecutorPool` is a thin, uniform facade over three backends:

* ``serial`` — a plain in-process ``map`` (the reference semantics; also
  used as the fallback whenever a pool cannot help);
* ``thread`` — ``concurrent.futures.ThreadPoolExecutor``; effective because
  the chunk kernels are NumPy bulk operations that release the GIL;
* ``process`` — ``concurrent.futures.ProcessPoolExecutor``; chunk payloads
  are NumPy float64 arrays, which pickle compactly, and the task function
  is a module-level callable so it ships to workers on every platform
  (fork *and* spawn start methods).

``map`` always returns results **in submission order**, independent of
completion order — the ordered merge that makes chunked results
reproducible is built on this guarantee.  Pools are context managers;
:func:`ExecutorPool.map` may also be used one-shot, creating and tearing
down the OS resources per call.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.errors import ParallelError
from repro.parallel.config import ExecutionConfig

__all__ = ["ExecutorPool"]


class ExecutorPool:
    """Ordered map over a serial, thread, or process worker pool."""

    def __init__(self, config: Optional[ExecutionConfig] = None) -> None:
        self.config = config or ExecutionConfig()
        self._executor = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    def _ensure_executor(self):
        if self._closed:
            raise ParallelError("pool is closed")
        if self._executor is None:
            jobs = self.config.resolved_jobs
            if self.config.backend == "thread":
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=jobs, thread_name_prefix="repro-par"
                )
            elif self.config.backend == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=jobs)
            else:  # pragma: no cover - guarded by callers
                raise ParallelError(
                    f"backend {self.config.backend!r} has no executor"
                )
        return self._executor

    # -- execution ---------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in submission order.

        With the serial backend (or a single worker) this is a plain loop on
        the calling thread; otherwise items are dispatched to the pool.  A
        worker exception propagates to the caller unchanged.
        """
        items = list(items)
        if (
            self.config.backend == "serial"
            or self.config.resolved_jobs <= 1
            or len(items) <= 1
        ):
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        return list(executor.map(fn, items))
