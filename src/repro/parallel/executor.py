"""Worker pools for chunked sequence execution.

:class:`ExecutorPool` is a thin, uniform facade over three backends:

* ``serial`` — a plain in-process ``map`` (the reference semantics; also
  used as the fallback whenever a pool cannot help);
* ``thread`` — ``concurrent.futures.ThreadPoolExecutor``; effective because
  the chunk kernels are NumPy bulk operations that release the GIL;
* ``process`` — ``concurrent.futures.ProcessPoolExecutor``; chunk payloads
  are NumPy float64 arrays, which pickle compactly, and the task function
  is a module-level callable so it ships to workers on every platform
  (fork *and* spawn start methods).

``map`` always returns results **in submission order**, independent of
completion order — the ordered merge that makes chunked results
reproducible is built on this guarantee.  Pools are context managers;
:func:`ExecutorPool.map` may also be used one-shot, and then tears the OS
resources down when the call returns (success *or* failure).

Robustness (the self-healing layer):

* every task gets a per-task result deadline (``config.task_timeout``);
* a failed or timed-out task is re-submitted up to ``config.max_retries``
  times with exponential backoff;
* a broken executor (``BrokenProcessPool`` after a worker crash) or retry
  exhaustion degrades to **in-process serial execution** of the remaining
  work when ``config.fallback`` is set — correct answers at reduced
  speed — and records the incident in :mod:`repro.parallel.health` so the
  planner can route subsequent queries away from the broken backend;
* everything is counted in the pool's :class:`ExecutionStats`
  (``tasks_retried`` / ``worker_failures`` / ``serial_fallbacks``).

Fault injection (:mod:`repro.faults`) hooks in at task granularity: an
armed ``worker_crash``/``worker_hang`` spec wraps the doomed task in a
picklable :class:`~repro.faults.injector.FaultedTask`.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import ParallelError, TaskTimeoutError
from repro.parallel import health
from repro.parallel.config import ExecutionConfig
from repro.relational.stats import ExecutionStats

__all__ = ["ExecutorPool"]


class _PoolBroken(Exception):
    """Internal: the underlying executor died; switch to serial."""


def _plain(value: Any) -> Any:
    """Pickle/JSON-safe projection of one span attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class _TaskSpans:
    """Picklable envelope: a task's result plus the spans it recorded.

    Only process-pool children wrap their result — the parent unwraps in
    :meth:`ExecutorPool._absorb`, folding the span dicts into its own
    tracer so the cross-process tree stays connected.
    """

    __slots__ = ("result", "spans")

    def __init__(self, result: Any, spans: List[dict]) -> None:
        self.result = result
        self.spans = spans


class _TracedTask:
    """Picklable task wrapper carrying the spawning span's trace context.

    In-process execution (thread backend, the serial fallback, a retry on
    the calling thread) opens a ``parallel.task`` span against the shared
    tracer, explicitly parented to the captured context — worker threads
    have their own empty span stacks, so without this every task span
    would be an orphan root.  In a process-pool child (fork *or* spawn)
    the global tracer is not the parent's object, so the task records into
    a private tracer and ships its spans back inside a :class:`_TaskSpans`
    envelope.
    """

    __slots__ = ("fn", "context")

    def __init__(self, fn: Callable[[Any], Any], context: dict) -> None:
        self.fn = fn
        self.context = context

    def __call__(self, item: Any) -> Any:
        import multiprocessing

        from repro.obs import runtime
        from repro.obs.context import TraceContext

        ctx = TraceContext.from_dict(self.context)
        if multiprocessing.parent_process() is None:
            tracer = runtime.get_tracer()
            if not tracer.enabled:  # pragma: no cover - defensive
                return self.fn(item)
            with tracer.span("parallel.task", parent_context=ctx):
                return self.fn(item)
        from repro.obs.trace import Tracer

        child = Tracer()
        with runtime.use(tracer=child):
            with child.span("parallel.task", parent_context=ctx):
                result = self.fn(item)
        docs = []
        for span in child.spans():
            doc = span.to_dict()
            doc["attributes"] = {
                str(k): _plain(v) for k, v in doc["attributes"].items()
            }
            doc["events"] = [
                {
                    "name": e["name"], "at": e["at"],
                    "attributes": {
                        str(k): _plain(v) for k, v in e["attributes"].items()
                    },
                }
                for e in doc["events"]
            ]
            docs.append(doc)
        return _TaskSpans(result, docs)


class ExecutorPool:
    """Ordered map over a serial, thread, or process worker pool."""

    def __init__(
        self,
        config: Optional[ExecutionConfig] = None,
        *,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        self.config = config or ExecutionConfig()
        # Ownership decides metric publication: a pool that created its own
        # stats block publishes it to the global registry exactly once on
        # close(); a shared block is published by whoever created it
        # (Database.run), never here.  Before this rule, standalone pools —
        # e.g. the ones compute_grouped_parallel spins up for view refresh
        # and maintenance bands — silently dropped their retry/failure/
        # fallback counters on close.
        self._owns_stats = stats is None
        self.stats = stats if stats is not None else ExecutionStats()
        self._published = False
        self._executor = None
        self._closed = False
        self._managed = False  # True while used as a context manager

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "ExecutorPool":
        self._managed = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._managed = False
        self.close()

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        self._release_executor()
        self._closed = True
        # Publish owned counters once, even though close() may run twice
        # (a finally block plus the context-manager exit) — republishing
        # would double-count every retry/failure/fallback.
        if self._owns_stats and not self._published:
            self._published = True
            from repro.obs import runtime

            runtime.publish_stats(self.stats)

    def _release_executor(self, *, wait: bool = True) -> None:
        """Tear down the OS resources but keep the pool usable."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None

    def _ensure_executor(self):
        if self._closed:
            raise ParallelError("pool is closed")
        if self._executor is None:
            jobs = self.config.resolved_jobs
            if self.config.backend == "thread":
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=jobs, thread_name_prefix="repro-par"
                )
            elif self.config.backend == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=jobs)
            else:  # pragma: no cover - guarded by callers
                raise ParallelError(
                    f"backend {self.config.backend!r} has no executor"
                )
        return self._executor

    # -- execution ---------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in submission order.

        With the serial backend (or a single worker/item) this is a plain
        loop on the calling thread; otherwise items are dispatched to the
        pool with per-task timeout, bounded retry and — when configured —
        automatic serial fallback.  A genuine task exception (one that
        survives the retry budget and the serial re-run) propagates to the
        caller unchanged.
        """
        from repro.obs import runtime

        items = list(items)
        if self._closed:
            raise ParallelError("pool is closed")
        if (
            self.config.backend == "serial"
            or self.config.resolved_jobs <= 1
            or len(items) <= 1
        ):
            return [fn(item) for item in items]
        runtime.get_registry().counter(
            "repro_parallel_maps_total",
            {"backend": self.config.backend},
            help="Pool map calls dispatched to a worker backend",
        ).inc()
        tracer = runtime.get_tracer()
        with tracer.span(
            "parallel.map", backend=self.config.backend,
            jobs=self.config.resolved_jobs, tasks=len(items),
        ) as span:
            ctx = span.context()
            if ctx is not None and ctx.sampled:
                # Every task — pooled, retried, or serial-fallback — runs
                # under this span's context, so worker-side spans never
                # orphan (process children ship theirs back, see _absorb).
                fn = _TracedTask(fn, ctx.to_dict())
            try:
                return self._map_pool(fn, items)
            finally:
                # One-shot use (no context manager) must not leak the executor.
                if not self._managed:
                    self._release_executor()

    def _map_pool(self, fn: Callable[[Any], Any], items: List[Any]) -> List[Any]:
        from repro.faults import injector

        task_faults = injector.take_task_faults(len(items))
        tasks: List[Callable[[Any], Any]] = [
            injector.FaultedTask(fn, spec.kind, spec.seconds)
            if (spec := task_faults.get(i)) is not None
            else fn
            for i in range(len(items))
        ]
        n = len(items)
        results: List[Any] = [None] * n
        pending = list(range(n))
        try:
            executor = self._ensure_executor()
            futures = {i: executor.submit(tasks[i], items[i]) for i in pending}
            last_error: Optional[BaseException] = None
            for attempt in range(self.config.max_retries + 1):
                pending, last_error = self._collect(futures, pending, results)
                if not pending:
                    return results
                if attempt < self.config.max_retries:
                    if self.config.retry_backoff:
                        time.sleep(self.config.retry_backoff * (2 ** attempt))
                    self.stats.bump(tasks_retried=len(pending))
                    executor = self._ensure_executor()
                    # Each resubmission is a fresh eligible task event: an
                    # exhausted spec leaves the retry clean, a persistent
                    # one (times > 1) keeps firing until the retry budget
                    # runs out and the serial fallback takes over.
                    retry_faults = injector.take_task_faults(len(pending))
                    for slot, i in enumerate(pending):
                        task = (
                            injector.FaultedTask(fn, spec.kind, spec.seconds)
                            if (spec := retry_faults.get(slot)) is not None
                            else fn
                        )
                        futures[i] = executor.submit(task, items[i])
            # Retry budget exhausted.
            if not self.config.fallback:
                raise ParallelError(
                    f"{len(pending)} task(s) still failing after "
                    f"{self.config.max_retries} retries"
                ) from last_error
            # Hangs indict the backend (route future queries away from
            # it); a deterministic task exception does not.
            if isinstance(last_error, TaskTimeoutError):
                health.mark_broken(self.config.backend, str(last_error))
            self._release_executor(wait=False)
        except _PoolBroken:
            if not self.config.fallback:
                raise ParallelError(
                    f"{self.config.backend} pool broke and fallback is disabled"
                ) from None
        # Serial fallback: the calling thread computes whatever the pool
        # did not deliver, with the *bare* task function — injected task
        # faults never fire on the degraded path.
        self.stats.bump(serial_fallbacks=1)
        from repro.obs import runtime

        runtime.event(
            "parallel.serial_fallback",
            backend=self.config.backend, remaining=len(pending),
        )
        for i in pending:
            results[i] = self._absorb(fn(items[i]))
        return results

    def _absorb(self, value: Any) -> Any:
        """Unwrap a :class:`_TaskSpans` envelope, folding the child-process
        spans into the active tracer; pass every other value through."""
        if isinstance(value, _TaskSpans):
            from repro.obs import runtime

            runtime.get_tracer().ingest(value.spans)
            return value.result
        return value

    def _collect(self, futures, pending, results):
        """Wait for pending futures in submission order; return the indexes
        that failed this round plus the last exception seen."""
        from repro.obs import runtime

        task_seconds = runtime.get_registry().histogram(
            "repro_parallel_task_seconds",
            {"backend": self.config.backend},
            help="Per-task wall time from collection start to result",
        )
        failed: List[int] = []
        last_error: Optional[BaseException] = None
        for i in pending:
            started = time.perf_counter()
            try:
                results[i] = self._absorb(
                    futures[i].result(timeout=self.config.task_timeout)
                )
                task_seconds.observe(time.perf_counter() - started)
            except concurrent.futures.BrokenExecutor as exc:
                # The pool is gone; every remaining future is doomed.
                self.stats.bump(worker_failures=1)
                health.mark_broken(self.config.backend, repr(exc))
                self._release_executor(wait=False)
                rest = pending[pending.index(i):]
                failed.extend(j for j in rest if j not in failed)
                pending[:] = failed
                raise _PoolBroken from exc
            except concurrent.futures.TimeoutError:
                self.stats.bump(worker_failures=1)
                futures[i].cancel()
                failed.append(i)
                last_error = TaskTimeoutError(
                    f"task {i} exceeded {self.config.task_timeout:g}s"
                )
            except Exception as exc:
                self.stats.bump(worker_failures=1)
                failed.append(i)
                last_error = exc
        return failed, last_error
