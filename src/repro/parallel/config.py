"""Execution configuration for the partition-parallel subsystem.

:class:`ExecutionConfig` is the single knob object threaded from the
:class:`~repro.warehouse.warehouse.DataWarehouse` facade through the SQL
planner down to the chunked sequence kernels.  It decides

* **how many workers** run concurrently (``jobs``; ``0`` = one per CPU),
* **how work is split** (``chunk_size`` — the minimum number of core
  positions per chunk; long sequences are cut into roughly equal chunks of
  at least this size),
* **where chunks run** (``backend`` — ``"serial"``, ``"thread"``, or
  ``"process"``), and
* **which kernel** evaluates a chunk (``kernel`` — ``"auto"`` picks the
  NumPy :func:`~repro.core.vectorized.compute_vectorized` bulk path,
  ``"pipelined"`` forces the paper's scalar recursion).

The default configuration is strictly serial and byte-for-byte equivalent
to the historical single-threaded engine, so existing callers are
unaffected unless they opt in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParallelError

__all__ = ["BACKENDS", "KERNELS", "ExecutionConfig"]

BACKENDS = ("serial", "thread", "process")
KERNELS = ("auto", "pipelined", "vectorized")


@dataclass(frozen=True)
class ExecutionConfig:
    """How sequence computations are split across workers.

    Attributes:
        jobs: worker count; ``0`` resolves to ``os.cpu_count()`` and ``1``
            keeps everything on the calling thread.
        chunk_size: minimum core positions per chunk; sequences shorter than
            ``2 * chunk_size`` are never split.
        backend: ``"serial"`` (in-process map), ``"thread"``
            (``ThreadPoolExecutor`` — NumPy kernels release the GIL), or
            ``"process"`` (``ProcessPoolExecutor`` — NumPy-backed chunks are
            pickled to worker processes).
        kernel: per-chunk computation kernel (``"auto"``/``"pipelined"``/
            ``"vectorized"``).
        task_timeout: per-task result deadline in seconds for pool backends
            (``None`` waits forever; ignored by the serial path, which
            cannot be preempted).
        max_retries: bounded re-submissions of a failed/timed-out task
            before the pool gives up on it.
        retry_backoff: base sleep before a retry round; doubles each round
            (exponential backoff).
        fallback: degrade to in-process serial execution when the pool
            breaks (``BrokenProcessPool``) or retries are exhausted,
            instead of raising — correctness over speed.
    """

    jobs: int = 1
    chunk_size: int = 65536
    backend: str = "serial"
    kernel: str = "auto"
    task_timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.kernel not in KERNELS:
            raise ParallelError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        if self.jobs < 0:
            raise ParallelError(f"jobs must be >= 0, got {self.jobs}")
        if self.chunk_size < 1:
            raise ParallelError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ParallelError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.max_retries < 0:
            raise ParallelError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ParallelError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )

    @property
    def resolved_jobs(self) -> int:
        """Concrete worker count (``jobs=0`` resolves to the CPU count)."""
        if self.jobs == 0:
            return max(os.cpu_count() or 1, 1)
        return self.jobs

    @property
    def is_parallel(self) -> bool:
        """True when work may leave the calling thread."""
        return self.backend != "serial" and self.resolved_jobs > 1

    @staticmethod
    def serial() -> "ExecutionConfig":
        """The default single-threaded configuration."""
        return ExecutionConfig()

    def describe(self) -> str:
        """One-line human-readable summary (used by EXPLAIN and the CLI)."""
        text = (
            f"backend={self.backend} jobs={self.resolved_jobs} "
            f"chunk_size={self.chunk_size} kernel={self.kernel}"
        )
        if self.task_timeout is not None:
            text += f" timeout={self.task_timeout:g}s"
        if self.max_retries != 2 or not self.fallback:
            text += f" retries={self.max_retries} fallback={self.fallback}"
        return text
