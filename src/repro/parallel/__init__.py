"""Partition-parallel execution subsystem.

Chunked evaluation of reporting-function sequences: the paper's
complete-sequence header/trailer machinery (section 3) applied *per chunk*
makes sequence segments independently computable, so window computation,
view refresh, and maintenance band recomputation can run across PARTITION
BY groups and within long sequences on thread or process pools.

Public surface:

* :class:`ExecutionConfig` — jobs / chunk_size / backend / kernel knobs;
* :class:`Partitioner` / :class:`Chunk` — overlap-carrying work splitting;
* :class:`ExecutorPool` — ordered map over serial/thread/process backends;
* :func:`compute_parallel` / :func:`compute_grouped_parallel` — the chunked
  counterparts of :func:`repro.core.compute.compute`;
* :func:`evaluate_positions` — pool-assisted explicit evaluation of
  scattered positions (maintenance bands);
* :mod:`repro.parallel.health` — process-wide broken-backend registry the
  planner consults to route queries away from a crashed pool backend.
"""

from repro.parallel import health
from repro.parallel.compute import (
    compute_grouped_parallel,
    compute_parallel,
    evaluate_positions,
)
from repro.parallel.config import BACKENDS, KERNELS, ExecutionConfig
from repro.parallel.executor import ExecutorPool
from repro.parallel.partitioner import Chunk, Partitioner

__all__ = [
    "BACKENDS",
    "KERNELS",
    "Chunk",
    "ExecutionConfig",
    "ExecutorPool",
    "Partitioner",
    "compute_grouped_parallel",
    "compute_parallel",
    "evaluate_positions",
    "health",
]
