"""Aggregation functions used by reporting-function sequences.

The paper (section 2.1) considers the standard SQL aggregates SUM, COUNT,
AVG, MIN, MAX and observes:

* COUNT is trivial (a constant for sliding windows, the position for
  cumulative ones);
* AVG is derived from SUM and COUNT;
* SUM is *invertible* (has a subtraction), enabling the pipelined
  computation, the incremental maintenance rules, and both derivation
  algorithms;
* MIN/MAX are only *semi-algebraic*: duplicate-insensitive (idempotent under
  overlap), so MaxOA applies, but not invertible, so MinOA does not.

:class:`Aggregate` captures these traits so the algorithm layer can test
``agg.invertible`` / ``agg.duplicate_insensitive`` instead of special-casing
names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import SequenceError

__all__ = [
    "Aggregate",
    "SUM",
    "COUNT",
    "AVG",
    "MIN",
    "MAX",
    "by_name",
    "ALL_AGGREGATES",
]


@dataclass(frozen=True)
class Aggregate:
    """A SQL aggregation function together with its algebraic traits.

    Attributes:
        name: SQL name (``"SUM"``, ...).
        identity: neutral element returned for an empty input window, or
            ``None`` when the SQL result for an empty window is NULL
            (MIN/MAX/AVG).
        invertible: True when the aggregate forms a group (supports
            subtraction of contributions) — SUM and COUNT.
        duplicate_insensitive: True when aggregating a value twice does not
            change the result — MIN and MAX.  This is the property MaxOA
            exploits for overlapping covers.
        combine: binary combination of two partial results.
    """

    name: str
    identity: Optional[float]
    invertible: bool
    duplicate_insensitive: bool
    combine: Callable[[float, float], float]

    def apply(self, values: Iterable[float]) -> Optional[float]:
        """Aggregate an iterable of raw values (SQL semantics for empty input)."""
        values = list(values)
        if self.name == "SUM":
            return float(sum(values)) if values else 0.0
        if self.name == "COUNT":
            return float(len(values))
        if self.name == "AVG":
            return float(sum(values)) / len(values) if values else None
        if self.name == "MIN":
            return min(values) if values else None
        if self.name == "MAX":
            return max(values) if values else None
        raise SequenceError(f"unknown aggregate {self.name!r}")

    def subtract(self, total: float, part: float) -> float:
        """Remove a contribution from a partial result (invertible aggregates)."""
        if not self.invertible:
            raise SequenceError(f"{self.name} is not invertible")
        return total - part

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _add(a: float, b: float) -> float:
    return a + b


SUM = Aggregate("SUM", identity=0.0, invertible=True, duplicate_insensitive=False, combine=_add)
COUNT = Aggregate("COUNT", identity=0.0, invertible=True, duplicate_insensitive=False, combine=_add)
# AVG is handled by derivation from SUM and COUNT wherever derivation matters;
# apply() still evaluates it directly for native computation.
AVG = Aggregate("AVG", identity=None, invertible=False, duplicate_insensitive=False, combine=_add)
MIN = Aggregate("MIN", identity=None, invertible=False, duplicate_insensitive=True, combine=min)
MAX = Aggregate("MAX", identity=None, invertible=False, duplicate_insensitive=True, combine=max)

ALL_AGGREGATES = (SUM, COUNT, AVG, MIN, MAX)
_BY_NAME = {agg.name: agg for agg in ALL_AGGREGATES}


def by_name(name: str) -> Aggregate:
    """Look up an aggregate by (case-insensitive) SQL name.

    Raises:
        SequenceError: for names outside SUM/COUNT/AVG/MIN/MAX.
    """
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise SequenceError(
            f"unknown aggregate {name!r}; expected one of "
            f"{sorted(_BY_NAME)}"
        ) from None
