"""Incremental maintenance of materialized sequence views (paper section 2.3).

A data warehouse keeps sequence views materialized; when base data changes,
recomputing the whole view is wasteful because a point change only affects
the ``w = l + h + 1`` sequence values whose windows contain the touched raw
position (plus a positional shift for insert/delete).  The paper gives rules
for the three modification types; this module implements them for sliding
and cumulative windows.

The published formulas are partially garbled by OCR in the available text;
the rules below are re-derived from the window definition and are verified
against full recomputation by property tests
(``tests/properties/test_prop_maintenance.py``).  For a sliding window
``(l, h)`` over raw data ``x`` with sequence ``x̃``:

* **update** ``x_k := v``: ``x̃'_i = x̃_i + (v - x_k)`` for
  ``k-h <= i <= k+l``; all other values unchanged.
* **insert** value ``v`` at position ``k`` (old positions ``>= k`` shift
  right)::

      x̃'_i = x̃_i                        i < k-h
      x̃'_i = x̃_i     + v - x_{i+h}      k-h <= i < k
      x̃'_i = x̃_{i-1} + v - x_{i-l-1}    k   <= i <= k+l
      x̃'_i = x̃_{i-1}                    i > k+l

* **delete** position ``k`` (old positions ``> k`` shift left)::

      x̃'_i = x̃_i                        i < k-h
      x̃'_i = x̃_i     - x_k + x_{i+h+1}  k-h <= i < k
      x̃'_i = x̃_{i+1} - x_k + x_{i-l}    k   <= i < k+l
      x̃'_i = x̃_{i+1}                    i >= k+l

MIN/MAX views follow the paper's footnote (``min(x̃_i, v)`` when the change
can only lower the extremum) and fall back to recomputing the affected band
otherwise — the rules stay *local* either way.

Each function mutates the raw list and the :class:`CompleteSequence` in
place and returns a :class:`MaintenanceResult` with locality statistics.

The MIN/MAX fallback recomputes up to ``w`` windows explicitly — O(w²) raw
touches for wide windows.  All three rules therefore gather the positions
to recompute first and evaluate them as one batch through an *evaluator*
callable ``(raw, positions) -> values``; the default evaluates serially,
and the view layer passes
:func:`repro.parallel.compute.evaluate_positions` to spread wide bands
over the executor pool (the §2.3 band recomputation's parallel hook).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.aggregates import MAX, MIN, SUM, Aggregate
from repro.core.complete import CompleteSequence
from repro.core.sequence import SequenceSpec, raw_value
from repro.errors import MaintenanceError

__all__ = [
    "BandEvaluator",
    "MaintenanceResult",
    "apply_update",
    "apply_insert",
    "apply_delete",
]

#: Batch evaluator for MIN/MAX band recomputation: given the (new) raw data
#: and the sequence positions whose windows must be rebuilt, return one value
#: per position, in order.  ``None`` means evaluate serially in-process.
BandEvaluator = Callable[[SequenceSpec, Sequence[float], Sequence[int]], List[float]]


def _evaluate_band(
    spec: SequenceSpec,
    raw: Sequence[float],
    positions: Sequence[int],
    evaluator: Optional[BandEvaluator],
) -> List[float]:
    """Recompute the given positions' windows, serially or via ``evaluator``."""
    if not positions:
        return []
    if evaluator is None:
        return [spec.value_at(raw, i) for i in positions]
    return evaluator(spec, raw, positions)


@dataclass(frozen=True)
class MaintenanceResult:
    """Locality statistics of one incremental maintenance step.

    Attributes:
        operation: ``"update"`` / ``"insert"`` / ``"delete"``.
        position: raw-data position that was modified.
        values_adjusted: sequence values changed by an O(1) formula.
        values_recomputed: sequence values recomputed from raw data (only
            MIN/MAX fallbacks; 0 for SUM/COUNT/AVG).
        values_shifted: values that merely moved to a neighbouring position.
    """

    operation: str
    position: int
    values_adjusted: int
    values_recomputed: int
    values_shifted: int

    @property
    def values_touched(self) -> int:
        return self.values_adjusted + self.values_recomputed


def _check_position(seq: CompleteSequence, k: int, *, insert: bool = False) -> None:
    upper = seq.n + 1 if insert else seq.n
    if not 1 <= k <= upper:
        raise MaintenanceError(
            f"position {k} outside valid range 1..{upper} (n={seq.n})"
        )


def _is_minmax(agg: Aggregate) -> bool:
    return agg.duplicate_insensitive


def _band(seq: CompleteSequence, k: int) -> range:
    """Stored positions whose window contains raw position ``k``."""
    first, last = seq.stored_range
    if seq.window.is_cumulative:
        return range(max(k, first), last + 1)
    lo = max(k - seq.window.h, first)
    hi = min(k + seq.window.l, last)
    return range(lo, hi + 1)


def apply_update(
    raw: List[float],
    seq: CompleteSequence,
    k: int,
    v: float,
    *,
    evaluator: Optional[BandEvaluator] = None,
) -> MaintenanceResult:
    """Apply ``x_k := v`` to the raw data and the materialized sequence."""
    _check_position(seq, k)
    old = raw[k - 1]
    band = _band(seq, k)
    first, _ = seq.stored_range
    values = seq.to_list()

    if _is_minmax(seq.aggregate):
        spec = SequenceSpec(seq.window, seq.aggregate)
        raw[k - 1] = v
        stale: List[int] = []
        for i in band:
            cur = values[i - first]
            improves = v <= cur if seq.aggregate is MIN else v >= cur
            if improves:
                # The footnote rule: the new value can only sharpen the extremum.
                values[i - first] = v
            elif old == cur:
                # The old extremum may have been x_k itself: recompute window.
                stale.append(i)
            # else: extremum determined by other window members; unchanged.
        for i, value in zip(stale, _evaluate_band(spec, raw, stale, evaluator)):
            values[i - first] = value
        seq._replace_values(seq.n, values)
        return MaintenanceResult("update", k, len(band) - len(stale), len(stale), 0)

    delta = v - old
    raw[k - 1] = v
    for i in band:
        values[i - first] += delta
    seq._replace_values(seq.n, values)
    return MaintenanceResult("update", k, len(band), 0, 0)


def apply_insert(
    raw: List[float],
    seq: CompleteSequence,
    k: int,
    v: float,
    *,
    evaluator: Optional[BandEvaluator] = None,
) -> MaintenanceResult:
    """Insert raw value ``v`` at position ``k``; old positions ``>= k`` shift right."""
    _check_position(seq, k, insert=True)
    window, agg = seq.window, seq.aggregate
    n_new = seq.n + 1
    old_value = seq.value  # total function over old positions

    if window.is_cumulative:
        new_values = [
            old_value(i) if i < k else old_value(i - 1) + v
            for i in range(1, n_new + 1)
        ]
        raw.insert(k - 1, v)
        seq._replace_values(n_new, new_values)
        return MaintenanceResult("insert", k, n_new - k + 1, 0, 0)

    l, h = window.l, window.h
    first = 1 - window.header_span()
    last_new = n_new + window.trailer_span()
    new_values: List[float] = []
    adjusted = recomputed = shifted = 0
    minmax = _is_minmax(agg)
    spec = SequenceSpec(window, agg)
    raw_new = raw[: k - 1] + [v] + raw[k - 1 :]

    stale: List[int] = []
    for i in range(first, last_new + 1):
        if i < k - h:
            new_values.append(old_value(i))
        elif i > k + l:
            new_values.append(old_value(i - 1))
            shifted += 1
        elif minmax:
            new_values.append(0.0)  # placeholder; batch-filled below
            stale.append(i)
            recomputed += 1
        elif i < k:
            new_values.append(old_value(i) + v - raw_value(raw, i + h))
            adjusted += 1
        else:  # k <= i <= k + l
            new_values.append(old_value(i - 1) + v - raw_value(raw, i - l - 1))
            adjusted += 1

    for i, value in zip(stale, _evaluate_band(spec, raw_new, stale, evaluator)):
        new_values[i - first] = value
    raw.insert(k - 1, v)
    seq._replace_values(n_new, new_values)
    return MaintenanceResult("insert", k, adjusted, recomputed, shifted)


def apply_delete(
    raw: List[float],
    seq: CompleteSequence,
    k: int,
    *,
    evaluator: Optional[BandEvaluator] = None,
) -> MaintenanceResult:
    """Delete raw position ``k``; old positions ``> k`` shift left."""
    _check_position(seq, k)
    window, agg = seq.window, seq.aggregate
    n_new = seq.n - 1
    old_value = seq.value
    xk = raw[k - 1]

    if window.is_cumulative:
        new_values = [
            old_value(i) if i < k else old_value(i + 1) - xk
            for i in range(1, n_new + 1)
        ]
        del raw[k - 1]
        seq._replace_values(n_new, new_values)
        return MaintenanceResult("delete", k, max(n_new - k + 1, 0), 0, 0)

    l, h = window.l, window.h
    first = 1 - window.header_span()
    last_new = n_new + window.trailer_span()
    new_values = []
    adjusted = recomputed = shifted = 0
    minmax = _is_minmax(agg)
    spec = SequenceSpec(window, agg)
    raw_new = raw[: k - 1] + raw[k:]

    stale: List[int] = []
    for i in range(first, last_new + 1):
        if i < k - h:
            new_values.append(old_value(i))
        elif i >= k + l:
            new_values.append(old_value(i + 1))
            shifted += 1
        elif minmax:
            new_values.append(0.0)  # placeholder; batch-filled below
            stale.append(i)
            recomputed += 1
        elif i < k:
            new_values.append(old_value(i) - xk + raw_value(raw, i + h + 1))
            adjusted += 1
        else:  # k <= i < k + l
            new_values.append(old_value(i + 1) - xk + raw_value(raw, i - l))
            adjusted += 1

    for i, value in zip(stale, _evaluate_band(spec, raw_new, stale, evaluator)):
        new_values[i - first] = value
    del raw[k - 1]
    seq._replace_values(n_new, new_values)
    return MaintenanceResult("delete", k, adjusted, recomputed, shifted)
