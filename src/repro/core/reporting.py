"""Reporting sequences: partitioning and ordering schemes (paper section 6).

Definition (Reporting Sequence): a simple sequence extended by a
*partitioning scheme* (a set of partitioning attributes) and an *ordering
scheme* (a list of ordering columns ``k1, ..., kn``).  This is the formal
counterpart of the full SQL ``OVER (PARTITION BY ... ORDER BY ... ROWS ...)``
clause.

Definition (Complete Reporting Function): a reporting function is complete
if it provides header/trailer information *for each partition*.

Two derivation lemmas are implemented:

* **Ordering reduction** (section 6.1): derive a sequence ordered by the
  prefix ``(k1, ..., k_{n-j})`` from one ordered by ``(k1, ..., kn)``.
  Values that are no longer distinguished by the dropped columns collapse
  into a single value; the collapsed windows follow from position-function
  arithmetic (:meth:`~repro.core.positions.PositionFunction.lemma_window_bounds`).
  The implementation evaluates the collapsed groups as interval sums
  reconstructed from the materialized sequence
  (:func:`~repro.core.derivation.prefix_up_to` — MinOA's positive tiling),
  so no raw data is touched.
* **Partitioning reduction** (section 6.2): derive a coarser partitioning
  (``P_query ⊆ P_view``).  Rows of different fine partitions interleave in
  the coarse ordering, so — following the lemma's constructive argument —
  each fine partition's raw values are first reconstructed (possible
  exactly because the reporting function is *complete*), merged in order,
  and the target window is recomputed.  The paper proves derivability but
  gives no closed form; this is the construction its proof sketch implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.aggregates import SUM, Aggregate
from repro.core.complete import CompleteSequence
from repro.core.derivation import derive as derive_window_values
from repro.core.derivation import prefix_up_to
from repro.core.positions import PositionFunction
from repro.core.reconstruct import raw_from_cumulative, raw_from_sliding
from repro.core.sequence import CustomBoundsSequenceSpec, SequenceSpec
from repro.core.window import WindowSpec
from repro.errors import DerivationError, IncompleteSequenceError, SequenceError

__all__ = ["PartitionData", "ReportingSequence", "ordering_reduction", "partitioning_reduction"]

Key = Tuple[object, ...]


@dataclass
class PartitionData:
    """One partition of a reporting sequence.

    Attributes:
        order_keys: ordering-column coordinates, index ``i`` holding the key
            of sequence position ``i + 1``.
        seq: the partition's materialized (ideally complete) sequence.
    """

    order_keys: List[Key]
    seq: CompleteSequence


class ReportingSequence:
    """A materialized reporting-function view: one sequence per partition."""

    def __init__(
        self,
        partition_by: Sequence[str],
        order_by: Sequence[str],
        window: WindowSpec,
        aggregate: Aggregate,
        partitions: Dict[Key, PartitionData],
    ) -> None:
        self.partition_by = tuple(partition_by)
        self.order_by = tuple(order_by)
        self.window = window
        self.aggregate = aggregate
        self.partitions = partitions

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[dict],
        value_col: str,
        *,
        partition_by: Sequence[str] = (),
        order_by: Sequence[str],
        window: WindowSpec,
        aggregate: Aggregate = SUM,
        complete: bool = True,
        exec_config=None,
    ) -> "ReportingSequence":
        """Materialize a reporting sequence from raw warehouse rows.

        Rows are dicts; within a partition they are sorted by the ordering
        columns (the reporting function's local ORDER BY).

        Args:
            exec_config: a parallel
                :class:`~repro.parallel.config.ExecutionConfig` routes the
                core-position computation of all partitions through one
                executor pool (view refresh is the paper's §2.3 full
                recomputation baseline — the expensive path); header and
                trailer values (``l + h`` per partition) are evaluated
                in-process.  ``None`` keeps the serial explicit form.
        """
        if not order_by:
            raise SequenceError("a reporting sequence needs ordering columns")
        groups: Dict[Key, List[dict]] = {}
        for row in rows:
            key = tuple(row[c] for c in partition_by)
            groups.setdefault(key, []).append(row)
        keys: List[Key] = sorted(groups, key=repr)
        order_keys_by_key: List[List[Key]] = []
        raws: List[List[float]] = []
        for key in keys:
            part_rows = sorted(
                groups[key], key=lambda r: tuple(r[c] for c in order_by)
            )
            order_keys = [tuple(r[c] for c in order_by) for r in part_rows]
            if len(set(order_keys)) != len(order_keys):
                raise SequenceError(
                    f"duplicate ordering key within partition {key!r}; the "
                    "sequence model requires a strict linear order"
                )
            order_keys_by_key.append(order_keys)
            raws.append([float(r[value_col]) for r in part_rows])
        if exec_config is not None and exec_config.is_parallel and raws:
            seqs = _sequences_parallel(raws, window, aggregate, complete, exec_config)
        else:
            seqs = [
                CompleteSequence.from_raw(raw, window, aggregate, complete=complete)
                for raw in raws
            ]
        partitions: Dict[Key, PartitionData] = {
            key: PartitionData(order_keys, seq)
            for key, order_keys, seq in zip(keys, order_keys_by_key, seqs)
        }
        return cls(partition_by, order_by, window, aggregate, partitions)

    # -- inspection -------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """Complete Reporting Function: header/trailer for *each* partition."""
        return all(p.seq.is_complete for p in self.partitions.values())

    def values(self) -> Iterator[Tuple[Key, Key, float]]:
        """Iterate ``(partition_key, order_key, sequence_value)`` rows."""
        for pkey, part in self.partitions.items():
            for i, value in enumerate(part.seq.core_values()):
                yield pkey, part.order_keys[i], value

    def partition(self, key: Key) -> PartitionData:
        try:
            return self.partitions[key]
        except KeyError:
            raise SequenceError(f"no partition {key!r}") from None

    # -- window derivation (same partitioning/ordering) --------------------------

    def derive_window(
        self, target: WindowSpec, *, algorithm: str = "auto", form: str = "explicit"
    ) -> "ReportingSequence":
        """Derive a different window per partition (sections 3-5 applied
        partition-wise)."""
        partitions = {}
        for key, part in self.partitions.items():
            values = derive_window_values(
                part.seq, target, algorithm=algorithm, form=form
            )
            raw_placeholder = values  # the derived values ARE the new sequence
            partitions[key] = PartitionData(
                list(part.order_keys),
                CompleteSequence.from_values(
                    target,
                    self.aggregate,
                    part.seq.n,
                    list(zip(range(1, part.seq.n + 1), raw_placeholder)),
                    complete=False,
                ),
            )
        return ReportingSequence(
            self.partition_by, self.order_by, target, self.aggregate, partitions
        )

    def reconstruct_raw(self) -> Dict[Key, List[float]]:
        """Per-partition raw values (requires completeness for sliding views)."""
        out = {}
        for key, part in self.partitions.items():
            if self.window.is_cumulative:
                out[key] = raw_from_cumulative(part.seq)
            else:
                if not part.seq.is_complete:
                    raise IncompleteSequenceError(
                        f"partition {key!r} lacks header/trailer; raw "
                        "reconstruction from a sliding view needs a complete "
                        "reporting function"
                    )
                out[key] = raw_from_sliding(part.seq, form="recursive")
        return out


def _sequences_parallel(
    raws: Sequence[List[float]],
    window: WindowSpec,
    aggregate: Aggregate,
    complete: bool,
    exec_config,
) -> List[CompleteSequence]:
    """Build one :class:`CompleteSequence` per partition through the pool.

    Core positions ``1..n`` go through
    :func:`~repro.parallel.compute.compute_grouped_parallel` (one flat chunk
    list over all partitions); the ``l + h`` header/trailer positions per
    partition are cheap and evaluated with the explicit form in-process.
    """
    from repro.parallel.compute import compute_grouped_parallel

    core_lists = compute_grouped_parallel(raws, window, aggregate, exec_config)
    spec = SequenceSpec(window, aggregate)
    seqs: List[CompleteSequence] = []
    for raw, core in zip(raws, core_lists):
        n = len(raw)
        pairs: List[Tuple[int, float]] = list(zip(range(1, n + 1), core))
        if complete:
            first = 1 - window.header_span()
            last = n + window.trailer_span()
            for k in range(first, 1):
                pairs.append((k, spec.value_at(raw, k)))
            for k in range(n + 1, last + 1):
                pairs.append((k, spec.value_at(raw, k)))
        seqs.append(
            CompleteSequence.from_values(window, aggregate, n, pairs, complete=complete)
        )
    return seqs


def partitioning_reduction(
    view: ReportingSequence,
    new_partition_by: Sequence[str],
    *,
    target_window: Optional[WindowSpec] = None,
    complete: bool = True,
) -> ReportingSequence:
    """Derive a coarser-partitioned reporting sequence (section 6.2).

    Args:
        view: the materialized reporting sequence; must be complete (the
            lemma's precondition).
        new_partition_by: subset of the view's partitioning columns.
        target_window: window of the derived sequence (defaults to the
            view's window).

    Raises:
        DerivationError: if the new partitioning is not a subset of the old.
        IncompleteSequenceError: if any partition lacks header/trailer.
    """
    new_cols = tuple(new_partition_by)
    if not set(new_cols) <= set(view.partition_by):
        raise DerivationError(
            f"partitioning reduction requires {new_cols!r} ⊆ "
            f"{view.partition_by!r}"
        )
    if not view.is_complete:
        raise IncompleteSequenceError(
            "partitioning reduction requires a complete reporting function "
            "(header/trailer per partition)"
        )
    target = target_window or view.window
    keep_idx = [view.partition_by.index(c) for c in new_cols]
    drop_idx = [i for i in range(len(view.partition_by)) if i not in keep_idx]

    raws = view.reconstruct_raw()
    rows: List[dict] = []
    for pkey, part in view.partitions.items():
        raw = raws[pkey]
        for i, okey in enumerate(part.order_keys):
            row = {c: pkey[j] for j, c in zip(keep_idx, new_cols)}
            # Dropped partition values become tie-breaking pseudo ordering
            # columns so merged rows have a deterministic linear order.
            row["__drop__"] = tuple(pkey[j] for j in drop_idx)
            for c, v in zip(view.order_by, okey):
                row[c] = v
            row["__value__"] = raw[i]
            rows.append(row)
    return ReportingSequence.from_rows(
        rows,
        "__value__",
        partition_by=new_cols,
        order_by=tuple(view.order_by) + ("__drop__",),
        window=target,
        aggregate=view.aggregate,
        complete=complete,
    )


def ordering_reduction(
    view: ReportingSequence,
    drop: int,
    *,
    position: Optional[PositionFunction] = None,
    target_window: Optional[WindowSpec] = None,
    complete: bool = True,
) -> ReportingSequence:
    """Derive a reporting sequence with a reduced ordering scheme (section 6.1).

    Drops the ``drop`` right-most ordering columns, collapsing each group of
    positions that agree on the remaining prefix into one value.  Group
    totals are reconstructed from the materialized sequence via interval
    sums (``prefix_up_to``), then the target window is applied over the
    reduced positions — exercising exactly the lemma's derived window
    bounds.

    Args:
        position: the dense ordering domain; inferred from the view's keys
            when omitted (each partition must then contain the full cross
            product of observed per-column values).
        target_window: window of the derived sequence in *reduced-position*
            units; defaults to the view's window shape.

    Raises:
        DerivationError: for MIN/MAX views, or when a partition's keys do
            not form the dense cross product the position function models.
    """
    if not view.aggregate.invertible:
        raise DerivationError(
            "ordering reduction derives interval sums and requires SUM/COUNT "
            f"views, got {view.aggregate.name}"
        )
    if not 0 < drop < len(view.order_by):
        raise DerivationError(
            f"must drop between 1 and {len(view.order_by) - 1} ordering "
            f"columns, got {drop}"
        )
    target = target_window or view.window
    keep = len(view.order_by) - drop

    partitions: Dict[Key, PartitionData] = {}
    for pkey, part in view.partitions.items():
        pos = position or _infer_position(part.order_keys)
        if pos.cardinality != part.seq.n or [
            pos.coords(k) for k in range(1, part.seq.n + 1)
        ] != part.order_keys:
            raise DerivationError(
                f"partition {pkey!r} is not the dense cross product of its "
                "ordering domains; the position function model (section 6) "
                "requires dense multi-column sequences"
            )
        groups = pos.prefix_cardinality(keep)
        group_totals: List[float] = []
        prefixes: List[Key] = []
        for rank in range(1, groups + 1):
            prefix = pos.prefix_from_rank(keep, rank)
            first, last = pos.group_bounds(prefix)
            total = prefix_up_to(part.seq, last) - prefix_up_to(part.seq, first - 1)
            group_totals.append(total)
            prefixes.append(prefix)
        partitions[pkey] = PartitionData(
            prefixes,
            CompleteSequence.from_raw(
                group_totals, target, view.aggregate, complete=complete
            ),
        )
    return ReportingSequence(
        view.partition_by, view.order_by[:keep], target, view.aggregate, partitions
    )


def lemma_bounds_spec(
    view: ReportingSequence, pkey: Key, drop: int, *, position: Optional[PositionFunction] = None
) -> CustomBoundsSequenceSpec:
    """The lemma's variable-window sequence over *global* positions.

    Returns a :class:`CustomBoundsSequenceSpec` whose window at global
    position ``k`` spans the lemma's ``[k - w'L(k), k + w'H(k)]`` — i.e. from
    the start of the previous prefix group to the end of the current one.
    Useful to inspect / verify the published bound formulas.
    """
    part = view.partition(pkey)
    pos = position or _infer_position(part.order_keys)

    def lower(k: int) -> int:
        wl, _ = pos.lemma_window_bounds(pos.coords(k), drop)
        return k - wl

    def upper(k: int) -> int:
        _, wh = pos.lemma_window_bounds(pos.coords(k), drop)
        return k + wh

    return CustomBoundsSequenceSpec(
        lower,
        upper,
        view.aggregate,
        description=f"ordering reduction by {drop} column(s)",
    )


def _infer_position(order_keys: Sequence[Key]) -> PositionFunction:
    """Infer per-column ordered domains from observed keys."""
    if not order_keys:
        raise DerivationError("cannot infer ordering domains from an empty partition")
    arity = len(order_keys[0])
    domains: List[List[object]] = []
    for d in range(arity):
        seen: List[object] = []
        for key in order_keys:
            if key[d] not in seen:
                seen.append(key[d])
        domains.append(sorted(seen))
    return PositionFunction(domains)
