"""Position functions for multi-column orderings (paper section 6).

Definition (Position Function): ``pos: N^n -> N`` returns the global
position of a multidimensional sequence entry according to the linear
(lexicographic) ordering of its coordinates; for ``n = 1`` it is the
identity.

:class:`PositionFunction` implements the mixed-radix arithmetic over
explicit, ordered column domains, plus the coordinate increment/decrement
(``(2,4) + 1 = (3,1)`` in the paper's example, where the second domain has
four values) that the ordering-reduction lemma uses to address neighbouring
combinations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SequenceError

__all__ = ["PositionFunction"]

Coords = Tuple[object, ...]


class PositionFunction:
    """Linear (lexicographic) positions over ordered column domains.

    Args:
        domains: one ordered sequence of distinct values per ordering
            column, most significant first.  Positions are 1-based, matching
            the paper's sequence convention.

    Example:
        >>> pos = PositionFunction([[2001, 2002], ["jan", "feb", "mar"]])
        >>> pos((2001, "jan")), pos((2002, "mar"))
        (1, 6)
    """

    def __init__(self, domains: Sequence[Sequence[object]]) -> None:
        if not domains:
            raise SequenceError("a position function needs at least one domain")
        self._domains: List[Tuple[object, ...]] = []
        self._index: List[Dict[object, int]] = []
        for d, domain in enumerate(domains):
            values = tuple(domain)
            if not values:
                raise SequenceError(f"ordering domain {d} is empty")
            index = {v: i for i, v in enumerate(values)}
            if len(index) != len(values):
                raise SequenceError(f"ordering domain {d} contains duplicates")
            self._domains.append(values)
            self._index.append(index)
        self._strides = [1] * len(self._domains)
        for d in range(len(self._domains) - 2, -1, -1):
            self._strides[d] = self._strides[d + 1] * len(self._domains[d + 1])

    # -- basic geometry ------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self._domains)

    @property
    def cardinality(self) -> int:
        """Total number of combinations (the sequence length ``n``)."""
        return self._strides[0] * len(self._domains[0])

    def domain(self, d: int) -> Tuple[object, ...]:
        return self._domains[d]

    # -- pos() and its inverse -------------------------------------------------

    def __call__(self, coords: Sequence[object]) -> int:
        """``pos(k1, ..., kn)`` — the 1-based global position.

        Shorter coordinate lists address the *first* combination with that
        prefix (the lemma's padding with 1s).
        """
        if not 0 < len(coords) <= self.arity:
            raise SequenceError(
                f"expected 1..{self.arity} coordinates, got {len(coords)}"
            )
        k = 0
        for d, value in enumerate(coords):
            try:
                k += self._index[d][value] * self._strides[d]
            except KeyError:
                raise SequenceError(
                    f"value {value!r} not in ordering domain {d}"
                ) from None
        return k + 1

    def coords(self, k: int) -> Coords:
        """Inverse of :meth:`__call__`: coordinates of global position ``k``."""
        if not 1 <= k <= self.cardinality:
            raise SequenceError(
                f"position {k} outside 1..{self.cardinality}"
            )
        rest = k - 1
        out = []
        for d in range(self.arity):
            idx, rest = divmod(rest, self._strides[d])
            out.append(self._domains[d][idx])
        return tuple(out)

    # -- prefix arithmetic (ordering reduction) ---------------------------------

    def prefix_cardinality(self, keep: int) -> int:
        """Number of distinct prefixes of length ``keep``."""
        if not 0 < keep <= self.arity:
            raise SequenceError(f"prefix length must be 1..{self.arity}")
        card = 1
        for d in range(keep):
            card *= len(self._domains[d])
        return card

    def prefix_rank(self, prefix: Sequence[object]) -> int:
        """1-based lexicographic rank of a prefix among equal-length prefixes."""
        rank = 0
        for d, value in enumerate(prefix):
            stride = 1
            for dd in range(d + 1, len(prefix)):
                stride *= len(self._domains[dd])
            rank += self._index[d][value] * stride
        return rank + 1

    def prefix_from_rank(self, keep: int, rank: int) -> Coords:
        """Inverse of :meth:`prefix_rank`."""
        card = self.prefix_cardinality(keep)
        if not 1 <= rank <= card:
            raise SequenceError(f"prefix rank {rank} outside 1..{card}")
        rest = rank - 1
        out = []
        for d in range(keep):
            stride = 1
            for dd in range(d + 1, keep):
                stride *= len(self._domains[dd])
            idx, rest = divmod(rest, stride)
            out.append(self._domains[d][idx])
        return tuple(out)

    def shift_prefix(self, prefix: Sequence[object], delta: int) -> Coords:
        """``prefix (+/-) delta`` in lexicographic order — the paper's
        ``(2,4)+1 = (3,1)`` carry arithmetic.

        Raises:
            SequenceError: when the shift leaves the domain (callers saturate
                with :meth:`group_bounds` clipping instead).
        """
        keep = len(prefix)
        return self.prefix_from_rank(keep, self.prefix_rank(prefix) + delta)

    def group_bounds(self, prefix: Sequence[object]) -> Tuple[int, int]:
        """Global position range ``[first, last]`` of all entries with ``prefix``."""
        first = self(prefix)
        span = self._strides[len(prefix) - 1]
        return first, first + span - 1

    def lemma_window_bounds(self, coords: Sequence[object], drop: int) -> Tuple[int, int]:
        """The ordering-reduction lemma's ``(w'L(k), w'H(k))`` offsets.

        For the full coordinates of global position ``k`` and ``j = drop``
        trailing ordering columns to eliminate:

            ``w'L(k) = k - pos(prefix - 1, 1, ..., 1)``
            ``w'H(k) = pos(prefix + 1, 1, ..., 1) - k - 1``

        where the +/-1 use the carrying prefix arithmetic.  At domain edges
        the missing neighbour prefix saturates to the first/last combination
        (sequence values outside ``1..n`` are zero anyway).
        """
        if not 0 < drop < self.arity:
            raise SequenceError(
                f"must drop between 1 and {self.arity - 1} ordering columns"
            )
        k = self(coords)
        prefix = tuple(coords[: self.arity - drop])
        keep = len(prefix)
        # In a dense cross-product domain, equal prefixes occupy contiguous
        # blocks of `span` positions, so the neighbouring prefixes start
        # exactly one span away — even at the domain edges, where the
        # "virtual" neighbour addresses positions outside 1..n (whose
        # sequence values are zero by convention).
        span = self._strides[keep - 1]
        start = self(prefix)
        lower = k - (start - span)
        upper = (start + span) - k - 1
        return lower, upper
