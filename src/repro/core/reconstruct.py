"""Reconstructing raw data and deriving from cumulative views (paper section 3).

Three building blocks:

* :func:`raw_from_cumulative` — ``x_k = x̃_k - x̃_{k-1}`` (section 3.1,
  relational mapping in fig. 4).
* :func:`sliding_from_cumulative` — ``ỹ_k = x̃_{k+h} - x̃_{k-l-1}`` (fig. 5);
  holds for small ``k`` because ``x̃_j = 0`` for ``j <= 0``.
* :func:`raw_from_sliding` — from a *complete* sliding-window sequence
  ``x̃ = (l, h)`` with window size ``w = l + h + 1`` (section 3.2).  Both the
  recursive form

      ``x_k = x̃_{k-h} - x̃_{k-h-1} + x_{k-w}``

  and the explicit form

      ``x_k = Σ_{i>=0} ( x̃_{k-h-i·w} - x̃_{k-h-1-i·w} )``

  are provided; the sum stops at ``i_up = ceil(k / w)`` because beyond that
  point ``k - h - i·w <= -h`` and the sequence values vanish.

All functions work on :class:`~repro.core.complete.CompleteSequence` values
and use its total value function, so headers/trailers and the paper's
zero-extension conventions apply uniformly.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.complete import CompleteSequence
from repro.core.window import WindowSpec
from repro.errors import DerivationError

__all__ = [
    "raw_from_cumulative",
    "raw_at_from_cumulative",
    "sliding_from_cumulative",
    "raw_from_sliding",
    "raw_at_from_sliding",
]


def _require_sum_family(seq: CompleteSequence, what: str) -> None:
    if not seq.aggregate.invertible:
        raise DerivationError(
            f"{what} requires an invertible aggregate (SUM/COUNT); "
            f"the materialized sequence uses {seq.aggregate.name}"
        )


def raw_at_from_cumulative(seq: CompleteSequence, k: int) -> float:
    """Single raw value ``x_k = x̃_k - x̃_{k-1}`` from a cumulative sequence."""
    if not seq.window.is_cumulative:
        raise DerivationError("raw_at_from_cumulative needs a cumulative sequence")
    _require_sum_family(seq, "raw-data reconstruction")
    return seq.value(k) - seq.value(k - 1)


def raw_from_cumulative(seq: CompleteSequence) -> List[float]:
    """All raw values ``x_1 .. x_n`` from a cumulative sequence (fig. 4)."""
    return [raw_at_from_cumulative(seq, k) for k in range(1, seq.n + 1)]


def sliding_from_cumulative(seq: CompleteSequence, target: WindowSpec) -> List[float]:
    """Derive a sliding-window sequence ``ỹ = (l, h)`` from a cumulative view.

    ``ỹ_k = x̃_{k+h} - x̃_{k-l-1}`` (fig. 5); the cumulative trailer
    (``x̃_j = x̃_n`` for ``j > n``) makes the formula total.
    """
    if not seq.window.is_cumulative:
        raise DerivationError("sliding_from_cumulative needs a cumulative view")
    if not target.is_sliding:
        raise DerivationError("target window must be sliding")
    _require_sum_family(seq, "sliding-window derivation")
    l, h = target.l, target.h
    return [seq.value(k + h) - seq.value(k - l - 1) for k in range(1, seq.n + 1)]


def raw_at_from_sliding(seq: CompleteSequence, k: int, *, form: str = "explicit") -> float:
    """Single raw value ``x_k`` from a complete sliding-window sequence.

    Args:
        form: ``"explicit"`` uses the bounded telescoping sum directly at
            position ``k``;  ``"recursive"`` unrolls the recursion
            ``x_k = x̃_{k-h} - x̃_{k-h-1} + x_{k-w}`` down to the base case.
            Both cost ``O(k / w)`` sequence lookups for one value.
    """
    if not seq.window.is_sliding:
        raise DerivationError("raw_at_from_sliding needs a sliding-window view")
    _require_sum_family(seq, "raw-data reconstruction")
    h = seq.window.h
    w = seq.window.width
    if form == "recursive":
        if k <= 0:
            return 0.0
        return seq.value(k - h) - seq.value(k - h - 1) + raw_at_from_sliding(
            seq, k - w, form="recursive"
        )
    if form != "explicit":
        raise DerivationError(f"unknown reconstruction form {form!r}")
    i_up = max(math.ceil(k / w), 0)
    total = 0.0
    for i in range(0, i_up + 1):
        pos = k - h - i * w
        total += seq.value(pos) - seq.value(pos - 1)
    return total


def raw_from_sliding(seq: CompleteSequence, *, form: str = "explicit") -> List[float]:
    """All raw values ``x_1 .. x_n`` from a complete sliding-window sequence.

    The whole-sequence reconstruction runs the recursion forward in one pass
    (O(n) total) regardless of ``form``'s per-value strategy when
    ``form="recursive"``; ``form="explicit"`` evaluates the bounded sum at
    every position (O(n²/w) total), matching the relational pattern's cost
    profile.
    """
    if not seq.window.is_sliding:
        raise DerivationError("raw_from_sliding needs a sliding-window view")
    _require_sum_family(seq, "raw-data reconstruction")
    n = seq.n
    if form == "recursive":
        h = seq.window.h
        w = seq.window.width
        out = [0.0] * n
        for k in range(1, n + 1):
            prev = out[k - w - 1] if k - w >= 1 else 0.0
            out[k - 1] = seq.value(k - h) - seq.value(k - h - 1) + prev
        return out
    return [raw_at_from_sliding(seq, k, form=form) for k in range(1, n + 1)]
