"""MinOA — the Minimal Overlapping derivation Algorithm (paper section 5).

MinOA derives ``ỹ = (ly, hy)`` from a complete materialized sequence
``x̃ = (lx, hx)`` by constructing two *tilings* with non-overlapping
(minimally overlapping) view windows:

* **positive sequence** — head right-justified with ``ỹ_k``'s upper bound
  ``k + hy``, so its head centre is ``k + Δh`` (``Δh = hy - hx``);
  successive elements shift left by the view window size ``Wx``.  Summed up
  it equals the raw prefix sum up to ``k + hy``.
* **negative sequence** — head right-justified with ``k - ly - 1`` (just
  below ``ỹ_k``'s lower bound), i.e. centred at ``k - ly - hx - 1 =
  k - Δl - Wx``; summed up it equals the raw prefix sum up to ``k - ly - 1``.

Their difference is exactly the window sum:

    ``ỹ_k = Σ_{i>=0} x̃_{k+Δh-i·Wx}  -  Σ_{i>=1} x̃_{k-Δl-i·Wx}``

Both sums stop after ``i_up = ceil((k + hy) / Wx)`` resp. the analogous
bound for the negative side, because beyond that the view windows lie
entirely left of position 1 and the (complete) sequence values vanish.

Compared to MaxOA (section 4):

* simpler parameters — no compensation sequence, only one modulus ``Wx``;
* **no sign restriction on the coverage factors**: ``Δl`` and ``Δh`` may be
  negative (the query window may be *narrower* than the view window),
  because the tilings reconstruct prefix sums rather than covering the
  query window directly;
* SUM/COUNT family only — the construction subtracts sequence values, which
  is impossible for the semi-algebraic MIN/MAX (the paper's stated
  trade-off between the two algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.complete import CompleteSequence
from repro.core.window import WindowSpec
from repro.errors import DerivationError

__all__ = ["MinOAParameters", "check_preconditions", "derive", "derive_at"]


@dataclass(frozen=True)
class MinOAParameters:
    """Factors of a MinOA derivation (paper notation).

    Attributes:
        delta_l: coverage factor ``Δl = ly - lx`` (may be negative).
        delta_h: coverage factor ``Δh = hy - hx`` (may be negative).
        period: the tiling shift ``Wx = lx + hx + 1``.
    """

    view: WindowSpec
    target: WindowSpec
    delta_l: int
    delta_h: int
    period: int


def check_preconditions(view: WindowSpec, target: WindowSpec) -> MinOAParameters:
    """Validate derivability of ``target`` from ``view`` via MinOA.

    Raises:
        DerivationError: for non-sliding windows.  (MinOA has no window-size
            restriction; completeness and the aggregate family are checked
            at derivation time.)
    """
    if not view.is_sliding or not target.is_sliding:
        raise DerivationError(
            "MinOA derives sliding windows from sliding-window views; got "
            f"view={view}, target={target}"
        )
    return MinOAParameters(
        view=view,
        target=target,
        delta_l=target.l - view.l,
        delta_h=target.h - view.h,
        period=view.width,
    )


def _derive_at(seq: CompleteSequence, params: MinOAParameters, k: int) -> float:
    period = params.period
    hx = params.view.h

    # Positive sequence: head at k + Δh, tiles the prefix (-inf, k + hy].
    total = 0.0
    pos = k + params.delta_h
    while pos >= 1 - hx:  # x̃_pos = 0 once the window is fully left of 1
        total += seq.value(pos)
        pos -= period

    # Negative sequence: head at k - Δl - Wx, tiles (-inf, k - ly - 1].
    pos = k - params.delta_l - period
    while pos >= 1 - hx:
        total -= seq.value(pos)
        pos -= period
    return total


def derive_at(seq: CompleteSequence, target: WindowSpec, k: int) -> float:
    """``ỹ_k`` via MinOA's explicit form (single position)."""
    params = check_preconditions(seq.window, target)
    _require_invertible(seq)
    return _derive_at(seq, params, k)


def _require_invertible(seq: CompleteSequence) -> None:
    if not seq.aggregate.invertible:
        raise DerivationError(
            "MinOA subtracts sequence values and therefore supports only the "
            f"invertible aggregates SUM/COUNT; the view uses {seq.aggregate.name}. "
            "Use MaxOA for MIN/MAX views."
        )


def derive(
    seq: CompleteSequence,
    target: WindowSpec,
    *,
    form: str = "explicit",
    params: Optional[MinOAParameters] = None,
) -> List[float]:
    """Derive ``[ỹ_1 .. ỹ_n]`` for ``target`` from the materialized ``seq``.

    Args:
        form: ``"explicit"`` evaluates the tilings per position (O(n²/Wx)
            lookups, the relational pattern's cost profile); ``"recursive"``
            computes both prefix-tiling sums incrementally (O(n) lookups):
            with ``P_k = Σ_{i>=0} x̃_{k-i·Wx}``, the positive part at ``k`` is
            ``P_{k+Δh}`` and ``P_k = x̃_k + P_{k-Wx}``.

    Raises:
        DerivationError: non-sliding windows or non-invertible aggregate.
    """
    if params is None:
        params = check_preconditions(seq.window, target)
    _require_invertible(seq)
    n = seq.n
    if form == "explicit":
        return [_derive_at(seq, params, k) for k in range(1, n + 1)]
    if form != "recursive":
        raise DerivationError(f"unknown MinOA form {form!r}")

    period = params.period
    hx, lx = params.view.h, params.view.l
    # P_j = Σ_{i>=0} x̃_{j - i·period}; needed for j in two shifted ranges.
    lo = 1 - hx
    hi = max(n + lx, n + params.delta_h, n - params.delta_l - period)
    prefix = {}
    for j in range(lo, hi + 1):
        prefix[j] = seq.value(j) + prefix.get(j - period, 0.0)

    def p(j: int) -> float:
        if j < lo:
            return 0.0
        if j > hi:
            # x̃_j = 0 beyond the trailer; fold back into the computed range.
            back = j - ((j - hi + period - 1) // period) * period
            return prefix.get(back, 0.0)
        return prefix[j]

    return [
        p(k + params.delta_h) - p(k - params.delta_l - period)
        for k in range(1, n + 1)
    ]
