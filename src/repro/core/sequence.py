"""The paper's formal sequence model (section 2.1).

Definition (Simple Sequence): a triple ``(S, W, FA)`` where

* ``S = (SL, SH)`` gives start and stop positions of the sequence;
* ``W = (WL, WH)`` gives, per position ``k``, the inclusive raw-data bounds
  ``wL(k) .. wH(k)`` of the aggregation window;
* ``FA`` is a regular aggregation function.

The sequence value at position ``k`` is
``x̃_k = FA{ x_wL(k), ..., x_wH(k) }`` with raw values ``x_i = 0`` for
``i`` outside ``1..n``.

:class:`SequenceSpec` realises this triple.  For the two standard shapes —
cumulative and sliding windows — the per-position bounds come from a
:class:`~repro.core.window.WindowSpec`; section 6's ordering reduction
produces *irregular* per-position bounds, modelled by
:class:`CustomBoundsSequenceSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.core.aggregates import SUM, Aggregate
from repro.core.window import WindowSpec
from repro.errors import SequenceError

__all__ = ["SequenceSpec", "CustomBoundsSequenceSpec", "raw_value"]


def raw_value(raw: Sequence[float], i: int) -> float:
    """``x_i`` with the paper's convention ``x_i = 0`` outside ``1..n``.

    ``raw`` is a 0-based Python sequence holding ``x_1 .. x_n``.
    """
    if 1 <= i <= len(raw):
        return raw[i - 1]
    return 0.0


@dataclass(frozen=True)
class SequenceSpec:
    """A simple sequence ``(S, W, FA)`` with a regular window shape.

    ``start``/``stop`` default to the paper's canonical range ``1..n`` (the
    stop position is supplied by the data at evaluation time when left at
    the sentinel ``None``).

    Attributes:
        window: cumulative or sliding :class:`WindowSpec`.
        aggregate: the aggregation function ``FA`` (default SUM, the paper's
            emphasis).
    """

    window: WindowSpec
    aggregate: Aggregate = SUM

    # -- bound functions (W component of the triple) -------------------------

    def lower_bound(self, k: int) -> int:
        """``wL(k)``."""
        return self.window.bounds(k)[0]

    def upper_bound(self, k: int) -> int:
        """``wH(k)``."""
        return self.window.bounds(k)[1]

    def window_size(self, k: int) -> int:
        """``W(k) = 1 + wH(k) - wL(k)``."""
        return self.window.size(k)

    # -- evaluation ----------------------------------------------------------

    def value_at(self, raw: Sequence[float], k: int) -> float:
        """Explicit-form sequence value ``x̃_k`` over 0-based raw data.

        This is the naive ``O(W(k))`` evaluation; :mod:`repro.core.compute`
        provides the pipelined alternative for whole sequences.
        """
        lo, hi = self.window.bounds(k)
        out = self.aggregate.apply(
            raw[i - 1] for i in range(max(lo, 1), min(hi, len(raw)) + 1)
        )
        if out is None:
            # MIN/MAX/AVG over a window that lies entirely outside 1..n.
            # The paper's arithmetic convention treats absent raw data as 0.
            return 0.0
        return out

    def materialize(self, raw: Sequence[float]) -> List[float]:
        """All sequence values ``x̃_1 .. x̃_n`` (naive evaluation)."""
        return [self.value_at(raw, k) for k in range(1, len(raw) + 1)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.aggregate.name} over {self.window}"


@dataclass(frozen=True)
class CustomBoundsSequenceSpec:
    """A simple sequence whose window bounds vary per position.

    Produced by ordering reduction (section 6.1), where the derived window
    at global position ``k`` stretches to the previous/next combination of
    the remaining ordering columns:

        ``w'L(k) = k - pos((k1,...,kn-j) - 1, 1, ..., 1)``
        ``w'H(k) = pos((k1,...,kn-j) + 1, 1, ..., 1) - k - 1``

    ``lower``/``upper`` are callables ``k -> bound`` implementing ``WL``/
    ``WH`` of the formal triple directly.
    """

    lower: Callable[[int], int]
    upper: Callable[[int], int]
    aggregate: Aggregate = SUM
    description: str = field(default="custom-bounds sequence")

    def lower_bound(self, k: int) -> int:
        return self.lower(k)

    def upper_bound(self, k: int) -> int:
        return self.upper(k)

    def window_size(self, k: int) -> int:
        return 1 + self.upper(k) - self.lower(k)

    def bounds(self, k: int) -> Tuple[int, int]:
        lo, hi = self.lower(k), self.upper(k)
        if lo > hi:
            raise SequenceError(
                f"window bounds inverted at position {k}: [{lo}, {hi}]"
            )
        return lo, hi

    def value_at(self, raw: Sequence[float], k: int) -> float:
        lo, hi = self.bounds(k)
        out = self.aggregate.apply(
            raw[i - 1] for i in range(max(lo, 1), min(hi, len(raw)) + 1)
        )
        return 0.0 if out is None else out

    def materialize(self, raw: Sequence[float]) -> List[float]:
        return [self.value_at(raw, k) for k in range(1, len(raw) + 1)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.aggregate.name} over {self.description}"
