"""MaxOA — the Maximal Overlapping derivation Algorithm (paper section 4).

Goal: compute the sequence ``ỹ = (ly, hy)`` from a materialized *complete*
sequence ``x̃ = (lx, hx)`` over the same raw data, without touching raw data.

Idea: cover ``ỹ_k``'s window ``[k-ly, k+hy]`` with (up to) three *maximally
overlapping* view windows — ``x̃_{k-Δl}``, ``x̃_k`` and ``x̃_{k+Δh}`` with the
coverage factors ``Δl = ly - lx`` and ``Δh = hy - hx`` — and subtract the
double-counted overlaps, each of which is again a regular sequence (the
*compensation sequences* ``z̃^L`` and ``z̃^H``):

    ``ỹ_k = x̃_k + (x̃_{k-Δl} - z̃^L_k) + (x̃_{k+Δh} - z̃^H_k)``

The compensation sequences satisfy recursions with period
``Wx = lx + hx + 1`` (the paper's ``Δl + Δp`` resp. ``Δh + Δq``; note
``Δp = 1 + lx + hx - Δl`` so ``Δl + Δp = Wx``):

    ``z̃^L_k = x̃_{k-Δl} - x̃_{k-Wx} + z̃^L_{k-Wx}``
    ``z̃^H_k = x̃_{k+Δh} - x̃_{k+Wx} + z̃^H_{k+Wx}``

Unrolling yields the *explicit form* — the one the relational operator
pattern (fig. 10) implements:

    ``ỹ_k = x̃_k + Σ_{i>=1} (x̃_{k-i·Wx} - x̃_{k-i·Wx-Δl})
                 + Σ_{i>=1} (x̃_{k+i·Wx} - x̃_{k+i·Wx+Δh})``

Both sums are finite: the left one vanishes once ``k - i·Wx <= -hx``, the
right one once ``k + i·Wx > n + lx``.

Validity: each side telescopes exactly when its coverage factor does not
exceed the view window size (``Δl <= Wx`` and ``Δh <= Wx``).  The paper
states the stricter ``ly <= hx - 1 + 2·lx`` for the common-bound case
(guaranteeing overlap factor ``Δp >= 2``); :func:`check_preconditions`
reports both.

Unlike MinOA, MaxOA extends to the semi-algebraic aggregates: for MIN/MAX
the overlap is harmless (duplicate-insensitive), so
``ỹ_k = min/max(x̃_{k-Δl}, x̃_k, x̃_{k+Δh})`` — no compensation needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.complete import CompleteSequence
from repro.core.window import WindowSpec
from repro.errors import DerivationError

__all__ = ["MaxOAParameters", "check_preconditions", "derive", "derive_at"]


@dataclass(frozen=True)
class MaxOAParameters:
    """All factors of a MaxOA derivation, in the paper's notation.

    Attributes:
        delta_l: coverage factor ``Δl = ly - lx``.
        delta_h: coverage factor ``Δh = hy - hx``.
        delta_p: left overlap factor ``Δp = 1 + lx + hx - Δl``.
        delta_q: right overlap factor ``Δq = 1 + lx + hx - Δh``.
        period: shift period ``Wx = Δl + Δp = Δh + Δq = lx + hx + 1``.
        meets_paper_bound: True when the paper's stated precondition
            ``ly <= hx - 1 + 2·lx`` (resp. its mirror for the upper side)
            holds; the implementation itself is valid for the weaker
            ``Δl <= Wx ∧ Δh <= Wx``.
    """

    view: WindowSpec
    target: WindowSpec
    delta_l: int
    delta_h: int
    delta_p: int
    delta_q: int
    period: int
    meets_paper_bound: bool


def check_preconditions(view: WindowSpec, target: WindowSpec) -> MaxOAParameters:
    """Validate derivability of ``target`` from ``view`` and return the factors.

    Raises:
        DerivationError: when MaxOA cannot derive the target window —
            non-sliding windows, a negative coverage factor (the query
            window must enclose the view window on both sides), or a
            coverage factor exceeding the view window size.
    """
    if not view.is_sliding or not target.is_sliding:
        raise DerivationError(
            "MaxOA derives sliding windows from sliding-window views; got "
            f"view={view}, target={target}"
        )
    delta_l = target.l - view.l
    delta_h = target.h - view.h
    if delta_l < 0 or delta_h < 0:
        raise DerivationError(
            f"MaxOA coverage factors must be non-negative: "
            f"Δl={delta_l}, Δh={delta_h} (view={view}, target={target}); "
            "a narrower query window is only derivable via MinOA"
        )
    period = view.width
    if delta_l > period or delta_h > period:
        raise DerivationError(
            f"coverage factor exceeds view window size (Δl={delta_l}, "
            f"Δh={delta_h}, Wx={period}); shifted view windows cannot cover "
            "the query window contiguously"
        )
    meets = target.l <= view.h - 1 + 2 * view.l and (
        target.h <= view.l - 1 + 2 * view.h
    )
    return MaxOAParameters(
        view=view,
        target=target,
        delta_l=delta_l,
        delta_h=delta_h,
        delta_p=1 + view.l + view.h - delta_l,
        delta_q=1 + view.l + view.h - delta_h,
        period=period,
        meets_paper_bound=meets,
    )


def _derive_at_sum(seq: CompleteSequence, params: MaxOAParameters, k: int) -> float:
    """Explicit form at a single position (SUM/COUNT family)."""
    period = params.period
    n = seq.n
    hx, lx = params.view.h, params.view.l
    total = seq.value(k)
    if params.delta_l:
        pos = k - period
        while pos >= 1 - hx:  # beyond this both terms vanish
            total += seq.value(pos) - seq.value(pos - params.delta_l)
            pos -= period
    if params.delta_h:
        pos = k + period
        while pos <= n + lx:
            total += seq.value(pos) - seq.value(pos + params.delta_h)
            pos += period
    return total


def _derive_at_minmax(seq: CompleteSequence, params: MaxOAParameters, k: int) -> float:
    """MIN/MAX cover: overlap is harmless, no compensation."""
    candidates = [
        seq.value_or_none(k - params.delta_l) if params.delta_l else None,
        seq.value_or_none(k),
        seq.value_or_none(k + params.delta_h) if params.delta_h else None,
    ]
    present = [c for c in candidates if c is not None]
    if not present:
        return 0.0
    result = present[0]
    for c in present[1:]:
        result = seq.aggregate.combine(result, c)
    return result


def derive_at(seq: CompleteSequence, target: WindowSpec, k: int) -> float:
    """``ỹ_k`` via MaxOA's explicit form (single position)."""
    params = check_preconditions(seq.window, target)
    if seq.aggregate.duplicate_insensitive:
        return _derive_at_minmax(seq, params, k)
    if not seq.aggregate.invertible:
        raise DerivationError(
            f"MaxOA supports SUM/COUNT/MIN/MAX views; got {seq.aggregate.name}"
        )
    return _derive_at_sum(seq, params, k)


def _derive_recursive(seq: CompleteSequence, params: MaxOAParameters) -> List[float]:
    """Recursive form: materialize the compensation sequences in one pass.

    This is the strategy an engine with internal caches would use (paper
    section 4.1): O(1) sequence lookups per output position.
    """
    n = seq.n
    period = params.period
    delta_l, delta_h = params.delta_l, params.delta_h
    out: List[float] = [0.0] * n

    # z̃^L_k = x̃_{k-Δl} - x̃_{k-Wx} + z̃^L_{k-Wx}; base 0 for k <= Δl - hx.
    zl: dict = {}
    if delta_l:
        for k in range(delta_l - params.view.h + 1, n + 1):
            prev = zl.get(k - period, 0.0)
            zl[k] = seq.value(k - delta_l) - seq.value(k - period) + prev

    # z̃^H_k = x̃_{k+Δh} - x̃_{k+Wx} + z̃^H_{k+Wx}; base 0 for k + Δh - lx > n.
    zh: dict = {}
    if delta_h:
        for k in range(n + params.view.l, 0, -1):
            nxt = zh.get(k + period, 0.0)
            zh[k] = seq.value(k + delta_h) - seq.value(k + period) + nxt

    for k in range(1, n + 1):
        total = seq.value(k)
        if delta_l:
            total += seq.value(k - delta_l) - zl.get(k, 0.0)
        if delta_h:
            total += seq.value(k + delta_h) - zh.get(k, 0.0)
        out[k - 1] = total
    return out


def derive(
    seq: CompleteSequence,
    target: WindowSpec,
    *,
    form: str = "explicit",
    params: Optional[MaxOAParameters] = None,
) -> List[float]:
    """Derive ``[ỹ_1 .. ỹ_n]`` for ``target`` from the materialized ``seq``.

    Args:
        form: ``"explicit"`` evaluates the telescoped sums per position
            (O(n²/Wx) lookups — the relational pattern's profile);
            ``"recursive"`` materializes the compensation sequences
            (O(n) lookups — the internal-cache strategy).
        params: pre-checked parameters (skips re-validation).

    Raises:
        DerivationError: see :func:`check_preconditions`; also raised for
            AVG views (derive SUM and COUNT separately instead).
    """
    if params is None:
        params = check_preconditions(seq.window, target)
    if seq.aggregate.duplicate_insensitive:
        return [_derive_at_minmax(seq, params, k) for k in range(1, seq.n + 1)]
    if not seq.aggregate.invertible:
        raise DerivationError(
            f"MaxOA supports SUM/COUNT/MIN/MAX views; got {seq.aggregate.name}"
        )
    if form == "recursive":
        return _derive_recursive(seq, params)
    if form != "explicit":
        raise DerivationError(f"unknown MaxOA form {form!r}")
    return [_derive_at_sum(seq, params, k) for k in range(1, seq.n + 1)]
