"""Online (streaming) sequence computation with the paper's bounded cache.

Section 2.2: "referring to the given relationship requires only three
operations independent of the window size.  The cache needs the size of
w(k)+2, holding x̃_{k-1} and x_{k-l-1} up to x_{k+h}."

:class:`SlidingWindowStream` is that operator: values are pushed one at a
time; each push performs O(1) work and retains at most ``w + 2`` numbers
(the previous output plus the raw values still inside or just left of the
window).  Because a sliding window looks ``h`` rows ahead, outputs lag the
input by ``h`` positions: ``push`` returns the next completed sequence
value once enough lookahead has arrived, and ``finish()`` flushes the last
``h`` positions when the stream ends.

:class:`CumulativeStream` is the trivial cumulative counterpart (cache of
one value).  Both agree exactly with the batch strategies — verified by
tests against :func:`repro.core.compute.compute_pipelined`.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.core.aggregates import SUM, Aggregate
from repro.core.window import WindowSpec
from repro.errors import SequenceError

__all__ = ["SlidingWindowStream", "CumulativeStream"]


class SlidingWindowStream:
    """Push-based sliding-window SUM/COUNT/AVG with an O(w) cache."""

    def __init__(self, window: WindowSpec, aggregate: Aggregate = SUM) -> None:
        if not window.is_sliding:
            raise SequenceError("SlidingWindowStream needs a sliding window")
        if not (aggregate.invertible or aggregate.name == "AVG"):
            raise SequenceError(
                f"streaming evaluation needs an invertible aggregate "
                f"(SUM/COUNT) or AVG, got {aggregate.name}"
            )
        self.window = window
        self.aggregate = aggregate
        self._l, self._h = window.l, window.h
        # Raw values from x_{k-l-1} (the value about to leave) to x_{k+h}:
        # at most w + 1 raw values; plus the running sum -> w + 2 numbers.
        # (Size is bounded by the push/emit discipline, not by the deque.)
        self._cache: deque = deque()
        self._sum = 0.0
        self._pushed = 0   # raw values received
        self._emitted = 0  # sequence values produced

    @property
    def cache_size(self) -> int:
        """Current cached numbers (raw values + running sum) — <= w + 2."""
        return len(self._cache) + 1

    def push(self, value: float) -> Optional[float]:
        """Feed ``x_{pushed+1}``; returns ``x̃_k`` once position ``k`` completes.

        The first ``h`` pushes return None (lookahead filling up).
        """
        self._pushed += 1
        self._cache.append(float(value))
        self._sum += float(value)
        if self._pushed <= self._h:
            return None
        return self._emit()

    def _emit(self) -> float:
        self._emitted += 1
        k = self._emitted
        # Remove the value that left the window: x_{k-l-1}.
        leaving_pos = k - self._l - 1
        if leaving_pos >= 1:
            # It is the oldest cached value (cache spans k-l-1 .. k+h).
            self._sum -= self._cache.popleft()
        result = self._sum
        if self.aggregate.name == "AVG":
            lo = max(k - self._l, 1)
            hi = min(k + self._h, self._pushed)
            return result / (hi - lo + 1)
        if self.aggregate.name == "COUNT":
            lo = max(k - self._l, 1)
            hi = min(k + self._h, self._pushed)
            return float(hi - lo + 1)
        return result

    def finish(self) -> List[float]:
        """Flush the trailing ``h`` positions after the last push.

        Raises:
            SequenceError: when no value was ever pushed — an empty stream
                has no sequence, matching the batch strategies' empty-input
                contract.
        """
        if self._pushed == 0:
            raise SequenceError(
                "cannot finish an empty stream (no raw values were pushed)"
            )
        out: List[float] = []
        while self._emitted < self._pushed:
            # Simulate the missing lookahead: absent raw values are 0, but
            # the window upper bound clips at n, so nothing enters; values
            # keep leaving on the left.
            out.append(self._emit())
        return out

    def process(self, values) -> List[float]:
        """Convenience: stream a whole iterable and return all outputs.

        Raises:
            SequenceError: on an empty iterable (shared empty-input
                contract of all computation strategies).
        """
        out = [v for v in (self.push(x) for x in values) if v is not None]
        out.extend(self.finish())
        return out


class CumulativeStream:
    """Push-based cumulative SUM/COUNT/AVG/MIN/MAX (cache of one value)."""

    def __init__(self, aggregate: Aggregate = SUM) -> None:
        self.aggregate = aggregate
        self._acc: Optional[float] = None
        self._count = 0

    def push(self, value: float) -> float:
        """Feed the next raw value; returns ``x̃_k`` immediately."""
        self._count += 1
        value = float(value)
        name = self.aggregate.name
        if name == "COUNT":
            return float(self._count)
        if self._acc is None:
            self._acc = value
        elif name in ("SUM", "AVG"):
            self._acc += value
        else:  # MIN / MAX
            self._acc = self.aggregate.combine(self._acc, value)
        if name == "AVG":
            return self._acc / self._count
        return self._acc

    def process(self, values) -> List[float]:
        """Stream a whole iterable and return all outputs.

        Raises:
            SequenceError: on an empty iterable (shared empty-input
                contract of all computation strategies).
        """
        out = [self.push(v) for v in values]
        if not out:
            raise SequenceError(
                "cannot compute a sequence over an empty stream"
            )
        return out
