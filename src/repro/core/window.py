"""Window specifications for reporting-function sequences (paper section 2.1).

A *window specification* fixes, for every sequence position ``k``, the range
of raw-data positions that contribute to the sequence value at ``k``.  The
paper distinguishes two shapes:

* **cumulative** windows — ``wL(k) = 0`` and ``wH(k) = k``; the window grows
  with the position (Year-To-Date style queries);
* **sliding** windows — ``wL(k) = k - l`` and ``wH(k) = k + h`` for constants
  ``l, h >= 0``; the window has the fixed size ``W = l + h + 1`` (moving
  averages, smoothing).

Both correspond to SQL ``ROWS`` frames of the ``OVER()`` clause:

=====================  ==========================================
window                 SQL frame
=====================  ==========================================
``cumulative()``       ``ROWS UNBOUNDED PRECEDING``
``sliding(l, h)``      ``ROWS BETWEEN l PRECEDING AND h FOLLOWING``
``sliding(0, h)``      ``ROWS BETWEEN CURRENT ROW AND h FOLLOWING``
``sliding(l, 0)``      ``ROWS BETWEEN l PRECEDING AND CURRENT ROW``
=====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import WindowError

__all__ = ["WindowSpec", "sliding", "cumulative"]


_CUMULATIVE = "cumulative"
_SLIDING = "sliding"


@dataclass(frozen=True)
class WindowSpec:
    """Shape of a reporting-function window.

    Instances are created through :meth:`sliding` / :meth:`cumulative` (or
    the module-level helpers of the same names) and are immutable and
    hashable, so they can key caches and view catalogs.

    Attributes:
        kind: ``"sliding"`` or ``"cumulative"``.
        l: number of preceding rows included (sliding windows only).
        h: number of following rows included (sliding windows only).
    """

    kind: str
    l: int = 0
    h: int = 0

    # -- constructors -------------------------------------------------------

    @staticmethod
    def sliding(l: int, h: int, *, allow_point: bool = False) -> "WindowSpec":
        """A sliding window ``(l, h)``: rows ``k-l .. k+h`` contribute to ``k``.

        The paper's footnote in section 2.1 assumes ``l >= 0``, ``h >= 0`` and
        ``l + h > 0``.  The degenerate *point window* ``(0, 0)`` (the identity
        sequence) is used internally by raw-data reconstruction; pass
        ``allow_point=True`` to permit it.

        Raises:
            WindowError: if the bounds violate the paper's assumptions.
        """
        if l < 0 or h < 0:
            raise WindowError(
                f"sliding window bounds must be non-negative, got (l={l}, h={h})"
            )
        if l + h == 0 and not allow_point:
            raise WindowError(
                "sliding window (0, 0) is the identity window; the paper "
                "requires l + h > 0 (pass allow_point=True to permit it)"
            )
        return WindowSpec(_SLIDING, l, h)

    @staticmethod
    def cumulative() -> "WindowSpec":
        """A cumulative window: rows ``1 .. k`` contribute to position ``k``."""
        return WindowSpec(_CUMULATIVE)

    @staticmethod
    def point() -> "WindowSpec":
        """The identity window ``(0, 0)``; each value maps to itself."""
        return WindowSpec(_SLIDING, 0, 0)

    def __post_init__(self) -> None:
        if self.kind not in (_CUMULATIVE, _SLIDING):
            raise WindowError(f"unknown window kind {self.kind!r}")
        if self.kind == _CUMULATIVE and (self.l or self.h):
            raise WindowError("cumulative windows take no (l, h) bounds")

    # -- classification ------------------------------------------------------

    @property
    def is_cumulative(self) -> bool:
        return self.kind == _CUMULATIVE

    @property
    def is_sliding(self) -> bool:
        return self.kind == _SLIDING

    @property
    def is_point(self) -> bool:
        """True for the identity window ``(0, 0)``."""
        return self.kind == _SLIDING and self.l == 0 and self.h == 0

    @property
    def is_left_bounded(self) -> bool:
        """Paper: a sequence is left-bounded if no preceding value contributes."""
        return self.kind == _SLIDING and self.l == 0

    @property
    def is_right_bounded(self) -> bool:
        """Paper: a sequence is right-bounded if no following value contributes."""
        return self.kind == _SLIDING and self.h == 0

    # -- window algebra ------------------------------------------------------

    def bounds(self, k: int) -> Tuple[int, int]:
        """``(wL(k), wH(k))`` — inclusive raw-data bounds at position ``k``.

        For cumulative windows the paper defines ``wL(k) = 0``; since raw
        values are zero outside ``1..n`` this is equivalent to starting at 1.
        """
        if self.kind == _CUMULATIVE:
            return (0, k)
        return (k - self.l, k + self.h)

    def size(self, k: int) -> int:
        """Window size ``W(k) = 1 + wH(k) - wL(k)`` at position ``k``."""
        lo, hi = self.bounds(k)
        return 1 + hi - lo

    @property
    def width(self) -> int:
        """Constant window size ``W = l + h + 1`` (sliding windows only)."""
        if self.kind != _SLIDING:
            raise WindowError("cumulative windows have no constant width")
        return self.l + self.h + 1

    def header_span(self) -> int:
        """Number of *interesting* header positions (``-h+1 .. 0`` → ``h``).

        Header positions further left only aggregate zeros (section 3.2,
        fig. 7), so a complete sequence materializes exactly this many.
        Cumulative windows need no header (their value at ``k <= 0`` is 0).
        """
        return self.h if self.kind == _SLIDING else 0

    def trailer_span(self) -> int:
        """Number of interesting trailer positions (``n+1 .. n+l`` → ``l``).

        A complete *cumulative* sequence conceptually has the constant
        trailer ``x̃_n``; it is derivable from position ``n`` and therefore
        never materialized.
        """
        return self.l if self.kind == _SLIDING else 0

    # -- SQL rendering -------------------------------------------------------

    def to_frame_sql(self) -> str:
        """Render as the SQL ``ROWS`` frame of an ``OVER()`` clause."""
        if self.kind == _CUMULATIVE:
            return "ROWS UNBOUNDED PRECEDING"
        lo = "CURRENT ROW" if self.l == 0 else f"{self.l} PRECEDING"
        hi = "CURRENT ROW" if self.h == 0 else f"{self.h} FOLLOWING"
        if self.h == 0 and self.l > 0:
            return f"ROWS {lo}"
        return f"ROWS BETWEEN {lo} AND {hi}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == _CUMULATIVE:
            return "cumulative"
        return f"sliding({self.l}, {self.h})"


def sliding(l: int, h: int, *, allow_point: bool = False) -> WindowSpec:
    """Shorthand for :meth:`WindowSpec.sliding`."""
    return WindowSpec.sliding(l, h, allow_point=allow_point)


def cumulative() -> WindowSpec:
    """Shorthand for :meth:`WindowSpec.cumulative`."""
    return WindowSpec.cumulative()
