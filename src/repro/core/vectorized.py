"""Vectorized (NumPy) sequence computation.

A third computation strategy next to section 2.2's *naive* and *pipelined*
forms: whole-sequence evaluation with NumPy primitives.  Algorithmically it
is the pipelined idea in bulk — prefix sums for SUM/COUNT/AVG (the window
sum over ``[k-l, k+h]`` is a difference of two prefix values, exactly the
fig. 5 identity), and a padded strided view for MIN/MAX.

This backend exists for scale: the pure-Python pipeline processes ~5M
rows/s; the vectorized path is one to two orders of magnitude faster on
large sequences, making warehouse-sized refreshes practical.  Results are
bit-compatible with the scalar strategies up to floating-point summation
order (verified by property tests).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM, Aggregate
from repro.core.window import WindowSpec
from repro.errors import SequenceError

__all__ = ["compute_vectorized"]


def compute_vectorized(
    raw: Sequence[float],
    window: WindowSpec,
    aggregate: Aggregate = SUM,
) -> List[float]:
    """Compute ``[x̃_1 .. x̃_n]`` with NumPy bulk operations.

    Raises:
        SequenceError: on empty input (the strategies' shared contract).
    """
    n = len(raw)
    if n == 0:
        raise SequenceError(
            "cannot compute a sequence over empty raw data (the sequence "
            "model has no position 1)"
        )
    if hasattr(raw, "as_float64"):
        # A columns.Column measure: reuse its buffer directly (zero-copy
        # when the column is float64 with no NULLs).
        values = raw.as_float64(0.0)
    else:
        values = np.asarray(raw, dtype=np.float64)

    if window.is_cumulative:
        if aggregate is SUM:
            out = np.cumsum(values)
        elif aggregate is COUNT:
            out = np.arange(1, n + 1, dtype=np.float64)
        elif aggregate is AVG:
            out = np.cumsum(values) / np.arange(1, n + 1)
        elif aggregate is MIN:
            out = np.minimum.accumulate(values)
        elif aggregate is MAX:
            out = np.maximum.accumulate(values)
        else:
            raise SequenceError(f"no vectorized form for {aggregate.name}")
        return out.tolist()

    l, h = window.l, window.h
    positions = np.arange(1, n + 1)
    lo = np.maximum(positions - l, 1)
    hi = np.minimum(positions + h, n)

    if aggregate in (SUM, AVG, COUNT):
        prefix = np.concatenate(([0.0], np.cumsum(values)))
        sums = prefix[hi] - prefix[lo - 1]
        if aggregate is SUM:
            out = sums
        elif aggregate is COUNT:
            out = (hi - lo + 1).astype(np.float64)
        else:
            out = sums / (hi - lo + 1)
        return out.tolist()

    if aggregate in (MIN, MAX):
        # Pad with the aggregate's neutral extreme so clipped edge windows
        # are unaffected, then take the extremum over a strided window view.
        pad = np.inf if aggregate is MIN else -np.inf
        padded = np.concatenate(
            (np.full(l, pad), values, np.full(h, pad))
        )
        strided = np.lib.stride_tricks.sliding_window_view(padded, l + h + 1)
        fn = np.min if aggregate is MIN else np.max
        return fn(strided, axis=1).tolist()

    raise SequenceError(f"no vectorized form for {aggregate.name}")
