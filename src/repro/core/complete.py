"""Complete simple sequences: header and trailer (paper section 3.2, fig. 7).

Definition (Complete Simple Sequence, CSS): a simple sequence is *complete*
if its representation exhibits a *header* (sequence values for positions
``-inf .. 0``) and a *trailer* (positions ``n+1 .. inf``).

Only finitely many of those values are interesting: raw data ``x_1 .. x_n``
still contributes to positions ``-h+1 .. 0`` and ``n+1 .. n+l``; everything
further out aggregates the empty window (0 under SUM semantics).
:class:`CompleteSequence` therefore materializes exactly the positions
``1-h .. n+l`` and *extrapolates* all other positions, giving a total
function ``value(k)`` over the integers — precisely what the derivation
algorithms (sections 3-5) require.

A sequence built with ``complete=False`` stores only positions ``1 .. n``
and raises :class:`~repro.errors.IncompleteSequenceError` when a derivation
touches a missing header/trailer value; the view matcher uses this to refuse
underivable rewrites.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.aggregates import SUM, Aggregate
from repro.core.sequence import SequenceSpec
from repro.core.window import WindowSpec
from repro.errors import IncompleteSequenceError, SequenceError

__all__ = ["CompleteSequence"]


class CompleteSequence:
    """Materialized sequence values including header and trailer.

    The canonical constructor is :meth:`from_raw`; :meth:`from_values` wraps
    already-computed values (e.g. read back from a warehouse table).

    Instances are mutable only through the maintenance functions in
    :mod:`repro.core.maintenance`.
    """

    def __init__(
        self,
        window: WindowSpec,
        aggregate: Aggregate,
        n: int,
        values: List[float],
        complete: bool = True,
    ) -> None:
        if n < 0:
            raise SequenceError(f"sequence cardinality must be >= 0, got {n}")
        self.window = window
        self.aggregate = aggregate
        self._n = n
        self._complete = complete
        expected = self._last() - self._first() + 1
        if len(values) != expected:
            raise SequenceError(
                f"expected {expected} stored values for positions "
                f"{self._first()}..{self._last()}, got {len(values)}"
            )
        self._values = values

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_raw(
        cls,
        raw: Sequence[float],
        window: WindowSpec,
        aggregate: Aggregate = SUM,
        *,
        complete: bool = True,
    ) -> "CompleteSequence":
        """Compute a (complete) sequence over raw values ``x_1 .. x_n``."""
        n = len(raw)
        spec = SequenceSpec(window, aggregate)
        if complete:
            first = 1 - window.header_span()
            last = n + window.trailer_span()
        else:
            first, last = 1, n
        values = [spec.value_at(raw, k) for k in range(first, last + 1)]
        return cls(window, aggregate, n, values, complete)

    @classmethod
    def from_values(
        cls,
        window: WindowSpec,
        aggregate: Aggregate,
        n: int,
        values_by_position: Sequence[Tuple[int, float]],
        *,
        complete: bool = True,
    ) -> "CompleteSequence":
        """Wrap externally computed ``(position, value)`` pairs.

        The pairs must cover exactly the stored range (``1-h .. n+l`` when
        complete, ``1 .. n`` otherwise), in any order.
        """
        tmp = cls.__new__(cls)
        tmp.window, tmp.aggregate, tmp._n, tmp._complete = window, aggregate, n, complete
        first, last = tmp._first(), tmp._last()
        slots: List[Optional[float]] = [None] * (last - first + 1)
        for pos, val in values_by_position:
            if pos < first or pos > last:
                raise SequenceError(
                    f"position {pos} outside stored range {first}..{last}"
                )
            slots[pos - first] = float(val)
        missing = [first + i for i, v in enumerate(slots) if v is None]
        if missing:
            raise IncompleteSequenceError(
                f"missing sequence values at positions {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )
        return cls(window, aggregate, n, [v for v in slots if v is not None], complete)

    # -- stored range --------------------------------------------------------

    def _first(self) -> int:
        if not self._complete:
            return 1
        return 1 - self.window.header_span()

    def _last(self) -> int:
        if not self._complete:
            return self._n
        return self._n + self.window.trailer_span()

    @property
    def n(self) -> int:
        """Cardinality of the underlying raw data."""
        return self._n

    @property
    def is_complete(self) -> bool:
        return self._complete

    @property
    def stored_range(self) -> Tuple[int, int]:
        """Inclusive range of materialized positions."""
        return self._first(), self._last()

    def positions(self) -> Iterator[int]:
        """Iterate over materialized positions in order."""
        return iter(range(self._first(), self._last() + 1))

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over materialized ``(position, value)`` pairs."""
        first = self._first()
        return ((first + i, v) for i, v in enumerate(self._values))

    def core_values(self) -> List[float]:
        """The values at positions ``1 .. n`` (the query-visible part)."""
        first = self._first()
        return self._values[1 - first : 1 - first + self._n]

    # -- total value function -------------------------------------------------

    def value(self, k: int) -> float:
        """``x̃_k`` for *any* integer ``k`` (SUM/COUNT semantics).

        Positions outside the materialized range extrapolate per the CSS
        definition: 0 for sliding windows (the window no longer intersects
        ``1..n``) and, for cumulative windows, 0 on the left and ``x̃_n`` on
        the right.

        Raises:
            IncompleteSequenceError: if the position lies in the missing
                header/trailer of an incomplete sequence.
        """
        first, last = self._first(), self._last()
        if first <= k <= last:
            return self._values[k - first]
        if not self._complete and self._needs_materialized(k):
            raise IncompleteSequenceError(
                f"position {k} requires the sequence header/trailer, but the "
                f"materialized sequence is not complete (stored {first}..{last})"
            )
        return self._extrapolate(k)

    def value_or_none(self, k: int) -> Optional[float]:
        """``x̃_k`` under MIN/MAX semantics: ``None`` where the window is empty.

        MaxOA's MIN/MAX cover must skip shifted values whose window does not
        intersect ``1..n`` instead of treating them as zero.
        """
        lo, hi = self.window.bounds(k)
        if hi < 1 or lo > self._n:
            return None
        return self.value(k)

    def _needs_materialized(self, k: int) -> bool:
        """Would a complete sequence have materialized position ``k``?"""
        return (1 - self.window.header_span()) <= k <= (
            self._n + self.window.trailer_span()
        )

    def _extrapolate(self, k: int) -> float:
        if self.window.is_cumulative:
            if k <= 0:
                return 0.0
            # k > n: the running total stays at x̃_n.
            return self._values[self._n - self._first()] if self._n else 0.0
        return 0.0

    # -- mutation hooks (used by repro.core.maintenance only) -----------------

    def _replace_values(self, n: int, values: List[float]) -> None:
        self._n = n
        expected = self._last() - self._first() + 1
        if len(values) != expected:
            raise SequenceError(
                f"maintenance produced {len(values)} values, expected {expected}"
            )
        self._values = values

    # -- comparison / debugging ------------------------------------------------

    def to_list(self) -> List[float]:
        """Copy of all stored values, ordered by position."""
        return list(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompleteSequence):
            return NotImplemented
        return (
            self.window == other.window
            and self.aggregate.name == other.aggregate.name
            and self._n == other._n
            and self._complete == other._complete
            and self._values == other._values
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "complete" if self._complete else "incomplete"
        return (
            f"CompleteSequence({self.aggregate.name} over {self.window}, "
            f"n={self._n}, {kind})"
        )
