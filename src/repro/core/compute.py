"""Computing sequence values from raw data (paper section 2.2).

Two strategies are implemented:

* :func:`compute_naive` — the explicit form: evaluate
  ``FA{x_wL(k), ..., x_wH(k)}`` independently at each position; ``O(W(k))``
  aggregate operations per position.
* :func:`compute_pipelined` — the recursive form exploiting the neighbour
  relationship of two windows:

  - cumulative: ``x̃_k = x̃_{k-1} + x_k``  (one operation per position);
  - sliding:    ``x̃_k = x̃_{k-1} + x_{k+h} - x_{k-l-1}``  (three operations
    per position, independent of the window size; needs a cache of
    ``W + 2`` values).

Both return plain lists ``[x̃_1, ..., x̃_n]`` and optionally record the number
of elementary aggregate operations in an :class:`OpCounter`, which the
ablation benchmark uses to demonstrate the O(w)-vs-O(1) claim independent of
wall clocks.

Every strategy shares one empty-input contract: the paper's sequence model
starts at position 1, so there is no sequence over zero raw values, and all
of :func:`compute_naive`, :func:`compute_pipelined`,
:func:`~repro.core.vectorized.compute_vectorized`, the streaming operators,
and the parallel subsystem raise :class:`~repro.errors.SequenceError` for
``raw == []`` instead of each picking its own degenerate behaviour.

MIN/MAX have no subtraction, so the sliding-window pipeline falls back to a
monotonic-deque algorithm (same O(1) amortised per-position cost); the paper
mentions MIN/MAX "whenever the application is permitted".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM, Aggregate
from repro.core.window import WindowSpec
from repro.errors import SequenceError

__all__ = ["OpCounter", "compute_naive", "compute_pipelined", "compute"]


def _require_nonempty(raw: Sequence[float]) -> None:
    """Shared empty-input contract of all computation strategies."""
    if len(raw) == 0:
        raise SequenceError(
            "cannot compute a sequence over empty raw data (the sequence "
            "model has no position 1)"
        )


def _as_raw(raw) -> Sequence[float]:
    """Normalize the raw input for the scalar kernels.

    Accepts plain sequences, NumPy arrays, and
    :class:`repro.columns.Column` values (NULLs become 0.0, matching the
    measure-extraction convention).  Array-backed inputs are converted to
    Python floats once up front — the scalar kernels accumulate in Python
    arithmetic, and ``np.float64`` elements would leak into the output.
    The vectorized and parallel strategies instead consume the underlying
    buffer zero-copy.
    """
    if hasattr(raw, "as_float64"):
        raw = raw.as_float64(0.0)
    if isinstance(raw, np.ndarray):
        return raw.tolist()
    return raw


@dataclass
class OpCounter:
    """Counts elementary aggregate operations performed while computing.

    Attributes:
        ops: number of binary aggregate combinations/subtractions executed.
    """

    ops: int = 0

    def add(self, n: int = 1) -> None:
        self.ops += n


def compute_naive(
    raw: Sequence[float],
    window: WindowSpec,
    aggregate: Aggregate = SUM,
    counter: Optional[OpCounter] = None,
) -> List[float]:
    """Explicit-form evaluation: ``O(W(k))`` work at each position ``k``.

    Raises:
        SequenceError: on empty input.
    """
    _require_nonempty(raw)
    raw = _as_raw(raw)
    n = len(raw)
    out: List[float] = []
    for k in range(1, n + 1):
        lo, hi = window.bounds(k)
        lo = max(lo, 1)
        hi = min(hi, n)
        values = raw[lo - 1 : hi]
        if counter is not None:
            counter.add(max(len(values) - 1, 0))
        result = aggregate.apply(values)
        out.append(0.0 if result is None else result)
    return out


def _pipelined_sum(
    raw: Sequence[float],
    l: int,
    h: int,
    counter: Optional[OpCounter],
) -> List[float]:
    """Sliding-window SUM via ``x̃_k = x̃_{k-1} + x_{k+h} - x_{k-l-1}``."""
    n = len(raw)
    out: List[float] = []
    # Seed x̃_1 explicitly (window 1-l .. 1+h clipped to data).
    acc = sum(raw[0 : min(1 + h, n)])
    if counter is not None:
        counter.add(min(1 + h, n))
    out.append(acc)
    for k in range(2, n + 1):
        entering = raw[k + h - 1] if k + h <= n else 0.0
        leaving = raw[k - l - 2] if k - l - 1 >= 1 else 0.0
        acc = acc + entering - leaving
        if counter is not None:
            counter.add(3)
        out.append(acc)
    return out


def _pipelined_minmax(
    raw: Sequence[float],
    l: int,
    h: int,
    aggregate: Aggregate,
    counter: Optional[OpCounter],
) -> List[float]:
    """Sliding-window MIN/MAX via a monotonic deque (amortised O(1)/position).

    The deque holds candidate positions whose values are monotone; the front
    is always the extremum of the current window.
    """
    n = len(raw)
    better = (lambda a, b: a <= b) if aggregate is MIN else (lambda a, b: a >= b)
    dq: deque = deque()  # positions, values monotone from front to back
    out: List[float] = []

    def push(i: int) -> None:
        while dq and better(raw[i - 1], raw[dq[-1] - 1]):
            dq.pop()
            if counter is not None:
                counter.add(1)
        dq.append(i)
        if counter is not None:
            counter.add(1)

    nxt = 1  # next raw position to feed into the deque
    for k in range(1, n + 1):
        hi = min(k + h, n)
        while nxt <= hi:
            push(nxt)
            nxt += 1
        lo = max(k - l, 1)
        while dq and dq[0] < lo:
            dq.popleft()
        out.append(raw[dq[0] - 1] if dq else 0.0)
    return out


def compute_pipelined(
    raw: Sequence[float],
    window: WindowSpec,
    aggregate: Aggregate = SUM,
    counter: Optional[OpCounter] = None,
) -> List[float]:
    """Recursive-form evaluation: O(1) amortised work per position.

    Raises:
        SequenceError: on empty input, or for aggregates with no pipelined
            form (none currently; AVG pipelines through SUM and COUNT).
    """
    _require_nonempty(raw)
    raw = _as_raw(raw)
    n = len(raw)
    if window.is_cumulative:
        if aggregate in (SUM, COUNT):
            out: List[float] = []
            acc = 0.0
            for k in range(1, n + 1):
                acc = acc + (raw[k - 1] if aggregate is SUM else 1.0)
                if counter is not None:
                    counter.add(1)
                out.append(acc)
            return out
        if aggregate is AVG:
            sums = compute_pipelined(raw, window, SUM, counter)
            return [s / k for k, s in enumerate(sums, start=1)]
        if aggregate in (MIN, MAX):
            out = []
            acc = None
            for k in range(1, n + 1):
                acc = raw[k - 1] if acc is None else aggregate.combine(acc, raw[k - 1])
                if counter is not None:
                    counter.add(1)
                out.append(acc)
            return out
        raise SequenceError(f"no pipelined form for {aggregate.name}")

    l, h = window.l, window.h
    if aggregate is SUM:
        return _pipelined_sum(raw, l, h, counter)
    if aggregate is COUNT:
        # COUNT over a sliding window is the clipped window size.
        return [
            float(min(k + h, n) - max(k - l, 1) + 1) for k in range(1, n + 1)
        ]
    if aggregate is AVG:
        sums = _pipelined_sum(raw, l, h, counter)
        return [
            s / (min(k + h, n) - max(k - l, 1) + 1)
            for k, s in enumerate(sums, start=1)
        ]
    if aggregate in (MIN, MAX):
        return _pipelined_minmax(raw, l, h, aggregate, counter)
    raise SequenceError(f"no pipelined form for {aggregate.name}")


def compute(
    raw: Sequence[float],
    window: WindowSpec,
    aggregate: Aggregate = SUM,
    *,
    strategy: str = "pipelined",
    counter: Optional[OpCounter] = None,
) -> List[float]:
    """Compute ``[x̃_1, ..., x̃_n]`` with the chosen strategy.

    Args:
        strategy: ``"pipelined"`` (default), ``"naive"``, ``"vectorized"``,
            or ``"parallel"`` (chunked execution with the default
            :class:`~repro.parallel.config.ExecutionConfig`).

    Raises:
        SequenceError: on empty input or an unknown strategy.
    """
    if strategy == "parallel":
        from repro.parallel.compute import compute_parallel

        return compute_parallel(raw, window, aggregate)
    if strategy == "pipelined":
        return compute_pipelined(raw, window, aggregate, counter)
    if strategy == "naive":
        return compute_naive(raw, window, aggregate, counter)
    if strategy == "vectorized":
        from repro.core.vectorized import compute_vectorized

        return compute_vectorized(raw, window, aggregate)
    raise SequenceError(f"unknown computation strategy {strategy!r}")
