"""Derivation planner: choose and apply a derivation algorithm (sections 3-5).

Given a materialized sequence view and a requested target window, this
module decides *whether* and *how* the target is derivable, produces an
explainable :class:`DerivationPlan`, and executes it.  It is the core-level
analogue of the SQL rewriter in :mod:`repro.sql.rewriter`.

Decision procedure (mirrors the paper's sections):

==========================  ======================================  =========
view window                 target window                           algorithm
==========================  ======================================  =========
any                         same window                             identity
cumulative                  cumulative                              identity
cumulative                  sliding ``(l, h)``                      ``cumulative`` (fig. 5)
cumulative                  point ``(0,0)`` (raw data)              ``cumulative`` (fig. 4)
sliding                     point ``(0,0)`` (raw data)              ``reconstruct`` (§3.2)
sliding ``(lx,hx)``         sliding, ``Δl,Δh >= 0``, ``<= Wx``      MaxOA or MinOA
sliding ``(lx,hx)``         sliding, some ``Δ < 0``                 MinOA only
sliding                     cumulative                              prefix tiling (MinOA variant)
==========================  ======================================  =========

MIN/MAX views restrict the choice to MaxOA; SUM/COUNT defaults to the
cheaper algorithm by estimated lookup count (MinOA is roughly half of
MaxOA — the paper's "theoretically more economical"), overridable with
``algorithm=``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import maxoa, minoa, reconstruct
from repro.core.complete import CompleteSequence
from repro.core.window import WindowSpec
from repro.errors import DerivationError

__all__ = ["DerivationPlan", "plan", "derive", "derivable", "prefix_up_to"]


def prefix_up_to(seq: CompleteSequence, j: int) -> float:
    """Raw prefix sum ``Σ_{i<=j} x_i`` reconstructed from a complete sequence.

    For cumulative views this is simply ``x̃_j``; for sliding views it is the
    MinOA *positive sequence* with its head right-justified at ``j``
    (section 5).  This single primitive makes any interval sum — and hence
    any variable-window derivation such as section 6's ordering reduction —
    computable from the materialized view alone.

    Raises:
        DerivationError: for non-invertible (MIN/MAX) views.
    """
    if not seq.aggregate.invertible:
        raise DerivationError(
            f"prefix sums require SUM/COUNT views, got {seq.aggregate.name}"
        )
    if seq.window.is_cumulative:
        return seq.value(j)
    hx = seq.window.h
    period = seq.window.width
    total = 0.0
    pos = j - hx
    while pos >= 1 - hx:
        total += seq.value(pos)
        pos -= period
    return total


@dataclass(frozen=True)
class DerivationPlan:
    """A validated, explainable derivation strategy.

    Attributes:
        algorithm: ``"identity"``, ``"cumulative"``, ``"reconstruct"``,
            ``"prefix"``, ``"maxoa"`` or ``"minoa"``.
        view: window of the materialized sequence.
        target: requested window.
        estimated_lookups: rough count of sequence-value accesses for a
            length-``n`` derivation, as a function ``f(n)`` evaluated at
            ``n=1000`` (used only for ranking strategies).
        notes: human-readable remarks (e.g. paper-precondition status).
    """

    algorithm: str
    view: WindowSpec
    target: WindowSpec
    estimated_lookups: float
    notes: tuple = field(default_factory=tuple)

    def describe(self) -> str:
        """One-line explanation, for EXPLAIN output."""
        msg = f"{self.algorithm}: derive {self.target} from materialized {self.view}"
        if self.notes:
            msg += " [" + "; ".join(self.notes) + "]"
        return msg


_RANKING_N = 1000.0


def _candidate_plans(
    view: WindowSpec, target: WindowSpec, *, minmax: bool
) -> List[DerivationPlan]:
    n = _RANKING_N
    plans: List[DerivationPlan] = []
    if view == target:
        return [DerivationPlan("identity", view, target, n)]
    if view.is_cumulative:
        if target.is_sliding:
            algo = "cumulative"
            if minmax:
                raise DerivationError(
                    "sliding windows are not derivable from cumulative MIN/MAX "
                    "views (no subtraction for semi-algebraic aggregates)"
                )
            return [DerivationPlan(algo, view, target, 2 * n)]
        raise DerivationError(f"cannot derive {target} from cumulative view")
    # view is sliding
    wx = view.width
    if target.is_cumulative:
        if minmax:
            raise DerivationError(
                "cumulative targets are not derivable from sliding MIN/MAX views"
            )
        plans.append(
            DerivationPlan(
                "prefix",
                view,
                target,
                n * n / (2 * wx),
                notes=("positive prefix tiling only (MinOA specialisation)",),
            )
        )
        return plans
    # sliding -> sliding
    if target.is_point:
        if minmax:
            raise DerivationError(
                "raw data is not reconstructible from MIN/MAX views"
            )
        plans.append(
            DerivationPlan("reconstruct", view, target, n * n / wx)
        )
        return plans
    delta_l = target.l - view.l
    delta_h = target.h - view.h
    maxoa_ok = 0 <= delta_l <= wx and 0 <= delta_h <= wx
    if maxoa_ok:
        params = maxoa.check_preconditions(view, target)
        notes = ()
        if not params.meets_paper_bound:
            notes = (
                "outside the paper's stated bound ly<=hx-1+2lx (valid per the "
                "telescoping argument, Δ<=Wx)",
            )
        plans.append(
            DerivationPlan("maxoa", view, target, 2 * n * n / wx, notes=notes)
        )
    if not minmax:
        plans.append(DerivationPlan("minoa", view, target, n * n / wx))
    if not plans:
        raise DerivationError(
            f"{target} is not derivable from a MIN/MAX view of {view}: MaxOA "
            f"preconditions fail (Δl={delta_l}, Δh={delta_h}, Wx={wx}) and "
            "MinOA does not apply to MIN/MAX"
        )
    return plans


def plan(
    view: WindowSpec,
    target: WindowSpec,
    *,
    minmax: bool = False,
    algorithm: str = "auto",
) -> DerivationPlan:
    """Plan a derivation of ``target`` from a view window ``view``.

    Args:
        minmax: True when the view aggregate is MIN or MAX (restricts the
            algorithm choice).
        algorithm: ``"auto"`` (cheapest valid), or force ``"maxoa"`` /
            ``"minoa"``.

    Raises:
        DerivationError: when no algorithm can derive the target.
    """
    candidates = _candidate_plans(view, target, minmax=minmax)
    if algorithm == "auto":
        return min(candidates, key=lambda p: p.estimated_lookups)
    for candidate in candidates:
        if candidate.algorithm == algorithm:
            return candidate
    raise DerivationError(
        f"algorithm {algorithm!r} cannot derive {target} from {view} "
        f"(valid: {[c.algorithm for c in candidates]})"
    )


def derivable(view: WindowSpec, target: WindowSpec, *, minmax: bool = False) -> bool:
    """True when some algorithm derives ``target`` from ``view``."""
    try:
        plan(view, target, minmax=minmax)
        return True
    except DerivationError:
        return False


def derive(
    seq: CompleteSequence,
    target: WindowSpec,
    *,
    algorithm: str = "auto",
    form: str = "explicit",
    chosen: Optional[DerivationPlan] = None,
) -> List[float]:
    """Derive ``[ỹ_1 .. ỹ_n]`` from a materialized sequence.

    The one-stop entry point: plans (or takes a pre-built plan) and executes.

    Raises:
        DerivationError: underivable combination.
        IncompleteSequenceError: the plan needed missing header/trailer rows.
    """
    the_plan = chosen or plan(
        seq.window,
        target,
        minmax=seq.aggregate.duplicate_insensitive,
        algorithm=algorithm,
    )
    algo = the_plan.algorithm
    if algo == "identity":
        return seq.core_values()
    if algo == "cumulative":
        return reconstruct.sliding_from_cumulative(seq, target)
    if algo == "reconstruct":
        style = "explicit" if form == "explicit" else "recursive"
        return reconstruct.raw_from_sliding(seq, form=style)
    if algo == "prefix":
        return _prefix_from_sliding(seq, form=form)
    if algo == "maxoa":
        return maxoa.derive(seq, target, form=form)
    if algo == "minoa":
        return minoa.derive(seq, target, form=form)
    raise DerivationError(f"unknown algorithm {algo!r}")  # pragma: no cover


def _prefix_from_sliding(seq: CompleteSequence, *, form: str) -> List[float]:
    """Cumulative target from a sliding view: positive tiling of MinOA.

    ``ỹ_k = Σ_{j<=k} x_j = Σ_{i>=0} x̃_{k-hx-i·Wx}`` — the positive sequence
    with its head right-justified at ``k``.
    """
    n = seq.n
    hx = seq.window.h
    period = seq.window.width
    if form == "recursive":
        prefix = {}
        out = []
        for j in range(1 - hx, n + 1):
            prefix[j] = seq.value(j) + prefix.get(j - period, 0.0)
        for k in range(1, n + 1):
            out.append(prefix.get(k - hx, 0.0))
        return out
    out = []
    for k in range(1, n + 1):
        total = 0.0
        pos = k - hx
        while pos >= 1 - hx:
            total += seq.value(pos)
            pos -= period
        out.append(total)
    return out
