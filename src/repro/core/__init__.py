"""Core sequence algebra: the paper's primary contribution.

This package is self-contained (no engine dependencies) and implements:

* the sequence model and window algebra (:mod:`~repro.core.window`,
  :mod:`~repro.core.sequence`),
* naive and pipelined computation (:mod:`~repro.core.compute`),
* complete sequences with header/trailer (:mod:`~repro.core.complete`),
* incremental view maintenance (:mod:`~repro.core.maintenance`),
* raw-data reconstruction (:mod:`~repro.core.reconstruct`),
* the MaxOA and MinOA derivation algorithms (:mod:`~repro.core.maxoa`,
  :mod:`~repro.core.minoa`) and the planner over them
  (:mod:`~repro.core.derivation`),
* multi-column reporting sequences with ordering/partitioning reduction
  (:mod:`~repro.core.positions`, :mod:`~repro.core.reporting`).
"""

from repro.core.aggregates import ALL_AGGREGATES, AVG, COUNT, MAX, MIN, SUM, Aggregate, by_name
from repro.core.complete import CompleteSequence
from repro.core.compute import OpCounter, compute, compute_naive, compute_pipelined
from repro.core.derivation import DerivationPlan, derivable, derive, plan, prefix_up_to
from repro.core.maintenance import MaintenanceResult, apply_delete, apply_insert, apply_update
from repro.core.positions import PositionFunction
from repro.core.reconstruct import (
    raw_at_from_cumulative,
    raw_at_from_sliding,
    raw_from_cumulative,
    raw_from_sliding,
    sliding_from_cumulative,
)
from repro.core.reporting import (
    PartitionData,
    ReportingSequence,
    ordering_reduction,
    partitioning_reduction,
)
from repro.core.sequence import CustomBoundsSequenceSpec, SequenceSpec, raw_value
from repro.core.streaming import CumulativeStream, SlidingWindowStream
from repro.core.vectorized import compute_vectorized
from repro.core.window import WindowSpec, cumulative, sliding

__all__ = [
    "ALL_AGGREGATES",
    "AVG",
    "Aggregate",
    "COUNT",
    "CompleteSequence",
    "CumulativeStream",
    "CustomBoundsSequenceSpec",
    "DerivationPlan",
    "MAX",
    "MIN",
    "MaintenanceResult",
    "OpCounter",
    "PartitionData",
    "PositionFunction",
    "ReportingSequence",
    "SUM",
    "SequenceSpec",
    "SlidingWindowStream",
    "WindowSpec",
    "apply_delete",
    "apply_insert",
    "apply_update",
    "by_name",
    "compute",
    "compute_naive",
    "compute_pipelined",
    "compute_vectorized",
    "cumulative",
    "derivable",
    "derive",
    "ordering_reduction",
    "partitioning_reduction",
    "plan",
    "prefix_up_to",
    "raw_at_from_cumulative",
    "raw_at_from_sliding",
    "raw_from_cumulative",
    "raw_from_sliding",
    "raw_value",
    "sliding",
    "sliding_from_cumulative",
]
