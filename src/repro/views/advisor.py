"""View advisor: which reporting-function view should be materialized?

The paper's introduction places view derivation inside the classical
materialized-view-design loop ([2], [9] in its references): a warehouse
proposes views so that the expected query workload is answered cheaply.
This module closes that loop for sequence views: given a weighted workload
of window shapes, it enumerates candidate view windows, costs each query
under the derivation planner (:mod:`repro.core.derivation`), and ranks the
candidates.

Cost model (per query, sequence length normalised to n=1000):

* answered by derivation — the planner's ``estimated_lookups`` (identity ≈
  n; MaxOA/MinOA ≈ n²/Wx; reductions likewise);
* not derivable (e.g. a wider MIN/MAX window) — a configurable
  ``fallback_cost`` representing recomputation from base data, or candidate
  disqualification when ``fallback_cost=None``.

The advisor is deliberately workload-driven and transparent: every
recommendation carries its per-query plan so the DBA can audit the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.derivation import plan as derivation_plan
from repro.core.window import WindowSpec, cumulative, sliding
from repro.errors import DerivationError

__all__ = ["WorkloadQuery", "QueryPlanCost", "Recommendation", "candidate_windows", "recommend"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One window shape in the expected workload.

    Attributes:
        window: the requested window.
        weight: relative frequency/importance (default 1).
        minmax: True when the query uses MIN/MAX (restricts derivability).
    """

    window: WindowSpec
    weight: float = 1.0
    minmax: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"query weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class QueryPlanCost:
    """How one workload query would be answered from a candidate view."""

    query: WorkloadQuery
    algorithm: str  # planner algorithm, or "fallback"
    cost: float     # weighted


@dataclass(frozen=True)
class Recommendation:
    """A candidate view window with its audited workload cost.

    Attributes:
        window: the view window to materialize.
        total_cost: sum of weighted per-query costs (lower is better).
        covered: number of workload queries answerable by derivation.
        per_query: the audit trail.
    """

    window: WindowSpec
    total_cost: float
    covered: int
    per_query: Tuple[QueryPlanCost, ...] = field(default=())

    def describe(self) -> str:
        lines = [
            f"materialize {self.window}: total weighted cost "
            f"{self.total_cost:.0f}, covers {self.covered}/{len(self.per_query)} queries"
        ]
        for pq in self.per_query:
            lines.append(
                f"  {pq.query.window} (w={pq.query.weight:g}) -> "
                f"{pq.algorithm} [{pq.cost:.0f}]"
            )
        return "\n".join(lines)


def candidate_windows(workload: Sequence[WorkloadQuery]) -> List[WindowSpec]:
    """Candidate view windows for a workload.

    Candidates: each query's own window; the *envelope* (max l, max h — can
    serve narrower MIN/MAX windows only via MaxOA when close enough, SUM
    always via MinOA); the *core* (min l, min h — everything else derives by
    widening); and the cumulative window (prefix sums answer any SUM window
    per fig. 5).
    """
    sliding_windows = [q.window for q in workload if q.window.is_sliding]
    seen = []

    def add(w: WindowSpec) -> None:
        if w not in seen:
            seen.append(w)

    for q in workload:
        add(q.window)
    if sliding_windows:
        max_l = max(w.l for w in sliding_windows)
        max_h = max(w.h for w in sliding_windows)
        min_l = min(w.l for w in sliding_windows)
        min_h = min(w.h for w in sliding_windows)
        if max_l + max_h > 0:
            add(sliding(max_l, max_h))
        if min_l + min_h > 0:
            add(sliding(min_l, min_h))
    add(cumulative())
    return seen


def _query_cost(
    candidate: WindowSpec, query: WorkloadQuery, fallback_cost: Optional[float]
) -> Optional[QueryPlanCost]:
    try:
        dplan = derivation_plan(candidate, query.window, minmax=query.minmax)
        return QueryPlanCost(query, dplan.algorithm, dplan.estimated_lookups * query.weight)
    except DerivationError:
        if fallback_cost is None:
            return None
        return QueryPlanCost(query, "fallback", fallback_cost * query.weight)


def recommend(
    workload: Sequence[WorkloadQuery],
    *,
    top: int = 3,
    fallback_cost: Optional[float] = 5_000_000.0,
) -> List[Recommendation]:
    """Rank candidate view windows for the workload, best first.

    Args:
        top: number of recommendations to return.
        fallback_cost: cost charged for queries the candidate cannot serve
            (None = such candidates are disqualified entirely).

    Raises:
        ValueError: on an empty workload.
    """
    if not workload:
        raise ValueError("the advisor needs a non-empty workload")
    out: List[Recommendation] = []
    for candidate in candidate_windows(workload):
        per_query: List[QueryPlanCost] = []
        disqualified = False
        for query in workload:
            cost = _query_cost(candidate, query, fallback_cost)
            if cost is None:
                disqualified = True
                break
            per_query.append(cost)
        if disqualified:
            continue
        covered = sum(1 for pq in per_query if pq.algorithm != "fallback")
        out.append(
            Recommendation(
                candidate,
                sum(pq.cost for pq in per_query),
                covered,
                tuple(per_query),
            )
        )
    out.sort(key=lambda r: (r.total_cost, str(r.window)))
    return out[:top]
