"""View advisor: which reporting-function view should be materialized?

The paper's introduction places view derivation inside the classical
materialized-view-design loop ([2], [9] in its references): a warehouse
proposes views so that the expected query workload is answered cheaply.
This module closes that loop for sequence views: given a weighted workload
of window shapes, it enumerates candidate view windows, costs each query
under the derivation planner (:mod:`repro.core.derivation`), and ranks the
candidates.

Cost model (per query, sequence length normalised to n=1000):

* answered by derivation — the planner's ``estimated_lookups`` (identity ≈
  n; MaxOA/MinOA ≈ n²/Wx; reductions likewise);
* not derivable (e.g. a wider MIN/MAX window) — a configurable
  ``fallback_cost`` representing recomputation from base data, or candidate
  disqualification when ``fallback_cost=None``.

The advisor is deliberately workload-driven and transparent: every
recommendation carries its per-query plan so the DBA can audit the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.derivation import plan as derivation_plan
from repro.core.window import WindowSpec, cumulative, sliding
from repro.errors import DerivationError

__all__ = ["WorkloadQuery", "QueryPlanCost", "Recommendation", "candidate_windows", "recommend"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One window shape in the expected workload.

    Attributes:
        window: the requested window.
        weight: relative frequency/importance (default 1).
        minmax: True when the query uses MIN/MAX (restricts derivability).
    """

    window: WindowSpec
    weight: float = 1.0
    minmax: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"query weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class QueryPlanCost:
    """How one workload query would be answered from a candidate view."""

    query: WorkloadQuery
    algorithm: str  # planner algorithm, or "fallback"
    cost: float     # weighted


@dataclass(frozen=True)
class Recommendation:
    """A candidate view window with its audited workload cost.

    Attributes:
        window: the view window to materialize.
        total_cost: sum of weighted per-query costs (lower is better).
        covered: number of workload queries answerable by derivation.
        per_query: the audit trail.
    """

    window: WindowSpec
    total_cost: float
    covered: int
    per_query: Tuple[QueryPlanCost, ...] = field(default=())

    def describe(self) -> str:
        lines = [
            f"materialize {self.window}: total weighted cost "
            f"{self.total_cost:.0f}, covers {self.covered}/{len(self.per_query)} queries"
        ]
        for pq in self.per_query:
            lines.append(
                f"  {pq.query.window} (w={pq.query.weight:g}) -> "
                f"{pq.algorithm} [{pq.cost:.0f}]"
            )
        return "\n".join(lines)


def candidate_windows(workload: Sequence[WorkloadQuery]) -> List[WindowSpec]:
    """Candidate view windows for a workload.

    Candidates: each query's own window; the *envelope* (max l, max h — can
    serve narrower MIN/MAX windows only via MaxOA when close enough, SUM
    always via MinOA); the *core* (min l, min h — everything else derives by
    widening); and the cumulative window (prefix sums answer any SUM window
    per fig. 5).
    """
    sliding_windows = [q.window for q in workload if q.window.is_sliding]
    seen = []

    def add(w: WindowSpec) -> None:
        if w not in seen:
            seen.append(w)

    for q in workload:
        add(q.window)
    if sliding_windows:
        max_l = max(w.l for w in sliding_windows)
        max_h = max(w.h for w in sliding_windows)
        min_l = min(w.l for w in sliding_windows)
        min_h = min(w.h for w in sliding_windows)
        if max_l + max_h > 0:
            add(sliding(max_l, max_h))
        if min_l + min_h > 0:
            add(sliding(min_l, min_h))
    add(cumulative())
    return seen


def _lookups_at(dplan, n: float) -> float:
    """Re-evaluate a plan's lookup formula at a *real* sequence length.

    ``DerivationPlan.estimated_lookups`` is the per-algorithm formula
    evaluated at the normalised n=1000 (good enough for ranking
    strategies against each other); when table statistics supply the
    actual row count, this evaluates the *same* formulas at that length
    so candidate views are compared at the workload's true scale.
    """
    wx = float(dplan.view.width) if dplan.view.is_sliding else 1.0
    algo = dplan.algorithm
    if algo == "identity":
        return n
    if algo == "cumulative":
        return 2.0 * n
    if algo == "prefix":
        return n * n / (2.0 * wx)
    if algo == "maxoa":
        return 2.0 * n * n / wx
    if algo == "minoa":
        return n * n / wx
    # reconstruct
    return n * n / wx


def _query_cost(
    candidate: WindowSpec,
    query: WorkloadQuery,
    fallback_cost: Optional[float],
    row_count: Optional[int],
) -> Optional[QueryPlanCost]:
    try:
        dplan = derivation_plan(candidate, query.window, minmax=query.minmax)
        lookups = (
            _lookups_at(dplan, float(row_count))
            if row_count is not None
            else dplan.estimated_lookups
        )
        return QueryPlanCost(query, dplan.algorithm, lookups * query.weight)
    except DerivationError:
        if fallback_cost is None:
            return None
        if row_count is not None:
            # Statistics-informed fallback: recomputing from base data costs
            # one scan + sort + pipelined window pass over the real table.
            from repro.stats.cost import CostModel

            cm = CostModel()
            n = float(row_count)
            fallback_cost = (
                cm.scan_cost(n) + cm.sort_cost(n) + cm.window_cost("pipelined", n)
            )
        return QueryPlanCost(query, "fallback", fallback_cost * query.weight)


def recommend(
    workload: Sequence[WorkloadQuery],
    *,
    top: int = 3,
    fallback_cost: Optional[float] = 5_000_000.0,
    row_count: Optional[int] = None,
) -> List[Recommendation]:
    """Rank candidate view windows for the workload, best first.

    Args:
        top: number of recommendations to return.
        fallback_cost: cost charged for queries the candidate cannot serve
            (None = such candidates are disqualified entirely).
        row_count: actual base-sequence length from table statistics; when
            given, per-query costs are evaluated at this length (and the
            fallback is priced as a real base recompute) instead of the
            normalised n=1000 ranking numbers.

    Raises:
        ValueError: on an empty workload.
    """
    if not workload:
        raise ValueError("the advisor needs a non-empty workload")
    out: List[Recommendation] = []
    for candidate in candidate_windows(workload):
        per_query: List[QueryPlanCost] = []
        disqualified = False
        for query in workload:
            cost = _query_cost(candidate, query, fallback_cost, row_count)
            if cost is None:
                disqualified = True
                break
            per_query.append(cost)
        if disqualified:
            continue
        covered = sum(1 for pq in per_query if pq.algorithm != "fallback")
        out.append(
            Recommendation(
                candidate,
                sum(pq.cost for pq in per_query),
                covered,
                tuple(per_query),
            )
        )
    out.sort(key=lambda r: (r.total_cost, str(r.window)))
    return out[:top]
