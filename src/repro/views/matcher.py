"""Query/view matching: decide whether a view can answer a reporting query.

Section 3 of the paper: "storing materialized views with reporting
functions requires that incoming queries are able to take advantage of the
existence of the materialized views and can be rewritten by utilizing
these views".  The matcher checks, for one reporting-function query and one
candidate view:

1. same base table and (textually) same selection;
2. same measure column and aggregate;
3. compatible partitioning scheme — equal, or the query's partition columns
   are a subset of the view's (**partitioning reduction**, section 6.2,
   requires a complete view);
4. compatible ordering scheme — equal, or a proper prefix of the view's
   (**ordering reduction**, section 6.1);
5. the query window derivable from the view window
   (:func:`repro.core.derivation.plan` — identity / cumulative / MaxOA /
   MinOA / reconstruction).

The result is a ranked list of :class:`Match` objects; the rewriter executes
the best one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.derivation import DerivationPlan, plan as derivation_plan
from repro.core.window import WindowSpec
from repro.errors import DerivationError
from repro.relational.expr import ColumnRef, Expr
from repro.sql.ast_nodes import WindowCall
from repro.views.materialized import MaterializedSequenceView

__all__ = ["QueryShape", "Match", "match_view", "rank_matches"]


@dataclass(frozen=True)
class QueryShape:
    """The normalised reporting-function query the matcher reasons about."""

    base_table: str
    value_col: str
    func: str
    partition_by: Tuple[str, ...]
    order_by: Tuple[str, ...]
    window: WindowSpec
    where_text: Optional[str]

    @classmethod
    def from_call(
        cls, base_table: str, call: WindowCall, where: Optional[Expr]
    ) -> Optional["QueryShape"]:
        """Extract the shape from a window call; None when not rewritable
        (non-column arguments/partitions/orders)."""
        if call.arg is None or not isinstance(call.arg, ColumnRef):
            return None
        partition = []
        for p in call.over.partition_by:
            if not isinstance(p, ColumnRef):
                return None
            partition.append(p.name)
        order = []
        for o in call.over.order_by:
            if not isinstance(o.expr, ColumnRef) or not o.ascending:
                return None
            order.append(o.expr.name)
        if not order:
            return None
        try:
            window = call.over.window()
        except Exception:
            return None
        return cls(
            base_table=base_table,
            value_col=call.arg.name,
            func=call.func,
            partition_by=tuple(partition),
            order_by=tuple(order),
            window=window,
            where_text=str(where) if where is not None else None,
        )


@dataclass(frozen=True)
class Match:
    """One way of answering the query from a view.

    Attributes:
        view: the matched materialized view.
        kind: ``"direct"``, ``"partition_reduction"`` or
            ``"ordering_reduction"``.
        derivation: the window-level derivation plan (for ``direct``; the
            reductions recompute the target window after collapsing).
        cost: heuristic for ranking (lower is better).
    """

    view: MaterializedSequenceView
    kind: str
    derivation: Optional[DerivationPlan]
    cost: float

    def describe(self) -> str:
        base = f"view {view_name(self.view)} [{self.kind}]"
        if self.derivation is not None:
            base += f": {self.derivation.describe()}"
        return base


def view_name(view: MaterializedSequenceView) -> str:
    """Stable display name of a view (ranking tiebreaker)."""
    return view.definition.name


def match_view(shape: QueryShape, view: MaterializedSequenceView) -> Optional[Match]:
    """Check one candidate view against the query shape.

    Quarantined views never match — that is the degradation half of the
    self-healing contract: a suspect view silently drops out of routing
    and the query is answered from base data instead.
    """
    if view.quarantined:
        return None
    d = view.definition
    if d.base_table != shape.base_table:
        return None
    if d.value_col != shape.value_col:
        return None
    if d.where_text != shape.where_text:
        return None
    if d.aggregate_name != shape.func:
        return None
    minmax = d.aggregate.duplicate_insensitive

    same_partition = tuple(d.partition_by) == shape.partition_by
    partition_subset = set(shape.partition_by) < set(d.partition_by)
    same_order = tuple(d.order_by) == shape.order_by
    order_prefix = (
        len(shape.order_by) < len(d.order_by)
        and tuple(d.order_by[: len(shape.order_by)]) == shape.order_by
    )

    if same_partition and same_order:
        try:
            dplan = derivation_plan(d.window, shape.window, minmax=minmax)
        except DerivationError:
            return None
        return Match(view, "direct", dplan, cost=dplan.estimated_lookups)

    if partition_subset and same_order:
        if not view.complete or minmax or not d.aggregate.invertible:
            return None
        # Partitioning reduction reconstructs raw data per partition; cost
        # is dominated by that reconstruction.
        return Match(view, "partition_reduction", None, cost=5e5)

    if same_partition and order_prefix:
        if minmax or not d.aggregate.invertible:
            return None
        return Match(view, "ordering_reduction", None, cost=2e5)

    return None


def rank_matches(
    shape: QueryShape, views: List[MaterializedSequenceView]
) -> List[Match]:
    """All candidate matches, best (cheapest) first; ties broken by name."""
    matches = [m for m in (match_view(shape, v) for v in views) if m is not None]
    matches.sort(key=lambda m: (m.cost, view_name(m.view)))
    return matches
