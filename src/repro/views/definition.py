"""Definitions of reporting-function views.

A :class:`SequenceViewDefinition` captures everything needed to materialize
and *match* a reporting-function view: the base table, an optional
selection, the measure column, the partitioning and ordering schemes, the
window, and the aggregate.  Definitions can be built programmatically or
extracted from a SQL text of the shape::

    SELECT ..., AGG(value) OVER (PARTITION BY p, ... ORDER BY o, ...
                                 ROWS ...) AS name
    FROM base_table
    [WHERE <selection>]

(one reporting function, one table — the canonical materialized-view shape
in the paper's setting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.aggregates import Aggregate, by_name
from repro.core.window import WindowSpec
from repro.errors import ViewDefinitionError
from repro.relational.expr import ColumnRef, Expr
from repro.sql.ast_nodes import SelectStmt, WindowCall
from repro.sql.parser import parse_select

__all__ = ["SequenceViewDefinition"]


@dataclass(frozen=True)
class SequenceViewDefinition:
    """Logical definition of a materialized reporting-function view.

    Attributes:
        name: view name (unique per warehouse).
        base_table: the table the sequence is computed over.
        value_col: measure column aggregated by the reporting function.
        order_by: ordering columns (fig. 1's order clause).
        partition_by: partitioning columns (may be empty).
        window: the lowered window specification.
        aggregate_name: SUM/COUNT/AVG/MIN/MAX.
        where: optional selection predicate applied before sequencing
            (matched textually against incoming queries).
    """

    name: str
    base_table: str
    value_col: str
    order_by: Tuple[str, ...]
    partition_by: Tuple[str, ...] = ()
    window: WindowSpec = field(default_factory=WindowSpec.cumulative)
    aggregate_name: str = "SUM"
    where: Optional[Expr] = None

    def __post_init__(self) -> None:
        if not self.order_by:
            raise ViewDefinitionError(
                f"view {self.name!r}: a reporting-function view needs at "
                "least one ordering column"
            )
        by_name(self.aggregate_name)  # validates

    @property
    def aggregate(self) -> Aggregate:
        return by_name(self.aggregate_name)

    @property
    def storage_table(self) -> str:
        """Name of the warehouse table holding the materialized rows."""
        return f"__mv_{self.name}"

    @property
    def where_text(self) -> Optional[str]:
        return str(self.where) if self.where is not None else None

    # -- construction from SQL -----------------------------------------------------

    @classmethod
    def from_sql(cls, name: str, sql: str) -> "SequenceViewDefinition":
        """Extract a view definition from a defining SELECT.

        Raises:
            ViewDefinitionError: when the statement is not a recognisable
                single-table, single-reporting-function view definition.
        """
        stmt = parse_select(sql)
        return cls.from_statement(name, stmt)

    @classmethod
    def from_statement(cls, name: str, stmt: SelectStmt) -> "SequenceViewDefinition":
        if len(stmt.tables) != 1:
            raise ViewDefinitionError(
                f"view {name!r}: expected exactly one base table, got "
                f"{[t.name for t in stmt.tables]}"
            )
        if stmt.group_by or stmt.having is not None:
            raise ViewDefinitionError(
                f"view {name!r}: GROUP BY/HAVING are not part of a sequence "
                "view definition (apply them in a staging table first)"
            )
        calls = stmt.window_calls()
        if len(calls) != 1:
            raise ViewDefinitionError(
                f"view {name!r}: expected exactly one reporting function, "
                f"got {len(calls)}"
            )
        call: WindowCall = calls[0]
        if call.arg is None or not isinstance(call.arg, ColumnRef):
            raise ViewDefinitionError(
                f"view {name!r}: the reporting function must aggregate a "
                "plain column"
            )
        partition = []
        for p in call.over.partition_by:
            if not isinstance(p, ColumnRef):
                raise ViewDefinitionError(
                    f"view {name!r}: PARTITION BY must list plain columns, "
                    f"got {p}"
                )
            partition.append(p.name)
        order = []
        for o in call.over.order_by:
            if not isinstance(o.expr, ColumnRef) or not o.ascending:
                raise ViewDefinitionError(
                    f"view {name!r}: ORDER BY must list plain ascending "
                    f"columns, got {o}"
                )
            order.append(o.expr.name)
        return cls(
            name=name,
            base_table=stmt.tables[0].name,
            value_col=call.arg.name,
            order_by=tuple(order),
            partition_by=tuple(partition),
            window=call.over.window(),
            aggregate_name=call.func,
            where=stmt.where,
        )

    def describe(self) -> str:
        parts = [
            f"{self.aggregate_name}({self.value_col}) OVER (",
        ]
        if self.partition_by:
            parts.append("PARTITION BY " + ", ".join(self.partition_by) + " ")
        parts.append("ORDER BY " + ", ".join(self.order_by) + " ")
        parts.append(self.window.to_frame_sql() + ")")
        text = "".join(parts) + f" FROM {self.base_table}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text
