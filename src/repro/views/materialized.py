"""Materialized reporting-function views: storage and refresh.

A materialized view keeps two synchronized representations:

* a **storage table** in the warehouse database named
  ``__mv_<view>`` with columns ``(partition..., order..., pos, val)`` —
  the *complete* sequence per partition, i.e. core positions ``1..n`` plus
  header (``1-h..0``) and trailer (``n+1..n+l``) rows whose ordering
  columns are NULL.  The relational rewrite patterns (figs. 10/13) run
  against this table.
* an in-memory :class:`~repro.core.reporting.ReportingSequence` mirror used
  by the in-memory derivation forms, by incremental maintenance, and to
  label derived values with their original ordering keys.

``refresh()`` rebuilds both from the base table; the incremental
maintenance entry points in :mod:`repro.views.maintenance` keep them in
sync under point updates/inserts/deletes.

Refresh is **crash-consistent**: every rebuild is staged into an
epoch-versioned *shadow* storage table (``__mv_<view>__e<epoch>``) and the
in-memory mirror/raw replacements are prepared on the side; only when the
shadow is complete does a single atomic commit — a catalog rename plus
three attribute rebindings — publish the new epoch.  An interruption at
*any* point (including the injected ``refresh_interrupt`` fault) leaves the
view wholly at the old epoch, never a torn band; the half-built shadow is
dropped.

Views also carry **quarantine** state: when verification finds
discrepancies or a refresh/maintenance step fails, the warehouse marks the
view quarantined, the matcher stops offering it to the rewriter (queries
transparently fall back to base data), and ``repair()`` — a refresh plus a
re-verify — reinstates it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.complete import CompleteSequence
from repro.core.reporting import PartitionData, ReportingSequence
from repro.errors import ViewError
from repro.relational.engine import Database
from repro.relational.schema import Column
from repro.relational.types import BOOLEAN, FLOAT, INTEGER
from repro.views.definition import SequenceViewDefinition

__all__ = ["MaterializedSequenceView"]

Key = Tuple[object, ...]


class MaterializedSequenceView:
    """One materialized reporting-function view inside a warehouse."""

    def __init__(
        self,
        db: Database,
        definition: SequenceViewDefinition,
        *,
        complete: bool = True,
        exec_config=None,
    ) -> None:
        self.db = db
        self.definition = definition
        self.complete = complete
        # Parallel ExecutionConfig (or None): used by refresh() and by the
        # MIN/MAX band recomputation in repro.views.maintenance.
        self.exec_config = exec_config
        self.reporting: Optional[ReportingSequence] = None
        self.raw: Dict[Key, List[float]] = {}
        # Epoch counter: bumped by every committed refresh.  Epoch 0 means
        # "never refreshed" — the storage table does not exist yet.
        self.epoch = 0
        self.quarantined = False
        self.quarantine_reason: Optional[str] = None
        self.refresh()

    # -- construction from an existing dump -----------------------------------

    @classmethod
    def from_storage(
        cls,
        db: Database,
        definition: SequenceViewDefinition,
        *,
        complete: bool = True,
        exec_config=None,
    ) -> "MaterializedSequenceView":
        """Rehydrate a view from its dumped storage table, *without* a
        refresh.

        ``DataWarehouse.load`` normally replaces dumped storage with a
        fresh recomputation, which guarantees base/view consistency but is
        not bit-identical to incrementally-maintained values (float
        addition is non-associative, so ``old - x + x'`` can differ from a
        recompute in the last ulp).  Recovery replays a WAL whose records
        carry digests of the *primary's live* state, so it must preserve
        the dumped bits exactly; this constructor wraps the stored values
        via :meth:`CompleteSequence.from_values` instead of recomputing.

        Raises:
            ViewError: the storage table is missing (never refreshed).
        """
        d = definition
        if not db.catalog.has_table(d.storage_table):
            raise ViewError(
                f"cannot rehydrate view {d.name!r}: storage table "
                f"{d.storage_table!r} is not in the dump"
            )
        view = cls.__new__(cls)
        view.db = db
        view.definition = definition
        view.complete = complete
        view.exec_config = exec_config
        view.quarantined = False
        view.quarantine_reason = None
        view.epoch = 1

        part_arity = len(d.partition_by)
        order_arity = len(d.order_by)
        groups: Dict[Key, List[Tuple[int, float, bool, Key]]] = {}
        for row in db.table(d.storage_table).rows:
            pkey = tuple(row[:part_arity])
            okey = tuple(row[part_arity:part_arity + order_arity])
            pos = row[part_arity + order_arity]
            value = row[part_arity + order_arity + 1]
            core = bool(row[part_arity + order_arity + 2])
            groups.setdefault(pkey, []).append((pos, value, core, okey))
        partitions: Dict[Key, PartitionData] = {}
        for pkey, entries in groups.items():
            entries.sort(key=lambda e: e[0])
            order_keys = [e[3] for e in entries if e[2]]
            seq = CompleteSequence.from_values(
                d.window,
                d.aggregate,
                sum(1 for e in entries if e[2]),
                [(e[0], e[1]) for e in entries],
                complete=complete,
            )
            partitions[pkey] = PartitionData(order_keys, seq)
        view.reporting = ReportingSequence(
            d.partition_by, d.order_by, d.window, d.aggregate, partitions
        )
        # Raw mirrors come from the base table — base rows round-trip the
        # dump exactly, so these are the same floats maintenance last saw.
        base_groups: Dict[Key, List[dict]] = {}
        for row in view._base_rows():
            key = tuple(row[c] for c in d.partition_by)
            base_groups.setdefault(key, []).append(row)
        view.raw = {
            key: [
                float(r[d.value_col])
                for r in sorted(
                    rows, key=lambda r: tuple(r[c] for c in d.order_by)
                )
            ]
            for key, rows in base_groups.items()
        }
        return view

    # -- storage ------------------------------------------------------------------

    def _create_storage(self, table_name: str):
        """Create an (empty) storage table under ``table_name``.

        Index names always use the canonical storage prefix so a shadow
        table carries identical index structure to the table it replaces.
        """
        d = self.definition
        base = self.db.table(d.base_table)
        columns: List[Tuple[str, object]] = []
        for c in d.partition_by:
            columns.append((c, base.schema.column(c).type))
        for c in d.order_by:
            columns.append((c, base.schema.column(c).type))
        columns.append(("__pos", INTEGER))
        columns.append(("__val", FLOAT))
        # True for core positions 1..n, False for header/trailer rows; the
        # relational patterns filter on it (per-partition n varies).
        columns.append(("__core", BOOLEAN))
        table = self.db.create_table(table_name, columns)
        # The paper's Table 2 setting: primary-key index over the position.
        key_cols = list(d.partition_by) + ["__pos"]
        table.create_index(
            f"{d.storage_table}_pk", key_cols, kind="sorted", unique=True
        )
        if d.partition_by:
            # A plain position index serves single-partition probes too.
            table.create_index(f"{d.storage_table}_pos", ["__pos"], kind="sorted")
        return table

    def refresh(self) -> None:
        """Full recomputation from the base table (section 2.3's baseline).

        Crash-consistent: the new state is staged completely — mirror, raw
        slices, and an epoch-versioned shadow storage table — before a
        single atomic commit swaps it in.  Any exception before the commit
        (worker failure, injected interruption, ...) drops the shadow and
        leaves every representation at the old epoch.
        """
        from repro.obs import runtime

        with runtime.get_tracer().span(
            "view.refresh", view=self.name, epoch=self.epoch + 1
        ) as span:
            self._refresh_staged(span)
        runtime.get_registry().counter(
            "repro_views_refreshes_total",
            help="Committed full view refreshes",
        ).inc()

    def _refresh_staged(self, span) -> None:
        from repro.faults import injector

        d = self.definition
        injector.check("refresh_begin", self.name)
        rows = self._base_rows()
        reporting = ReportingSequence.from_rows(
            rows,
            d.value_col,
            partition_by=d.partition_by,
            order_by=d.order_by,
            window=d.window,
            aggregate=d.aggregate,
            complete=self.complete,
            exec_config=self.exec_config,
        )
        # Per-partition raw mirror (the slice of base data the view covers);
        # incremental maintenance reads old raw values from here.
        raw: Dict[Key, List[float]] = {}
        groups: Dict[Key, List[dict]] = {}
        for row in rows:
            key = tuple(row[c] for c in d.partition_by)
            groups.setdefault(key, []).append(row)
        for key, part_rows in groups.items():
            part_rows.sort(key=lambda r: tuple(r[c] for c in d.order_by))
            raw[key] = [float(r[d.value_col]) for r in part_rows]

        shadow_name = f"{d.storage_table}__e{self.epoch + 1}"
        self.db.drop_table(shadow_name, if_exists=True)  # stale failed shadow
        shadow = self._create_storage(shadow_name)
        try:
            shadow.insert_many(self._storage_rows(reporting))
            injector.check("refresh_commit", self.name)
        except BaseException:
            self.db.drop_table(shadow_name, if_exists=True)
            raise
        # -- commit point: from here on the swap is a handful of atomic
        # rebindings; no partially-visible state exists on either side.
        self.db.rename_table(shadow_name, d.storage_table, replace=True)
        self.reporting = reporting
        self.raw = raw
        self.epoch += 1
        span.set(partitions=len(reporting.partitions))

    def _storage_rows(self, reporting: ReportingSequence) -> List[Sequence[object]]:
        """All storage rows for a (staged) reporting mirror, checking the
        per-row ``refresh_write`` fault hook as it goes."""
        from repro.faults import injector

        d = self.definition
        hook = injector.refresh_write_hook(self.name)
        rows: List[Sequence[object]] = []
        order_arity = len(d.order_by)
        for pkey, part in reporting.partitions.items():
            for pos, value in part.seq.items():
                if hook is not None:
                    hook(pos)
                core = 1 <= pos <= part.seq.n
                if core:
                    okey: Tuple[object, ...] = part.order_keys[pos - 1]
                else:
                    okey = (None,) * order_arity  # header/trailer rows
                rows.append(tuple(pkey) + okey + (pos, value, core))
        return rows

    def _base_rows(self) -> List[dict]:
        d = self.definition
        from repro.relational.operators import Filter, TableScan

        plan = TableScan(self.db.table(d.base_table))
        if d.where is not None:
            plan = Filter(plan, d.where)
        result = self.db.run(plan)
        return result.to_dicts()

    # -- quarantine ------------------------------------------------------------------

    def quarantine(self, reason: str) -> None:
        """Take the view out of query routing (graceful degradation).

        A quarantined view keeps its storage and mirror (they may be
        wholly intact at the old epoch) but is skipped by the matcher, so
        queries route back to base-data computation until :meth:`repair`
        or the warehouse's ``repair()`` reinstates it.
        """
        self.quarantined = True
        self.quarantine_reason = reason

    def reinstate(self) -> None:
        """Return a (verified) view to query routing."""
        self.quarantined = False
        self.quarantine_reason = None

    def repair(self):
        """Re-refresh, re-verify, and reinstate on success.

        Returns:
            The :class:`~repro.views.verify.ConsistencyReport` of the
            post-refresh verification; the view is reinstated only when it
            is clean.
        """
        from repro.views.verify import verify_view

        self.refresh()
        report = verify_view(self)
        if report.ok:
            self.reinstate()
        else:  # pragma: no cover - refresh rebuilds from base, so only a
            # concurrent base mutation could leave this dirty
            self.quarantine(f"repair verification failed: {report.summary()}")
        return report

    # -- inspection ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def is_partitioned(self) -> bool:
        return bool(self.definition.partition_by)

    def partition_sizes(self) -> Dict[Key, int]:
        assert self.reporting is not None
        return {k: p.seq.n for k, p in self.reporting.partitions.items()}

    def single_partition(self) -> PartitionData:
        """The only partition of an unpartitioned view.

        Raises:
            ViewError: when the view is partitioned or empty.
        """
        assert self.reporting is not None
        if self.is_partitioned:
            raise ViewError(f"view {self.name!r} is partitioned")
        if not self.reporting.partitions:
            raise ViewError(f"view {self.name!r} is empty")
        return self.reporting.partitions[()]

    def sequence(self, partition_key: Key = ()) -> CompleteSequence:
        assert self.reporting is not None
        return self.reporting.partition(partition_key).seq

    def row_count(self) -> int:
        return len(self.db.table(self.definition.storage_table))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f", epoch={self.epoch}"
        if self.quarantined:
            state += f", QUARANTINED ({self.quarantine_reason})"
        return (
            f"MaterializedSequenceView({self.name!r}: "
            f"{self.definition.describe()}{state})"
        )
