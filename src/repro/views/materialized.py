"""Materialized reporting-function views: storage and refresh.

A materialized view keeps two synchronized representations:

* a **storage table** in the warehouse database named
  ``__mv_<view>`` with columns ``(partition..., order..., pos, val)`` —
  the *complete* sequence per partition, i.e. core positions ``1..n`` plus
  header (``1-h..0``) and trailer (``n+1..n+l``) rows whose ordering
  columns are NULL.  The relational rewrite patterns (figs. 10/13) run
  against this table.
* an in-memory :class:`~repro.core.reporting.ReportingSequence` mirror used
  by the in-memory derivation forms, by incremental maintenance, and to
  label derived values with their original ordering keys.

``refresh()`` rebuilds both from the base table; the incremental
maintenance entry points in :mod:`repro.views.maintenance` keep them in
sync under point updates/inserts/deletes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.complete import CompleteSequence
from repro.core.reporting import PartitionData, ReportingSequence
from repro.errors import ViewError
from repro.relational.engine import Database
from repro.relational.schema import Column
from repro.relational.types import BOOLEAN, FLOAT, INTEGER
from repro.views.definition import SequenceViewDefinition

__all__ = ["MaterializedSequenceView"]

Key = Tuple[object, ...]


class MaterializedSequenceView:
    """One materialized reporting-function view inside a warehouse."""

    def __init__(
        self,
        db: Database,
        definition: SequenceViewDefinition,
        *,
        complete: bool = True,
        exec_config=None,
    ) -> None:
        self.db = db
        self.definition = definition
        self.complete = complete
        # Parallel ExecutionConfig (or None): used by refresh() and by the
        # MIN/MAX band recomputation in repro.views.maintenance.
        self.exec_config = exec_config
        self.reporting: Optional[ReportingSequence] = None
        self._create_storage()
        self.refresh()

    # -- storage ------------------------------------------------------------------

    def _create_storage(self) -> None:
        d = self.definition
        base = self.db.table(d.base_table)
        columns: List[Tuple[str, object]] = []
        for c in d.partition_by:
            columns.append((c, base.schema.column(c).type))
        for c in d.order_by:
            columns.append((c, base.schema.column(c).type))
        columns.append(("__pos", INTEGER))
        columns.append(("__val", FLOAT))
        # True for core positions 1..n, False for header/trailer rows; the
        # relational patterns filter on it (per-partition n varies).
        columns.append(("__core", BOOLEAN))
        self.db.drop_table(d.storage_table, if_exists=True)
        table = self.db.create_table(d.storage_table, columns)
        # The paper's Table 2 setting: primary-key index over the position.
        key_cols = list(d.partition_by) + ["__pos"]
        table.create_index(
            f"{d.storage_table}_pk", key_cols, kind="sorted", unique=True
        )
        if d.partition_by:
            # A plain position index serves single-partition probes too.
            table.create_index(f"{d.storage_table}_pos", ["__pos"], kind="sorted")

    def refresh(self) -> None:
        """Full recomputation from the base table (section 2.3's baseline)."""
        d = self.definition
        rows = self._base_rows()
        self.reporting = ReportingSequence.from_rows(
            rows,
            d.value_col,
            partition_by=d.partition_by,
            order_by=d.order_by,
            window=d.window,
            aggregate=d.aggregate,
            complete=self.complete,
            exec_config=self.exec_config,
        )
        # Per-partition raw mirror (the slice of base data the view covers);
        # incremental maintenance reads old raw values from here.
        self.raw: Dict[Key, List[float]] = {}
        groups: Dict[Key, List[dict]] = {}
        for row in rows:
            key = tuple(row[c] for c in d.partition_by)
            groups.setdefault(key, []).append(row)
        for key, part_rows in groups.items():
            part_rows.sort(key=lambda r: tuple(r[c] for c in d.order_by))
            self.raw[key] = [float(r[d.value_col]) for r in part_rows]
        self._write_storage()

    def _base_rows(self) -> List[dict]:
        d = self.definition
        from repro.relational.operators import Filter, TableScan

        plan = TableScan(self.db.table(d.base_table))
        if d.where is not None:
            plan = Filter(plan, d.where)
        result = self.db.run(plan)
        return result.to_dicts()

    def _write_storage(self) -> None:
        d = self.definition
        table = self.db.table(d.storage_table)
        table.truncate()
        assert self.reporting is not None
        rows: List[Sequence[object]] = []
        order_arity = len(d.order_by)
        for pkey, part in self.reporting.partitions.items():
            first, _last = part.seq.stored_range
            for pos, value in part.seq.items():
                core = 1 <= pos <= part.seq.n
                if core:
                    okey: Tuple[object, ...] = part.order_keys[pos - 1]
                else:
                    okey = (None,) * order_arity  # header/trailer rows
                rows.append(tuple(pkey) + okey + (pos, value, core))
        table.insert_many(rows)

    # -- inspection ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def is_partitioned(self) -> bool:
        return bool(self.definition.partition_by)

    def partition_sizes(self) -> Dict[Key, int]:
        assert self.reporting is not None
        return {k: p.seq.n for k, p in self.reporting.partitions.items()}

    def single_partition(self) -> PartitionData:
        """The only partition of an unpartitioned view.

        Raises:
            ViewError: when the view is partitioned or empty.
        """
        assert self.reporting is not None
        if self.is_partitioned:
            raise ViewError(f"view {self.name!r} is partitioned")
        if not self.reporting.partitions:
            raise ViewError(f"view {self.name!r} is empty")
        return self.reporting.partitions[()]

    def sequence(self, partition_key: Key = ()) -> CompleteSequence:
        assert self.reporting is not None
        return self.reporting.partition(partition_key).seq

    def row_count(self) -> int:
        return len(self.db.table(self.definition.storage_table))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaterializedSequenceView({self.name!r}: "
            f"{self.definition.describe()})"
        )
