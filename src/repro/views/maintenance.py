"""Incremental maintenance of materialized views (paper section 2.3, applied).

These functions propagate a point modification of the base data into a
materialized view *without* recomputing the sequence: the core rules of
:mod:`repro.core.maintenance` adjust only the ``w = l + h + 1`` sequence
values whose windows contain the modified position.

Synchronisation strategy for the two representations:

* the in-memory mirror is updated via the core rules (O(w) adjusted values);
* the storage table is patched in place for the affected band on *update*;
  for *insert*/*delete* the partition's rows are rewritten because dense
  positions shift — the sequence *values* still change only locally, which
  is what :class:`~repro.core.maintenance.MaintenanceResult` accounts.

All functions mutate the view only; updating the base table itself is the
caller's (warehouse's) job.

Views carrying a parallel :class:`~repro.parallel.config.ExecutionConfig`
route the MIN/MAX band recomputation (the only non-O(1) part of the rules)
through :func:`~repro.parallel.compute.evaluate_positions`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core import maintenance as core_maintenance
from repro.core.maintenance import BandEvaluator, MaintenanceResult
from repro.errors import MaintenanceError
from repro.views.materialized import MaterializedSequenceView

__all__ = ["propagate_update", "propagate_insert", "propagate_delete", "position_of"]

Key = Tuple[object, ...]


def _maintain_span(view: MaterializedSequenceView, op: str, **attrs):
    from repro.obs import runtime

    runtime.get_registry().counter(
        "repro_views_maintenance_total",
        {"op": op},
        help="Incremental maintenance operations propagated into views",
    ).inc()
    return runtime.get_tracer().span(
        "view.maintain", view=view.name, op=op, **attrs
    )


def _band_evaluator(view: MaterializedSequenceView) -> Optional[BandEvaluator]:
    """Pool-backed evaluator for MIN/MAX band recomputes, or None (serial)."""
    cfg = view.exec_config
    if cfg is None or not cfg.is_parallel:
        return None
    from repro.parallel.compute import evaluate_positions

    def evaluator(spec, raw, positions):
        return evaluate_positions(raw, spec.window, spec.aggregate, positions, cfg)

    return evaluator


def position_of(
    view: MaterializedSequenceView, partition_key: Key, order_key: Key
) -> int:
    """1-based sequence position of the row with the given ordering key.

    Raises:
        MaintenanceError: unknown partition or ordering key.
    """
    assert view.reporting is not None
    try:
        part = view.reporting.partition(tuple(partition_key))
    except Exception as exc:
        raise MaintenanceError(
            f"view {view.name!r} has no partition {tuple(partition_key)!r}"
        ) from exc
    try:
        return part.order_keys.index(tuple(order_key)) + 1
    except ValueError:
        raise MaintenanceError(
            f"view {view.name!r}: no row with ordering key "
            f"{tuple(order_key)!r} in partition {tuple(partition_key)!r}"
        ) from None


def insertion_position(
    view: MaterializedSequenceView, partition_key: Key, order_key: Key
) -> int:
    """Position a new row with ``order_key`` would take (1-based)."""
    assert view.reporting is not None
    part = view.reporting.partitions.get(tuple(partition_key))
    if part is None:
        raise MaintenanceError(
            f"view {view.name!r}: inserting into a brand-new partition "
            f"{tuple(partition_key)!r} requires refresh()"
        )
    okey = tuple(order_key)
    if okey in part.order_keys:
        raise MaintenanceError(
            f"view {view.name!r}: ordering key {okey!r} already exists"
        )
    position = 1
    for existing in part.order_keys:
        if existing < okey:
            position += 1
    return position


def propagate_update(
    view: MaterializedSequenceView,
    order_key: Sequence[object],
    new_value: float,
    *,
    partition_key: Sequence[object] = (),
) -> MaintenanceResult:
    """Apply the update rule: base value at ``order_key`` becomes ``new_value``."""
    from repro.faults import injector

    injector.check("maintenance", view.name)
    pkey = tuple(partition_key)
    k = position_of(view, pkey, tuple(order_key))
    part = view.reporting.partition(pkey)
    with _maintain_span(view, "update", position=k):
        result = core_maintenance.apply_update(
            view.raw[pkey], part.seq, k, float(new_value),
            evaluator=_band_evaluator(view),
        )
        _patch_storage_band(view, pkey, result)
    return result


def propagate_insert(
    view: MaterializedSequenceView,
    order_key: Sequence[object],
    value: float,
    *,
    partition_key: Sequence[object] = (),
) -> MaintenanceResult:
    """Apply the insert rule for a new base row."""
    from repro.faults import injector

    injector.check("maintenance", view.name)
    pkey = tuple(partition_key)
    okey = tuple(order_key)
    k = insertion_position(view, pkey, okey)
    part = view.reporting.partition(pkey)
    with _maintain_span(view, "insert", position=k):
        result = core_maintenance.apply_insert(
            view.raw[pkey], part.seq, k, float(value),
            evaluator=_band_evaluator(view),
        )
        part.order_keys.insert(k - 1, okey)
        _rewrite_partition_storage(view, pkey)
    return result


def propagate_delete(
    view: MaterializedSequenceView,
    order_key: Sequence[object],
    *,
    partition_key: Sequence[object] = (),
) -> MaintenanceResult:
    """Apply the delete rule for a removed base row."""
    from repro.faults import injector

    injector.check("maintenance", view.name)
    pkey = tuple(partition_key)
    okey = tuple(order_key)
    k = position_of(view, pkey, okey)
    part = view.reporting.partition(pkey)
    with _maintain_span(view, "delete", position=k):
        result = core_maintenance.apply_delete(
            view.raw[pkey], part.seq, k, evaluator=_band_evaluator(view)
        )
        del part.order_keys[k - 1]
        _rewrite_partition_storage(view, pkey)
    return result


# -- storage synchronisation ----------------------------------------------------


def _patch_storage_band(
    view: MaterializedSequenceView, pkey: Key, result: MaintenanceResult
) -> None:
    """In-place update of the storage rows in the affected band."""
    d = view.definition
    table = view.db.table(d.storage_table)
    index = table.find_index(list(d.partition_by) + ["__pos"], sorted_only=True)
    part = view.reporting.partition(pkey)
    window = d.window
    first, last = part.seq.stored_range
    if window.is_cumulative:
        band = range(max(result.position, first), last + 1)
    else:
        band = range(
            max(result.position - window.h, first),
            min(result.position + window.l, last) + 1,
        )
    from repro.obs import runtime

    span = runtime.get_tracer().current_span()
    if span is not None:
        # Interior point updates patch exactly w = l + h + 1 values
        # (paper section 2.3); edge positions clamp to the stored range.
        span.set(band_width=len(band))
    pos_slot = table.schema.resolve("__pos")
    val_slot = table.schema.resolve("__val")
    for pos in band:
        slots = index.lookup(pkey + (pos,)) if index is not None else _scan_slots(
            table, pkey, pos, len(d.partition_by), pos_slot
        )
        if not slots:
            raise MaintenanceError(
                f"storage row for position {pos} missing in view {view.name!r}"
            )
        slot = slots[0]
        row = list(table.row(slot))
        row[val_slot] = part.seq.value(pos)
        table.update_slot(slot, row)


def _scan_slots(table, pkey: Key, pos: int, n_part: int, pos_slot: int):
    return [
        i
        for i, row in enumerate(table.rows)
        if row[pos_slot] == pos and tuple(row[:n_part]) == pkey
    ]


def _rewrite_partition_storage(view: MaterializedSequenceView, pkey: Key) -> None:
    """Replace all storage rows of one partition (positions shifted)."""
    d = view.definition
    table = view.db.table(d.storage_table)
    n_part = len(d.partition_by)
    doomed = [
        i for i, row in enumerate(table.rows) if tuple(row[:n_part]) == pkey
    ]
    table.delete_slots(doomed)
    part = view.reporting.partition(pkey)
    order_arity = len(d.order_by)
    rows = []
    for pos, value in part.seq.items():
        core = 1 <= pos <= part.seq.n
        if core:
            okey = part.order_keys[pos - 1]
        else:
            okey = (None,) * order_arity
        rows.append(pkey + okey + (pos, value, core))
    table.insert_many(rows)
