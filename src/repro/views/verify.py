"""Consistency verification of materialized views.

A materialized view has three representations that must agree: the base
table (ground truth), the in-memory mirror, and the storage table the
relational patterns read.  :func:`verify_view` recomputes the sequence from
base data and cross-checks both against it; the warehouse-level
:func:`verify_warehouse` runs it for every registered view.

This is the defence against silent corruption — a maintenance-rule bug, a
manual edit of the storage table, a stale mirror after external base
changes — and the hook for fault-injection tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.reporting import ReportingSequence
from repro.views.materialized import MaterializedSequenceView

__all__ = [
    "Discrepancy",
    "ConsistencyReport",
    "values_differ",
    "verify_view",
    "verify_warehouse",
]

TOLERANCE = 1e-7


@dataclass(frozen=True)
class Discrepancy:
    """One detected inconsistency.

    Attributes:
        representation: ``"mirror"`` or ``"storage"``.
        partition: partition key of the affected sequence.
        position: sequence position, or None for structural problems.
        detail: human-readable description.
    """

    representation: str
    partition: Tuple[object, ...]
    position: object
    detail: str


@dataclass
class ConsistencyReport:
    """Outcome of verifying one view."""

    view: str
    checked_values: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.discrepancies)} DISCREPANCIES"
        return f"view {self.view!r}: {self.checked_values} values checked, {status}"


def values_differ(a: float, b: float, *, tolerance: float = TOLERANCE) -> bool:
    """Do two sequence values disagree beyond the shared tolerance?

    This is the single comparison rule for every cross-representation check
    in the repository — view verification here and the differential testkit
    (:mod:`repro.testkit.differ`) both use it, so "agrees" means the same
    thing everywhere:

    * NaN == NaN counts as agreement: both representations computed "no
      value" the same way (e.g. AVG over an empty frame), which is not a
      corruption.  A NaN on only one side *is* a discrepancy.
    * Finite values compare with a relative tolerance floored at 1 so that
      near-zero results do not demand impossible absolute precision.
    """
    a_nan, b_nan = math.isnan(a), math.isnan(b)
    if a_nan or b_nan:
        return a_nan != b_nan
    return abs(a - b) > tolerance * max(1.0, abs(a), abs(b))


# Internal alias kept for the call sites below.
_differs = values_differ


def verify_view(view: MaterializedSequenceView, *, max_report: int = 20) -> ConsistencyReport:
    """Recompute the view from base data and cross-check mirror and storage."""
    from repro.faults import injector

    injector.verify_hook(view)  # armed ``bitflip`` specs corrupt storage here
    d = view.definition
    report = ConsistencyReport(view.name)
    truth = ReportingSequence.from_rows(
        view._base_rows(),
        d.value_col,
        partition_by=d.partition_by,
        order_by=d.order_by,
        window=d.window,
        aggregate=d.aggregate,
        complete=view.complete,
    )

    def add(representation, partition, position, detail) -> None:
        if len(report.discrepancies) < max_report:
            report.discrepancies.append(
                Discrepancy(representation, partition, position, detail)
            )

    # -- mirror vs truth -------------------------------------------------------
    # Partition-set drift is reported structurally, one discrepancy per
    # missing/unexpected partition — an empty or vanished partition must
    # never be silently skipped.
    mirror = view.reporting
    for pkey in sorted(set(truth.partitions) - set(mirror.partitions), key=repr):
        add("mirror", pkey, None,
            "partition missing from the mirror (present in base data)")
    for pkey in sorted(set(mirror.partitions) - set(truth.partitions), key=repr):
        add("mirror", pkey, None,
            "unexpected mirror partition (absent from base data)")
    for pkey, tpart in truth.partitions.items():
        mpart = mirror.partitions.get(pkey)
        if mpart is None:
            continue  # already reported structurally above
        if mpart.order_keys != tpart.order_keys:
            add("mirror", pkey, None, "ordering keys out of sync with base data")
        expected = dict(tpart.seq.items())
        for pos, value in mpart.seq.items():
            report.checked_values += 1
            want = expected.get(pos)
            if want is None or _differs(value, want):
                add("mirror", pkey, pos,
                    f"mirror value {value!r} != recomputed {want!r}")

    # -- storage vs truth ---------------------------------------------------------
    table = view.db.table(d.storage_table)
    n_part = len(d.partition_by)
    pos_slot = table.schema.resolve("__pos")
    val_slot = table.schema.resolve("__val")
    seen: Dict[Tuple, set] = {}
    for row in table.rows:
        pkey = tuple(row[:n_part])
        pos = row[pos_slot]
        seen.setdefault(pkey, set()).add(pos)
        tpart = truth.partitions.get(pkey)
        if tpart is None:
            add("storage", pkey, pos, "storage row for unknown partition")
            continue
        first, last = tpart.seq.stored_range
        if not first <= pos <= last:
            add("storage", pkey, pos, "storage row outside the stored range")
            continue
        report.checked_values += 1
        want = tpart.seq.value(pos)
        if _differs(row[val_slot], want):
            add("storage", pkey, pos,
                f"storage value {row[val_slot]!r} != recomputed {want!r}")
    for pkey, tpart in truth.partitions.items():
        first, last = tpart.seq.stored_range
        missing = set(range(first, last + 1)) - seen.get(pkey, set())
        for pos in sorted(missing):
            add("storage", pkey, pos, "storage row missing")
    return report


def verify_warehouse(warehouse) -> Dict[str, ConsistencyReport]:
    """Verify every registered view; returns reports keyed by view name."""
    return {name: verify_view(view) for name, view in warehouse.views.items()}
