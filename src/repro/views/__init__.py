"""Materialized reporting-function views: definitions, storage, matching,
incremental maintenance."""

from repro.views.advisor import Recommendation, WorkloadQuery, candidate_windows, recommend
from repro.views.definition import SequenceViewDefinition
from repro.views.maintenance import (
    position_of,
    propagate_delete,
    propagate_insert,
    propagate_update,
)
from repro.views.matcher import Match, QueryShape, match_view, rank_matches
from repro.views.materialized import MaterializedSequenceView
from repro.views.verify import ConsistencyReport, Discrepancy, verify_view, verify_warehouse

__all__ = [
    "Match",
    "Recommendation",
    "WorkloadQuery",
    "candidate_windows",
    "recommend",
    "MaterializedSequenceView",
    "QueryShape",
    "SequenceViewDefinition",
    "match_view",
    "position_of",
    "propagate_delete",
    "propagate_insert",
    "propagate_update",
    "rank_matches",
    "ConsistencyReport",
    "Discrepancy",
    "verify_view",
    "verify_warehouse",
]
