"""Adaptive re-costing: feed observed runtimes back into the cost model.

The cost model's unit constants are guesses about relative kernel speed.
Every executed window operator reports ``(strategy, rows, seconds)`` here;
once a strategy has enough observations, :class:`CostModel` replaces its
per-row unit constant with the *observed* seconds-per-row ratio against
the pipelined baseline.  The table is bounded (a deque per strategy), so
a long-running warehouse tracks drift instead of averaging over its whole
history.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = ["AdaptiveCostTable", "MIN_OBSERVATIONS"]

# Observations of a strategy needed before its unit cost is re-calibrated.
MIN_OBSERVATIONS = 3


class AdaptiveCostTable:
    """Bounded per-strategy record of observed (rows, seconds) samples."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._samples: Dict[str, Deque[Tuple[int, float]]] = {}
        self._lock = threading.Lock()

    def record(self, strategy: str, rows: int, seconds: float) -> None:
        """Record one observed execution (ignored when trivially small)."""
        if rows <= 0 or seconds < 0:
            return
        with self._lock:
            bucket = self._samples.setdefault(strategy, deque(maxlen=self.capacity))
            bucket.append((rows, seconds))

    def observations(self, strategy: str) -> int:
        with self._lock:
            return len(self._samples.get(strategy, ()))

    def seconds_per_row(self, strategy: str) -> Optional[float]:
        """Median observed seconds-per-row, or None below the floor."""
        with self._lock:
            bucket = self._samples.get(strategy)
            if bucket is None or len(bucket) < MIN_OBSERVATIONS:
                return None
            ratios = sorted(sec / rows for rows, sec in bucket if rows)
        mid = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[mid]
        return (ratios[mid - 1] + ratios[mid]) / 2.0

    def unit_factor(self, strategy: str, baseline: str = "pipelined") -> Optional[float]:
        """Observed per-row cost of ``strategy`` relative to ``baseline``.

        ``None`` until both strategies have enough observations; the cost
        model then keeps its static constant.
        """
        spr = self.seconds_per_row(strategy)
        base = self.seconds_per_row(baseline)
        if spr is None or base is None or base <= 0:
            return None
        return spr / base

    def snapshot(self) -> dict:
        """Current calibration state (for EXPLAIN / debugging)."""
        with self._lock:
            return {
                strategy: {
                    "observations": len(bucket),
                    "rows": sum(r for r, _ in bucket),
                    "seconds": sum(s for _, s in bucket),
                }
                for strategy, bucket in self._samples.items()
            }

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
