"""Table/column statistics and the cost model built on them.

The optimizer's data layer (DESIGN.md §5i): per-table row counts and
per-column NDV / null fractions / equi-depth histograms collected by
:func:`collect_table_stats`, held per database in a :class:`StatsCatalog`
(with staleness tracking against the live table), persisted in the storage
catalog alongside format v3, and consumed by :class:`CostModel` — which is
re-calibrated from observed runtimes through :class:`AdaptiveCostTable`.
"""

from repro.stats.adaptive import AdaptiveCostTable
from repro.stats.catalog import StatsCatalog
from repro.stats.collect import ColumnStats, TableStats, collect_table_stats
from repro.stats.cost import CostEstimate, CostModel, DEFAULT_SELECTIVITY

__all__ = [
    "AdaptiveCostTable",
    "ColumnStats",
    "CostEstimate",
    "CostModel",
    "DEFAULT_SELECTIVITY",
    "StatsCatalog",
    "TableStats",
    "collect_table_stats",
]
