"""Statistics collection: row counts, NDV, null fractions, histograms.

One :class:`TableStats` per table, one :class:`ColumnStats` per column.
Numeric columns additionally carry min/max and an *equi-depth* histogram
(each bucket holds the same number of non-null values, so bucket width
adapts to skew — the classic warehouse choice).  Collection samples large
tables with a fixed stride, which keeps ``ANALYZE`` O(sample) regardless
of table size; sampled NDV and null counts are scaled back up with the
usual "saturating domain" heuristic.

Everything here is plain data: JSON-serializable via ``to_dict`` /
``from_dict`` so the storage catalog can persist statistics next to the
format-v3 table entries.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ColumnStats",
    "TableStats",
    "collect_table_stats",
    "DEFAULT_BUCKETS",
    "DEFAULT_SAMPLE_LIMIT",
]

DEFAULT_BUCKETS = 16
DEFAULT_SAMPLE_LIMIT = 10_000


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column.

    Attributes:
        name: column name.
        count: number of table rows the statistics describe (the full
            table row count, even when the values were sampled).
        nulls: estimated number of NULLs over those rows.
        ndv: estimated number of distinct non-NULL values.
        min_value / max_value: numeric extrema (None for non-numeric or
            all-NULL columns).
        bounds: equi-depth histogram bucket *upper* bounds (ascending,
            ending at ``max_value``); empty when no histogram was built.
        sampled: True when the values were stride-sampled.
    """

    name: str
    count: int
    nulls: int
    ndv: int
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    bounds: Tuple[float, ...] = ()
    sampled: bool = False

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.count if self.count else 0.0

    @property
    def non_null(self) -> int:
        return max(self.count - self.nulls, 0)

    # -- selectivity ---------------------------------------------------------

    def selectivity_eq(self, value: Any = None) -> float:
        """Estimated fraction of rows matching ``col = value``.

        Uses the uniform-frequency assumption ``1/ndv`` over the non-NULL
        rows; an out-of-range numeric literal estimates to ~0.
        """
        if not self.count:
            return 0.0
        frac_non_null = 1.0 - self.null_fraction
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.min_value is not None and value < self.min_value:
                return 1.0 / max(self.count, 1)
            if self.max_value is not None and value > self.max_value:
                return 1.0 / max(self.count, 1)
        return frac_non_null / max(self.ndv, 1)

    def fraction_below(self, value: float, *, inclusive: bool = True) -> float:
        """Estimated fraction of *non-NULL* values ``<= value`` (or ``<``).

        Interpolates linearly inside the containing equi-depth bucket.
        """
        if not self.bounds or self.min_value is None or self.max_value is None:
            return 0.5
        if value < self.min_value:
            return 0.0
        if value >= self.max_value:
            return 1.0
        b = len(self.bounds)
        i = bisect.bisect_left(self.bounds, value)
        lo = self.min_value if i == 0 else self.bounds[i - 1]
        hi = self.bounds[i] if i < b else self.max_value
        within = 0.0 if hi <= lo else (value - lo) / (hi - lo)
        if not inclusive:
            within = max(0.0, within - self.selectivity_eq(value))
        return min(1.0, max(0.0, (i + within) / b))

    def selectivity_cmp(self, op: str, value: Any) -> float:
        """Estimated selectivity of ``col <op> value`` over all rows."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            # Non-numeric comparisons fall back to the equality estimate
            # for "=" and a fixed guess otherwise.
            from repro.stats.cost import DEFAULT_SELECTIVITY

            return self.selectivity_eq(value) if op == "=" else DEFAULT_SELECTIVITY
        frac_non_null = 1.0 - self.null_fraction
        if op == "=":
            return self.selectivity_eq(value)
        if op in ("!=", "<>"):
            return max(0.0, frac_non_null - self.selectivity_eq(value))
        if op in ("<", "<="):
            return frac_non_null * self.fraction_below(
                float(value), inclusive=(op == "<=")
            )
        if op in (">", ">="):
            below = self.fraction_below(float(value), inclusive=(op == ">"))
            return frac_non_null * (1.0 - below)
        from repro.stats.cost import DEFAULT_SELECTIVITY

        return DEFAULT_SELECTIVITY

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "nulls": self.nulls,
            "ndv": self.ndv,
            "min": self.min_value,
            "max": self.max_value,
            "bounds": list(self.bounds),
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ColumnStats":
        return cls(
            name=doc["name"],
            count=int(doc["count"]),
            nulls=int(doc["nulls"]),
            ndv=int(doc["ndv"]),
            min_value=doc.get("min"),
            max_value=doc.get("max"),
            bounds=tuple(doc.get("bounds") or ()),
            sampled=bool(doc.get("sampled", False)),
        )


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table: the row count plus per-column stats."""

    table: str
    row_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "columns": [c.to_dict() for c in self.columns.values()],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TableStats":
        cols = [ColumnStats.from_dict(c) for c in doc.get("columns", [])]
        return cls(
            table=doc["table"],
            row_count=int(doc["row_count"]),
            columns={c.name: c for c in cols},
        )


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _column_stats(
    name: str,
    values: List[Any],
    total_rows: int,
    *,
    buckets: int,
    sampled: bool,
) -> ColumnStats:
    m = len(values)
    scale = total_rows / m if m else 1.0
    nulls = sum(1 for v in values if v is None)
    non_null = [v for v in values if v is not None]
    distinct = len(set(non_null))
    if sampled and non_null:
        # Saturating-domain heuristic: a sample that is mostly distinct
        # suggests a (near-)unique column — scale the NDV up with the
        # table; a sample with heavy repetition suggests the sample
        # already saw the whole domain.
        if distinct >= 0.9 * len(non_null):
            ndv = min(total_rows - round(nulls * scale), round(distinct * scale))
        else:
            ndv = distinct
        nulls = round(nulls * scale)
    else:
        ndv = distinct
    numeric = [float(v) for v in non_null if _is_number(v)]
    min_value = max_value = None
    bounds: Tuple[float, ...] = ()
    if numeric and len(numeric) == len(non_null):
        numeric.sort()
        min_value, max_value = numeric[0], numeric[-1]
        k = len(numeric)
        b = min(buckets, k) or 1
        bounds = tuple(numeric[min(k - 1, ((j + 1) * k) // b - 1)] for j in range(b))
    return ColumnStats(
        name=name,
        count=total_rows,
        nulls=min(nulls, total_rows),
        ndv=max(min(ndv, total_rows), 0 if not non_null else 1),
        min_value=min_value,
        max_value=max_value,
        bounds=bounds,
        sampled=sampled,
    )


def collect_table_stats(
    table,
    *,
    buckets: int = DEFAULT_BUCKETS,
    sample_limit: int = DEFAULT_SAMPLE_LIMIT,
) -> TableStats:
    """ANALYZE one table: per-column NDV/nulls/histograms in one pass.

    Args:
        table: a :class:`repro.relational.table.Table` (duck-typed: needs
            ``__len__``, ``schema`` and ``column_values``).
        buckets: equi-depth histogram resolution.
        sample_limit: above this row count, values are stride-sampled.
    """
    n = len(table)
    sampled = n > sample_limit
    if sampled:
        step = -(-n // sample_limit)  # ceil: at most sample_limit probes
        probe = list(range(0, n, step))
    columns: Dict[str, ColumnStats] = {}
    for idx, column in enumerate(table.schema):
        col = table.column_values(idx)
        values = col.take(probe).to_pylist() if sampled else col.to_pylist()
        columns[column.name] = _column_stats(
            column.name, values, n, buckets=buckets, sampled=sampled
        )
    return TableStats(table=table.name, row_count=n, columns=columns)
