"""Per-database statistics registry with staleness tracking.

One :class:`StatsCatalog` hangs off every
:class:`~repro.relational.engine.Database`.  ``ANALYZE`` results are keyed
by table name; staleness is judged *live* against the current table row
count (no mutation hooks needed — the warehouse mutates tables directly),
so the cost planner can cheaply ask for :meth:`fresh` statistics and fall
back to rule-based choices when they are absent or drifted.

The catalog also owns the database's :class:`AdaptiveCostTable`, so
observed runtimes and collected statistics travel together.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.stats.adaptive import AdaptiveCostTable
from repro.stats.collect import (
    DEFAULT_BUCKETS,
    DEFAULT_SAMPLE_LIMIT,
    TableStats,
    collect_table_stats,
)

__all__ = ["StatsCatalog", "DEFAULT_STALENESS"]

# Relative row-count drift beyond which statistics stop steering the planner.
DEFAULT_STALENESS = 0.2


class StatsCatalog:
    """Collected table statistics plus the adaptive cost-feedback table."""

    def __init__(
        self,
        *,
        staleness: float = DEFAULT_STALENESS,
        buckets: int = DEFAULT_BUCKETS,
        sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    ) -> None:
        self.staleness = staleness
        self.buckets = buckets
        self.sample_limit = sample_limit
        self.adaptive = AdaptiveCostTable()
        self._tables: Dict[str, TableStats] = {}
        self._lock = threading.Lock()

    # -- collection ----------------------------------------------------------

    def analyze(self, table) -> TableStats:
        """Collect (or re-collect) statistics for one table."""
        stats = collect_table_stats(
            table, buckets=self.buckets, sample_limit=self.sample_limit
        )
        with self._lock:
            self._tables[table.name] = stats
        return stats

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> Optional[TableStats]:
        """Stored statistics by table name — possibly stale, never implied fresh."""
        with self._lock:
            return self._tables.get(name)

    def is_stale(self, table) -> bool:
        """True when no statistics exist or the row count drifted too far."""
        stats = self.get(table.name)
        if stats is None:
            return True
        base = max(stats.row_count, 1)
        return abs(len(table) - stats.row_count) / base > self.staleness

    def fresh(self, table) -> Optional[TableStats]:
        """Statistics the planner may *act* on; None when absent or stale."""
        if self.is_stale(table):
            return None
        return self.get(table.name)

    # -- catalog maintenance -------------------------------------------------

    def drop(self, name: str) -> None:
        with self._lock:
            self._tables.pop(name, None)

    def rename(self, old: str, new: str) -> None:
        with self._lock:
            stats = self._tables.pop(old, None)
            if stats is not None:
                self._tables[new] = TableStats(
                    table=new, row_count=stats.row_count, columns=stats.columns
                )

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()

    # -- persistence ---------------------------------------------------------

    def dump(self, name: str) -> Optional[dict]:
        stats = self.get(name)
        return stats.to_dict() if stats is not None else None

    def load(self, name: str, doc: dict) -> TableStats:
        stats = TableStats.from_dict(doc)
        with self._lock:
            self._tables[name] = stats
        return stats
