"""The cost model: cardinality and cost estimation from statistics.

Costs are in abstract *row-operation* units, normalized so one pipelined
window position (or one scanned row) costs ~1.0.  The constants encode
the measured relative speed of the kernels (see bench_table1 / DESIGN.md
§5i); when an :class:`~repro.stats.adaptive.AdaptiveCostTable` has enough
runtime observations for a strategy, the observed seconds-per-row ratio
against the pipelined baseline replaces the static per-row constant —
adaptive re-costing.

Cardinality estimation uses the textbook rules: histogram interpolation
for range predicates, ``1/NDV`` for equalities, independence for AND,
inclusion-exclusion for OR, and a fixed default where statistics cannot
help.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.stats.adaptive import AdaptiveCostTable
from repro.stats.collect import ColumnStats, TableStats

__all__ = [
    "CostEstimate",
    "CostModel",
    "DEFAULT_SELECTIVITY",
    "predicate_selectivity",
]

# Selectivity assumed for predicates statistics cannot estimate.
DEFAULT_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output cardinality and cumulative cost of an operator."""

    rows: float
    cost: float

    def rounded(self) -> Tuple[int, float]:
        return max(int(round(self.rows)), 0), round(self.cost, 1)


class CostModel:
    """Cost formulas for scans, joins, sorts and the window strategies."""

    # Per-row unit costs, relative to one pipelined window position = 1.0.
    SCAN_ROW = 1.0
    FILTER_ROW = 0.5
    JOIN_BUILD_ROW = 1.5
    JOIN_PROBE_ROW = 1.5
    NESTED_PAIR = 1.0
    SORT_ROW_FACTOR = 0.6  # x log2(n)
    AGG_ROW = 1.2
    PROJECT_ROW = 0.3
    DISTINCT_ROW = 1.0
    # Faulting one 4 KiB page into the buffer pool: read + CRC + decode.
    # Charged per page for scans over v4 (paged) tables, so the cost
    # planner prefers plans that touch fewer pages (band answers, view
    # matches) once data lives out of core.
    PAGE_IO = 40.0

    # Window strategies (per position unless noted).
    NAIVE_POSITION = 1.0  # x window width
    PIPELINED_ROW = 1.0
    VECTORIZED_ROW = 0.05
    VECTORIZED_SETUP = 500.0  # per spec: array staging + kernel dispatch
    PARALLEL_ROW = 1.0  # divided by the worker count
    PARALLEL_SETUP = 30_000.0  # pool spin-up + chunk shipping
    PARALLEL_GROUP = 4.0  # per-group merge bookkeeping

    def __init__(self, adaptive: Optional[AdaptiveCostTable] = None) -> None:
        self.adaptive = adaptive

    # -- calibrated per-row units -------------------------------------------

    def _unit(self, strategy: str, static: float) -> float:
        if self.adaptive is not None:
            observed = self.adaptive.unit_factor(strategy)
            if observed is not None and observed > 0:
                return observed * self.PIPELINED_ROW
        return static

    # -- window strategies ---------------------------------------------------

    def window_cost(
        self,
        strategy: str,
        rows: float,
        *,
        width: float = 1.0,
        jobs: int = 1,
        groups: float = 1.0,
    ) -> float:
        """Cost of evaluating one window column over ``rows`` positions."""
        rows = max(rows, 0.0)
        if strategy == "naive":
            return rows * max(width, 1.0) * self.NAIVE_POSITION
        if strategy == "pipelined":
            return rows * self._unit("pipelined", self.PIPELINED_ROW)
        if strategy == "vectorized":
            return rows * self._unit("vectorized", self.VECTORIZED_ROW) + (
                self.VECTORIZED_SETUP
            )
        if strategy == "parallel":
            per_row = self._unit("parallel", self.PARALLEL_ROW) / max(jobs, 1)
            return (
                rows * per_row
                + self.PARALLEL_SETUP
                + max(groups, 1.0) * self.PARALLEL_GROUP
            )
        raise ValueError(f"unknown window strategy {strategy!r}")

    def choose_window_strategy(
        self,
        rows: float,
        *,
        width: float = 1.0,
        jobs: int = 1,
        groups: float = 1.0,
        vector_ok: bool = True,
        parallel_ok: bool = False,
    ) -> Tuple[str, float]:
        """Cheapest admissible strategy as ``(name, cost)``.

        Ties break toward ``pipelined`` (the rule-based default), so the
        cost planner never changes route without a predicted win.
        """
        candidates = {"pipelined": self.window_cost("pipelined", rows, width=width)}
        if vector_ok:
            candidates["vectorized"] = self.window_cost(
                "vectorized", rows, width=width
            )
        if parallel_ok and jobs > 1:
            candidates["parallel"] = self.window_cost(
                "parallel", rows, width=width, jobs=jobs, groups=groups
            )
        best = min(candidates, key=lambda s: (candidates[s], s != "pipelined"))
        if candidates[best] >= candidates["pipelined"]:
            best = "pipelined"
        return best, candidates[best]

    # -- relational operators ------------------------------------------------

    def scan_cost(self, rows: float, *, pages: float = 0.0) -> float:
        return rows * self.SCAN_ROW + pages * self.PAGE_IO

    def filter_cost(self, input_rows: float) -> float:
        return input_rows * self.FILTER_ROW

    def sort_cost(self, rows: float) -> float:
        return rows * self.SORT_ROW_FACTOR * math.log2(max(rows, 2.0))

    def hash_join_cost(self, left: float, right: float) -> float:
        return left * self.JOIN_BUILD_ROW + right * self.JOIN_PROBE_ROW

    def nested_join_cost(self, left: float, right: float) -> float:
        return left * right * self.NESTED_PAIR

    def aggregate_cost(self, input_rows: float) -> float:
        return input_rows * self.AGG_ROW

    def project_cost(self, rows: float) -> float:
        return rows * self.PROJECT_ROW

    def distinct_cost(self, rows: float) -> float:
        return rows * self.DISTINCT_ROW


# -- predicate selectivity ----------------------------------------------------


def _literal_value(expr: Any) -> Optional[Any]:
    from repro.relational.expr import Literal

    if isinstance(expr, Literal):
        return expr.value
    return None


def _column_stats_for(expr: Any, stats: Optional[TableStats]) -> Optional[ColumnStats]:
    from repro.relational.expr import ColumnRef

    if stats is None or not isinstance(expr, ColumnRef):
        return None
    return stats.column(expr.name)


def predicate_selectivity(pred: Any, stats: Optional[TableStats]) -> float:
    """Estimated selectivity of a predicate over one table's rows.

    Histogram/NDV-backed for ``column <op> literal`` comparisons; AND
    multiplies (independence), OR applies inclusion-exclusion, NOT
    complements.  Anything else gets :data:`DEFAULT_SELECTIVITY`.
    """
    from repro.relational.expr import And, Comparison, InList, IsNull, Not, Or

    if isinstance(pred, And):
        sel = 1.0
        for item in pred.items:
            sel *= predicate_selectivity(item, stats)
        return sel
    if isinstance(pred, Or):
        sel = 0.0
        for item in pred.items:
            s = predicate_selectivity(item, stats)
            sel = sel + s - sel * s
        return sel
    if isinstance(pred, Not):
        return max(0.0, 1.0 - predicate_selectivity(pred.item, stats))
    if isinstance(pred, IsNull):
        col_stats = _column_stats_for(pred.item, stats)
        if col_stats is not None:
            frac = col_stats.null_fraction
            return frac if not pred.negated else 1.0 - frac
        return DEFAULT_SELECTIVITY
    if isinstance(pred, InList):
        col_stats = _column_stats_for(pred.item, stats)
        if col_stats is not None:
            values = [_literal_value(v) for v in pred.options]
            if all(v is not None for v in values):
                return min(1.0, sum(col_stats.selectivity_eq(v) for v in values))
        return DEFAULT_SELECTIVITY
    if isinstance(pred, Comparison):
        col_stats = _column_stats_for(pred.left, stats)
        value = _literal_value(pred.right)
        op = pred.op
        if col_stats is None:
            # Mirror `literal <op> column`.
            col_stats = _column_stats_for(pred.right, stats)
            value = _literal_value(pred.left)
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if col_stats is not None and value is not None:
            return min(1.0, max(0.0, col_stats.selectivity_cmp(op, value)))
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY
