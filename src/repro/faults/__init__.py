"""Deterministic fault injection for the reproduction's robustness stack.

The materialized-view machinery only pays off if a view can be *trusted*;
this package supplies the controlled failures that prove the stack
degrades gracefully instead of corrupting answers:

* :class:`FaultPlan` / :class:`FaultSpec` — seeded, deterministic triggers
  (worker crash, worker hang, storage-write failure, refresh interruption
  at a chosen row, verify-time bit-flip, maintenance failure);
* :mod:`repro.faults.injector` — the process-global installation point and
  the hook functions called from the executor, persistence, refresh,
  verification and maintenance fault sites.

The contract the fault-matrix tests enforce: under every injected fault
the warehouse still returns bit-identical query answers — via bounded
retry, serial fallback, atomic-swap rollback, or quarantine plus
base-data routing — and ``repair()`` restores a clean ``verify()``.
"""

from repro.faults.injector import (
    FaultedTask,
    active,
    active_plan,
    check,
    clear,
    install,
    ship_hook,
    wal_torn_hook,
)
from repro.faults.plan import KINDS, REFRESH_POINTS, FaultEvent, FaultPlan, FaultSpec

__all__ = [
    "KINDS",
    "REFRESH_POINTS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultedTask",
    "active",
    "active_plan",
    "check",
    "clear",
    "install",
    "ship_hook",
    "wal_torn_hook",
]
