"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded, fully deterministic description of *what
goes wrong where*: each :class:`FaultSpec` names a fault kind, an optional
target (view or table name), and the index of the eligible event at which
it fires.  The plan is installed via :mod:`repro.faults.injector`; the
hooked sites (executor tasks, storage writes, refresh checkpoints,
verification, maintenance rules) then consult it.

Determinism is the whole point: the same plan against the same workload
fires at exactly the same event, so every fault-matrix test is a plain
assertion, not a flake.  The only randomness — which storage row a
``bitflip`` corrupts — comes from the plan's own seeded RNG.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultError

__all__ = ["KINDS", "REFRESH_POINTS", "FaultSpec", "FaultEvent", "FaultPlan"]

KINDS = (
    "worker_crash",        # pool task dies (process: hard exit -> BrokenProcessPool)
    "worker_hang",         # pool task sleeps past the per-task timeout
    "storage_write_fail",  # save_database aborts before writing a table
    "refresh_interrupt",   # view refresh killed at a chosen checkpoint/row
    "bitflip",             # one storage value corrupted at verify time
    "maintenance_fail",    # an incremental maintenance rule raises
    "session_kill",        # a serving-tier session dies mid-query
    "wal_torn_write",      # process dies mid-WAL-append (partial frame on disk)
    "primary_crash",       # the serving primary hard-crashes mid-dispatch
    "replica_lag",         # shipping to one replica stalls (records buffered)
    "ship_partition",      # the network link to one replica drops
    "page_read_corrupt",   # a v4 page read returns flipped bytes (pre-CRC)
)

# Checkpoints inside MaterializedSequenceView.refresh() that a
# refresh_interrupt spec may target via its ``point`` field.
REFRESH_POINTS = ("begin", "write", "commit")

# Which injection site each kind listens on ("task" faults are consumed by
# the executor through FaultPlan.take_task_faults, not through fire()).
_SITE_OF_KIND = {
    "worker_crash": "task",
    "worker_hang": "task",
    "storage_write_fail": "storage_write",
    "bitflip": "verify",
    "maintenance_fail": "maintenance",
    "session_kill": "serve_query",
    "wal_torn_write": "wal_append",
    "primary_crash": "primary",
    "replica_lag": "ship",
    "ship_partition": "ship",
    "page_read_corrupt": "page_read",
}


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger.

    Attributes:
        kind: one of :data:`KINDS`.
        target: restrict to a named view/table (empty = any target).
        at: 0-based index of the eligible event at which to fire (for
            task faults the task index within a pool ``map``; for
            ``refresh_interrupt`` with ``point="write"`` the storage-row
            write index; for ``storage_write_fail`` the table index).
        times: how many consecutive eligible events fire before the spec
            is exhausted (``times > 1`` models a persistent fault that
            defeats bounded retry and forces the serial fallback).
        point: refresh checkpoint for ``refresh_interrupt`` specs.
        seconds: sleep duration injected by ``worker_hang``.
    """

    kind: str
    target: str = ""
    at: int = 0
    times: int = 1
    point: str = "write"
    seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.at < 0:
            raise FaultError(f"at must be >= 0, got {self.at}")
        if self.times < 1:
            raise FaultError(f"times must be >= 1, got {self.times}")
        if self.kind == "refresh_interrupt" and self.point not in REFRESH_POINTS:
            raise FaultError(
                f"unknown refresh point {self.point!r}; expected one of {REFRESH_POINTS}"
            )
        if self.seconds < 0:
            raise FaultError(f"seconds must be >= 0, got {self.seconds}")

    @property
    def site(self) -> str:
        """The injection site this spec listens on."""
        if self.kind == "refresh_interrupt":
            return f"refresh_{self.point}"
        return _SITE_OF_KIND[self.kind]


@dataclass(frozen=True)
class FaultEvent:
    """Record of one fired fault (the plan's audit log)."""

    kind: str
    site: str
    target: str
    detail: str


class FaultPlan:
    """A set of armed :class:`FaultSpec` triggers plus their firing state.

    The plan is mutable state (per-spec event counters, fired-event log)
    wrapped around immutable specs; install at most one plan at a time via
    :func:`repro.faults.injector.active`.
    """

    def __init__(self, specs, *, seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.rng = random.Random(seed)
        self.events: List[FaultEvent] = []
        self._seen: Dict[int, int] = {i: 0 for i in range(len(self.specs))}
        self._fired: Dict[int, int] = {i: 0 for i in range(len(self.specs))}
        self._lock = threading.Lock()

    # -- firing ------------------------------------------------------------------

    def fire(self, site: str, target: str) -> List[FaultSpec]:
        """Advance every spec listening on ``site``/``target`` by one
        eligible event; return the specs that fire on this event."""
        fired: List[FaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site or (spec.target and spec.target != target):
                    continue
                seen = self._seen[i]
                self._seen[i] = seen + 1
                if spec.at <= seen < spec.at + spec.times:
                    self._fired[i] += 1
                    fired.append(spec)
        return fired

    def take_task_faults(self, n_tasks: int) -> Dict[int, FaultSpec]:
        """Consume task-site faults for a pool ``map`` over ``n_tasks`` items.

        Returns ``{task_index: spec}`` for this map call.  Consumption is
        eager (the parent marks the fault fired when it wraps the task) so
        a *retry* of a crashed/hung task runs clean — process workers
        cannot report exhaustion back after dying.
        """
        out: Dict[int, FaultSpec] = {}
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != "task":
                    continue
                base = self._seen[i]  # task events seen in earlier maps
                for local in range(n_tasks):
                    if spec.at <= base + local < spec.at + spec.times:
                        self._fired[i] += 1
                        out[local] = spec
                self._seen[i] = base + n_tasks
        return out

    def record(self, kind: str, site: str, target: str, detail: str) -> None:
        """Append to the audit log (thread-safe) and surface the fired fault
        to the observability plane (span event + counter)."""
        with self._lock:
            self.events.append(FaultEvent(kind, site, target, detail))
        from repro.obs import runtime

        runtime.event(f"fault.{kind}", site=site, target=target, detail=detail)
        runtime.get_registry().counter(
            "repro_faults_fired_total",
            {"kind": kind},
            help="Injected faults that actually fired",
        ).inc()

    # -- inspection --------------------------------------------------------------

    def fired_count(self, kind: Optional[str] = None) -> int:
        """How many times specs (of ``kind``, or all) have fired."""
        with self._lock:
            return sum(
                count
                for i, count in self._fired.items()
                if kind is None or self.specs[i].kind == kind
            )

    def exhausted(self) -> bool:
        """True when every spec has fired all its ``times``."""
        with self._lock:
            return all(
                self._fired[i] >= spec.times for i, spec in enumerate(self.specs)
            )

    def arms(self, site: str) -> bool:
        """Does any non-exhausted spec listen on ``site``?"""
        with self._lock:
            return any(
                spec.site == site and self._fired[i] < spec.times
                for i, spec in enumerate(self.specs)
            )

    def describe(self) -> str:
        parts = [
            f"{s.kind}@{s.site}" + (f"[{s.target}]" if s.target else "")
            + f" at={s.at}x{s.times}"
            for s in self.specs
        ]
        return f"FaultPlan(seed={self.seed}: " + "; ".join(parts) + ")"
