"""Fault injection hooks: the bridge between a plan and the hooked sites.

One process-global :class:`~repro.faults.plan.FaultPlan` may be installed
at a time (tests use the :func:`active` context manager).  Production code
calls the hook functions below at its fault points; with no plan installed
every hook is a near-free early return, so the instrumented paths cost
nothing in normal operation.

Sites:

* ``task`` — consumed by :class:`~repro.parallel.executor.ExecutorPool`,
  which wraps doomed tasks in the picklable :class:`FaultedTask`;
* ``storage_write`` — :func:`repro.relational.persist.save_database`, one
  eligible event per table;
* ``refresh_begin`` / ``refresh_write`` / ``refresh_commit`` — the
  checkpoints of :meth:`MaterializedSequenceView.refresh`;
* ``verify`` — :func:`repro.views.verify.verify_view`; a ``bitflip`` spec
  corrupts one storage value (seeded choice) before checking;
* ``maintenance`` — the :mod:`repro.views.maintenance` propagation rules.
"""

from __future__ import annotations

import os
import struct
import time
from contextlib import contextmanager
from typing import Callable, Dict, Optional

from repro.errors import FaultError, InjectedFault
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "FaultedTask",
    "active",
    "active_plan",
    "check",
    "clear",
    "install",
    "page_read_hook",
    "refresh_write_hook",
    "ship_hook",
    "take_task_faults",
    "verify_hook",
    "wal_torn_hook",
]

_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Install ``plan`` as the process-global active fault plan."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise FaultError("a fault plan is already installed; clear() it first")
    _ACTIVE = plan
    from repro.obs import runtime

    for spec in plan.specs:
        runtime.event(
            "fault.armed",
            kind=spec.kind, site=spec.site, target=spec.target,
            at=spec.at, times=spec.times,
        )


def clear() -> None:
    """Remove the active plan (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _ACTIVE


@contextmanager
def active(plan: FaultPlan):
    """Context manager: install ``plan`` for the duration of the block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ---------------------------------------------------------------------------
# Generic raising sites
# ---------------------------------------------------------------------------


def check(site: str, target: str = "") -> None:
    """Advance ``site`` by one eligible event; raise if a raising spec fires.

    The fast path — no plan installed — is a single global read.
    """
    plan = _ACTIVE
    if plan is None:
        return
    for spec in plan.fire(site, target):
        plan.record(spec.kind, site, target, f"fired at event {spec.at}")
        raise InjectedFault(
            f"injected {spec.kind} at {site}"
            + (f" ({target})" if target else "")
        )


def refresh_write_hook(target: str) -> Optional[Callable[[int], None]]:
    """Per-row hook for the refresh storage-write loop, or None when idle.

    Returning None lets the (hot) row loop skip per-row work entirely when
    no ``refresh_interrupt`` spec is armed for the ``refresh_write`` site.
    """
    plan = _ACTIVE
    if plan is None or not plan.arms("refresh_write"):
        return None

    def hook(position: int) -> None:
        for spec in plan.fire("refresh_write", target):
            plan.record(
                spec.kind, "refresh_write", target,
                f"interrupted at storage row {spec.at} (position {position})",
            )
            raise InjectedFault(
                f"injected refresh_interrupt at storage row {spec.at} "
                f"of view {target!r}"
            )

    return hook


# ---------------------------------------------------------------------------
# Verify-time corruption
# ---------------------------------------------------------------------------


def verify_hook(view) -> None:
    """Fire ``bitflip`` specs for ``view``: corrupt one storage ``__val``.

    The row is chosen by the plan's seeded RNG; the corruption flips a high
    mantissa bit of the float64 payload, so the change is large enough for
    :func:`verify_view`'s relative-tolerance comparison to catch.
    """
    plan = _ACTIVE
    if plan is None:
        return
    for spec in plan.fire("verify", view.name):
        table = view.db.table(view.definition.storage_table)
        if not len(table):  # pragma: no cover - empty views aren't materializable
            continue
        slot = plan.rng.randrange(len(table))
        val_slot = table.schema.resolve("__val")
        row = list(table.row(slot))
        row[val_slot] = _flip_bit(float(row[val_slot]))
        table.update_slot(slot, row)
        plan.record(
            spec.kind, "verify", view.name,
            f"flipped a bit of storage slot {slot}",
        )


def _flip_bit(value: float) -> float:
    """Flip mantissa bit 51 of the IEEE-754 representation."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    flipped = bits ^ (1 << 51)
    (out,) = struct.unpack("<d", struct.pack("<Q", flipped))
    return out


# ---------------------------------------------------------------------------
# Replication faults
# ---------------------------------------------------------------------------


def wal_torn_hook(target: str = "") -> bool:
    """Fire ``wal_torn_write`` specs for one WAL append.

    Returns True when the append should simulate a crash mid-write: the log
    writes a *partial* frame (exactly what a power cut mid-``write`` leaves
    behind) and raises :class:`InjectedFault`; recovery must truncate the
    torn bytes without losing any earlier committed epoch.
    """
    plan = _ACTIVE
    if plan is None:
        return False
    fired = False
    for spec in plan.fire("wal_append", target):
        plan.record(spec.kind, "wal_append", target, "torn frame at the tail")
        fired = True
    return fired


def page_read_hook(target: str = "") -> bool:
    """Fire ``page_read_corrupt`` specs for one buffer-pool page fault-in.

    Returns True when the read should hand the pool *corrupted* bytes:
    the pool flips payload bytes before its CRC check, which must then
    raise :class:`~repro.errors.PageCorruptError` and quarantine the page
    — never return the bad values.  ``target`` is the table name, so a
    spec can aim at one table's pages.  The dump on disk is untouched
    (the flip happens to the in-memory read buffer), so a reload after
    the plan is cleared recovers bit-identical answers.
    """
    plan = _ACTIVE
    if plan is None:
        return False
    fired = False
    for spec in plan.fire("page_read", target):
        plan.record(spec.kind, "page_read", target, "flipped payload bytes")
        fired = True
    return fired


def ship_hook(target: str):
    """Fire ``ship``-site specs (``replica_lag`` / ``ship_partition``) for
    one shipment to the replica named ``target``.

    Returns the fired specs; the shipper interprets each kind itself (a
    lagging replica buffers the record, a partitioned link drops and must
    catch up later), so this hook records but never raises.
    """
    plan = _ACTIVE
    if plan is None:
        return []
    fired = plan.fire("ship", target)
    for spec in fired:
        plan.record(spec.kind, "ship", target, f"shipment to {target!r} disrupted")
    return fired


# ---------------------------------------------------------------------------
# Executor task faults
# ---------------------------------------------------------------------------


def take_task_faults(n_tasks: int) -> Dict[int, FaultSpec]:
    """Consume task-site faults for one pool map (see FaultPlan)."""
    plan = _ACTIVE
    if plan is None:
        return {}
    faults = plan.take_task_faults(n_tasks)
    for index, spec in faults.items():
        plan.record(spec.kind, "task", spec.target, f"armed on task {index}")
    return faults


class FaultedTask:
    """Picklable wrapper executing one injected task fault, then the task.

    ``worker_crash`` inside a *process* worker hard-exits (the parent sees
    ``BrokenProcessPool``, the realistic crash signature); on a thread or
    the calling thread it raises :class:`InjectedFault`.  ``worker_hang``
    sleeps past the configured per-task timeout, then completes normally —
    modelling a slow straggler rather than a lost result.
    """

    def __init__(self, fn: Callable, kind: str, seconds: float) -> None:
        self.fn = fn
        self.kind = kind
        self.seconds = seconds

    def __call__(self, item):
        if self.kind == "worker_crash":
            import multiprocessing

            if multiprocessing.parent_process() is not None:
                os._exit(37)  # hard worker death, no unwinding
            raise InjectedFault("injected worker crash")
        if self.kind == "worker_hang":
            time.sleep(self.seconds)
        return self.fn(item)
