"""Synthetic workload generators.

Two workload families drive the examples, tests and benchmarks:

* **sequence tables** ``seq(pos, val)`` with dense integer positions — the
  shape of the paper's evaluation (Tables 1 and 2);
* the **credit-card warehouse** of the paper's introduction:
  ``c_transactions(c_custid, c_locid, c_date, c_transaction)`` joined with
  ``l_locations(l_locid, l_city, l_region)``.

All generators are deterministic given a seed (no ambient randomness), so
benchmark runs and tests are reproducible.
"""

from __future__ import annotations

import datetime
import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.relational.engine import Database
from repro.relational.types import DATE, FLOAT, INTEGER, TEXT

__all__ = [
    "sequence_values",
    "create_sequence_table",
    "create_credit_card_schema",
    "generate_locations",
    "generate_transactions",
    "load_credit_card_warehouse",
    "densify_daily",
]


def sequence_values(
    n: int,
    *,
    seed: int = 0,
    distribution: str = "uniform",
    low: float = 0.0,
    high: float = 100.0,
) -> List[float]:
    """Raw sequence values ``x_1 .. x_n``.

    Distributions: ``"uniform"`` draws i.i.d. values from ``[low, high)``;
    ``"walk"`` produces a random walk (smooth series typical for
    time-series smoothing workloads); ``"seasonal"`` adds a sine component
    on top of the walk.
    """
    rng = random.Random(seed)
    if distribution == "uniform":
        return [rng.uniform(low, high) for _ in range(n)]
    if distribution == "walk":
        out = []
        value = (low + high) / 2.0
        step = (high - low) / 50.0 or 1.0
        for _ in range(n):
            value += rng.uniform(-step, step)
            out.append(value)
        return out
    if distribution == "seasonal":
        base = sequence_values(n, seed=seed, distribution="walk", low=low, high=high)
        amplitude = (high - low) / 10.0 or 1.0
        return [
            v + amplitude * math.sin(2.0 * math.pi * i / 30.0)
            for i, v in enumerate(base)
        ]
    raise ValueError(f"unknown distribution {distribution!r}")


def create_sequence_table(
    db: Database,
    name: str,
    n: int,
    *,
    seed: int = 0,
    distribution: str = "uniform",
    primary_key: bool = True,
) -> List[float]:
    """Create and fill ``name(pos INTEGER, val FLOAT)``; returns the raw values.

    ``primary_key=False`` reproduces Table 1's "no primary index" setting.
    """
    values = sequence_values(n, seed=seed, distribution=distribution)
    db.drop_table(name, if_exists=True)
    db.create_table(
        name,
        [("pos", INTEGER), ("val", FLOAT)],
        primary_key=["pos"] if primary_key else None,
    )
    db.insert(name, list(zip(range(1, n + 1), values)))
    return values


_CITIES = [
    ("Nuremberg", "south"),
    ("Erlangen", "south"),
    ("Munich", "south"),
    ("Berlin", "east"),
    ("Dresden", "east"),
    ("Hamburg", "north"),
    ("Kiel", "north"),
    ("Cologne", "west"),
    ("Frankfurt", "west"),
    ("Stuttgart", "south"),
]


def create_credit_card_schema(db: Database) -> None:
    """Create ``c_transactions`` and ``l_locations`` (the intro example)."""
    db.drop_table("c_transactions", if_exists=True)
    db.drop_table("l_locations", if_exists=True)
    db.create_table(
        "l_locations",
        [("l_locid", INTEGER), ("l_city", TEXT), ("l_region", TEXT)],
        primary_key=["l_locid"],
    )
    db.create_table(
        "c_transactions",
        [
            ("c_txid", INTEGER),
            ("c_custid", INTEGER),
            ("c_locid", INTEGER),
            ("c_date", DATE),
            ("c_transaction", FLOAT),
        ],
        primary_key=["c_txid"],
    )


def generate_locations(n_shops: int = 10) -> List[Tuple[int, str, str]]:
    """``(l_locid, l_city, l_region)`` rows (cities cycle through a fixed list)."""
    rows = []
    for locid in range(1, n_shops + 1):
        city, region = _CITIES[(locid - 1) % len(_CITIES)]
        rows.append((locid, city, region))
    return rows


def generate_transactions(
    *,
    customers: Sequence[int] = (4711, 4712, 4713),
    days: int = 90,
    per_day: int = 1,
    n_shops: int = 10,
    seed: int = 0,
    start: Optional[datetime.date] = None,
) -> List[Tuple[int, int, int, datetime.date, float]]:
    """Credit-card transactions: one sequence of purchases per customer.

    Every customer makes ``per_day`` purchases on each of ``days``
    consecutive days (dense daily ordering — the shape reporting functions
    assume), at a pseudo-random shop with a pseudo-random amount.
    """
    rng = random.Random(seed)
    start = start or datetime.date(2001, 1, 1)
    rows = []
    txid = 1
    for cust in customers:
        for day in range(days):
            for _ in range(per_day):
                rows.append(
                    (
                        txid,
                        cust,
                        rng.randint(1, n_shops),
                        start + datetime.timedelta(days=day),
                        round(rng.uniform(5.0, 500.0), 2),
                    )
                )
                txid += 1
    return rows


def load_credit_card_warehouse(
    db: Database,
    *,
    customers: Sequence[int] = (4711, 4712, 4713),
    days: int = 90,
    n_shops: int = 10,
    seed: int = 0,
) -> int:
    """Create and populate the intro-example schema; returns the row count."""
    create_credit_card_schema(db)
    db.insert("l_locations", generate_locations(n_shops))
    rows = generate_transactions(
        customers=customers, days=days, n_shops=n_shops, seed=seed
    )
    db.insert("c_transactions", rows)
    return len(rows)


def densify_daily(
    rows: Sequence[dict],
    *,
    date_col: str,
    value_col: str,
    group_cols: Sequence[str] = (),
    fill: float = 0.0,
    aggregate: str = "sum",
) -> List[dict]:
    """Densify a gappy daily series so ROWS frames behave like day windows.

    The paper's sequence model (and SQL ``ROWS`` frames) count *rows*, not
    calendar distance: a 7-rows window over data with missing days silently
    spans more than a week.  This helper closes the gap the way warehouse
    ETL does — one output row per calendar day per group between each
    group's first and last day, summing (or counting/averaging) same-day
    rows and filling absent days with ``fill``.

    Args:
        rows: input dicts.
        date_col: :class:`datetime.date`-valued ordering column.
        value_col: measure to aggregate per day.
        group_cols: partitioning columns densified independently.
        fill: value for absent days.
        aggregate: ``"sum"``, ``"count"`` or ``"mean"`` for same-day rows.

    Returns:
        New row dicts with exactly ``group_cols + [date_col, value_col]``
        keys, dense and sorted per group.
    """
    if aggregate not in ("sum", "count", "mean"):
        raise ValueError(f"unknown same-day aggregate {aggregate!r}")
    groups: dict = {}
    for row in rows:
        key = tuple(row[c] for c in group_cols)
        day = row[date_col]
        if not isinstance(day, datetime.date):
            raise TypeError(f"{date_col!r} must hold datetime.date values")
        groups.setdefault(key, {}).setdefault(day, []).append(float(row[value_col]))
    out: List[dict] = []
    for key in sorted(groups, key=repr):
        days = groups[key]
        first, last = min(days), max(days)
        day = first
        while day <= last:
            values = days.get(day)
            if values is None:
                value = fill
            elif aggregate == "sum":
                value = sum(values)
            elif aggregate == "count":
                value = float(len(values))
            else:
                value = sum(values) / len(values)
            row = {c: v for c, v in zip(group_cols, key)}
            row[date_col] = day
            row[value_col] = value
            out.append(row)
            day += datetime.timedelta(days=1)
    return out
