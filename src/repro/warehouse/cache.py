"""Semantic query caching of reporting-function results (paper section 3).

The paper motivates derivability with exactly this scenario: "a data
warehouse system may propose a caching strategy of incoming user queries
([WATCHMAN], ...) to avoid the costly process of explicitly computing
candidates of materialized views.  If users are heavily relying on sequence
processing and the system is not able to consider the derivation of
sequence queries from materialized sequence views, no support can be
achieved."

:class:`QueryCache` implements that strategy on top of the view machinery:
whenever a rewritable reporting-function query misses every registered view
and is answered from base data, its *defining shape* is admitted as a new
materialized (complete) view.  Later queries — including ones with
*different* windows — then hit the cache through MaxOA/MinOA derivation.
Eviction is LRU over cache-created views, bounded by ``max_views``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.errors import ViewError
from repro.views.definition import SequenceViewDefinition
from repro.views.matcher import QueryShape

if TYPE_CHECKING:  # pragma: no cover
    from repro.warehouse.warehouse import DataWarehouse

__all__ = ["CacheStats", "QueryCache"]


def _count(event: str) -> None:
    """Mirror a cache event into the global metrics registry."""
    from repro.obs import runtime

    runtime.get_registry().counter(
        f"repro_cache_{event}_total",
        help=f"Semantic query cache {event}",
    ).inc()


@dataclass
class CacheStats:
    """Counters for cache behaviour.

    Attributes:
        hits: queries answered from a cache-created view.
        misses: rewritable queries that hit no view at all.
        admissions: views created by the cache.
        evictions: cache views dropped by the LRU policy.
    """

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryCache:
    """LRU cache of reporting-function query shapes, stored as views."""

    PREFIX = "__cache_"

    def __init__(self, warehouse: "DataWarehouse", max_views: int = 8) -> None:
        if max_views < 1:
            raise ViewError("query cache needs max_views >= 1")
        self.warehouse = warehouse
        self.max_views = max_views
        self.stats = CacheStats()
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self._counter = 0
        # Admit/evict/hit mutate the LRU map and create or drop views;
        # concurrent readers (the serving tier runs queries on a worker
        # pool) must not interleave inside those sections.  Reentrant
        # because eviction calls back into warehouse.drop_view, which may
        # quarantine-evict through on_quarantine.
        self._lock = threading.RLock()

    # -- bookkeeping -------------------------------------------------------------

    def cached_views(self) -> List[str]:
        """Names of currently cached views, least recently used first."""
        with self._lock:
            return list(self._lru)

    def note_hit(self, view_name: str) -> None:
        """Called by the warehouse when a rewrite used a cached view."""
        with self._lock:
            if view_name not in self._lru:
                return
            self._lru.move_to_end(view_name)
            self.stats.hits += 1
        _count("hits")

    def on_quarantine(self, view_name: str) -> None:
        """A cache-created view was quarantined: evict it outright.

        User views have an owner who can ``repair()`` them; a cached view
        is disposable, so a quarantined one must never be served again and
        is simply dropped (counted as an eviction).  Non-cache views are
        ignored.
        """
        with self._lock:
            if view_name not in self._lru:
                return
            del self._lru[view_name]
            self.warehouse.drop_view(view_name)
            self.stats.evictions += 1
        _count("evictions")

    # -- admission ------------------------------------------------------------------

    def admit(self, shape: QueryShape) -> Optional[str]:
        """Admit a missed query shape as a new cached view.

        Returns the created view name, or None when the shape cannot be a
        view definition (e.g. a ranking function).
        """
        _count("misses")
        if shape.func not in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.misses += 1
            self._counter += 1
            name = f"{self.PREFIX}{self._counter}"
            definition = SequenceViewDefinition(
                name=name,
                base_table=shape.base_table,
                value_col=shape.value_col,
                order_by=shape.order_by,
                partition_by=shape.partition_by,
                window=shape.window,
                aggregate_name=shape.func,
                where=self._parse_where(shape.where_text),
            )
            self.warehouse.create_view(name, definition, complete=True)
            self._lru[name] = None
            self.stats.admissions += 1
            self._evict_if_needed()
        _count("admissions")
        return name

    def _parse_where(self, where_text: Optional[str]):
        if where_text is None:
            return None
        from repro.sql.parser import parse_expression

        return parse_expression(where_text)

    def _evict_if_needed(self) -> None:
        with self._lock:
            while len(self._lru) > self.max_views:
                victim, _ = self._lru.popitem(last=False)
                self.warehouse.drop_view(victim)
                self.stats.evictions += 1
                _count("evictions")

    def clear(self) -> None:
        """Drop every cache-created view."""
        with self._lock:
            for name in list(self._lru):
                self.warehouse.drop_view(name)
            self._lru.clear()
