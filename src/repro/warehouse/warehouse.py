"""The data warehouse facade: tables + materialized reporting-function views
+ transparent query rewriting.

:class:`DataWarehouse` is the library's top-level object.  It owns a
relational :class:`~repro.relational.engine.Database`, a registry of
materialized sequence views, and the query entry point that transparently
answers reporting-function queries from views (sections 3-6) with fallback
to native evaluation.

Typical use::

    wh = DataWarehouse()
    wh.create_table("sales", [("day", INTEGER), ("amount", FLOAT)])
    wh.insert("sales", rows)
    wh.create_view(
        "mv_week",
        "SELECT day, SUM(amount) OVER (ORDER BY day "
        "ROWS BETWEEN 3 PRECEDING AND 3 FOLLOWING) AS w FROM sales")
    res = wh.query(
        "SELECT day, SUM(amount) OVER (ORDER BY day "
        "ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS w FROM sales")
    res.rewrite           # -> RewriteInfo(view='mv_week', algorithm='minoa', ...)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import (
    CatalogError,
    NoRewriteError,
    QuarantinedViewError,
    ReproError,
    ViewError,
)
from repro.relational.engine import Database, Result
from repro.sql.ast_nodes import SelectStmt
from repro.sql.parser import parse_select
from repro.sql.planner import build_plan
from repro.sql.rewriter import RewriteInfo, try_rewrite
from repro.views.definition import SequenceViewDefinition
from repro.views.maintenance import (
    propagate_delete,
    propagate_insert,
    propagate_update,
)
from repro.views.materialized import MaterializedSequenceView

__all__ = ["DataWarehouse", "QueryResult"]


class QueryResult(Result):
    """A :class:`Result` carrying optional rewrite provenance.

    ``epoch`` is set by the concurrent serving tier: the epoch the query
    was pinned to (``None`` for direct single-caller queries).
    """

    rewrite: Optional[RewriteInfo] = None
    epoch: Optional[int] = None
    # Cardinality q-error max(est/actual, actual/est) of the root operator's
    # estimate — set for natively planned queries, None for rewrites.
    q_error: Optional[float] = None
    # Distributed tracing: the trace id of the span tree this query ran
    # under (None when tracing is off or the trace was unsampled).  The
    # same id is stamped on the slow-query-log entry and resolvable at the
    # ops endpoint's /trace/<id>.
    trace_id: Optional[str] = None

    @classmethod
    def wrap(cls, result: Result, rewrite: Optional[RewriteInfo]) -> "QueryResult":
        out = cls(result.schema, result.rows, result.stats)
        out.rewrite = rewrite
        return out


class DataWarehouse:
    """Facade over the engine, the view registry and the rewriter.

    Args:
        execution: an :class:`~repro.parallel.config.ExecutionConfig`
            governing window-operator evaluation, view refresh and MIN/MAX
            maintenance-band recomputation.  ``None`` (the default) runs
            everything serially; a parallel configuration routes those paths
            through the partition-parallel subsystem (:mod:`repro.parallel`).
        planner: default planner mode for ``query()``/``explain()`` —
            ``"rule"`` (heuristic, the default) or ``"cost"``
            (statistics-driven strategy/route/parallelism choice; falls
            back to the rules whenever statistics are absent or stale).
    """

    def __init__(self, execution=None, planner: str = "rule") -> None:
        from repro.sql.planner import PLANNER_MODES

        if planner not in PLANNER_MODES:
            from repro.errors import PlanError

            raise PlanError(
                f"unknown planner {planner!r} (expected one of {PLANNER_MODES})"
            )
        self.planner = planner
        self.db = Database()
        self.views: Dict[str, MaterializedSequenceView] = {}
        self.cache = None  # set by enable_query_cache()
        self.execution = execution
        self.slow_queries = None  # set by enable_slow_query_log()
        # Human-readable degradation log: quarantines, rewrite failures
        # routed back to base data, repairs.  Surfaced by the CLI.
        self.incidents: List[str] = []
        # Set by repro.serve.ConcurrentWarehouse when it takes ownership;
        # direct mutation of an owned warehouse raises ConcurrencyError.
        self._concurrent_owner = None

    def _assert_exclusive(self, op: str) -> None:
        """Refuse direct mutation while owned by a ConcurrentWarehouse.

        Snapshot readers rely on published epochs never being mutated;
        a mutation that bypasses the wrapper's serialized copy-on-write
        write path would silently corrupt pinned reads.  Calls arriving
        *through* the wrapper (its thread is inside the write section)
        pass.
        """
        owner = self._concurrent_owner
        if owner is not None and not owner.in_write_section:
            from repro.errors import ConcurrencyError

            raise ConcurrencyError(
                f"warehouse is owned by a ConcurrentWarehouse; call "
                f"{op}() on the wrapper instead of the wrapped warehouse "
                "(direct mutation would corrupt epoch-pinned snapshot reads)"
            )

    def enable_slow_query_log(
        self, threshold_ms: float = 100.0, capacity: int = 128
    ):
        """Keep a bounded ring buffer of over-threshold ``query()`` calls."""
        from repro.obs.slowlog import SlowQueryLog

        self.slow_queries = SlowQueryLog(threshold_ms, capacity)
        return self.slow_queries

    def enable_query_cache(self, max_views: int = 8):
        """Turn on semantic caching of reporting-function query shapes.

        Missed (non-view-answerable) reporting-function queries are admitted
        as complete materialized views; later queries — same or *different*
        windows — then hit the cache via derivation.  See
        :class:`repro.warehouse.cache.QueryCache`.
        """
        from repro.warehouse.cache import QueryCache

        self.cache = QueryCache(self, max_views=max_views)
        return self.cache

    # -- table management (delegation) ------------------------------------------

    def create_table(self, name: str, columns, **kwargs):
        self._assert_exclusive("create_table")
        return self.db.create_table(name, columns, **kwargs)

    def drop_table(self, name: str, **kwargs) -> None:
        self._assert_exclusive("drop_table")
        self.db.drop_table(name, **kwargs)

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        self._assert_exclusive("insert")
        return self.db.insert(table, rows)

    def create_index(self, table: str, name: str, columns, **kwargs):
        self._assert_exclusive("create_index")
        return self.db.create_index(table, name, columns, **kwargs)

    # -- view management ------------------------------------------------------------

    def create_view(
        self,
        name: str,
        definition,
        *,
        complete: bool = True,
    ) -> MaterializedSequenceView:
        """Materialize a reporting-function view.

        Args:
            definition: a defining SELECT text or a
                :class:`SequenceViewDefinition`.
            complete: materialize header/trailer rows (required for most
                derivations — section 3.2).
        """
        self._assert_exclusive("create_view")
        if name in self.views:
            raise CatalogError(f"view {name!r} already exists")
        if isinstance(definition, str):
            definition = SequenceViewDefinition.from_sql(name, definition)
        elif definition.name != name:
            raise ViewError(
                f"definition is named {definition.name!r}, expected {name!r}"
            )
        view = MaterializedSequenceView(
            self.db, definition, complete=complete, exec_config=self.execution
        )
        self.views[name] = view
        # Views materialize through direct table writes (bypassing the
        # insert() auto-ANALYZE), so collect storage-table stats here.
        self.db.analyze(definition.storage_table)
        return view

    def create_views_for_query(
        self, prefix: str, sql: str, *, complete: bool = True
    ) -> List[MaterializedSequenceView]:
        """Materialize one view per reporting function of a multi-window query.

        The intro example computes four reporting functions in one SELECT;
        this helper splits such a statement into one sequence view per
        window call (named ``<prefix>_1 .. <prefix>_k``), skipping calls the
        view model cannot capture (ranking functions, expression
        arguments).

        Returns:
            The created views (possibly fewer than the query's calls).

        Raises:
            ViewError: when the statement yields no materializable call.
        """
        stmt = parse_select(sql)
        if len(stmt.tables) != 1:
            raise ViewError(
                "create_views_for_query needs a single-table statement"
            )
        created: List[MaterializedSequenceView] = []
        from repro.views.matcher import QueryShape

        for i, call in enumerate(stmt.window_calls(), start=1):
            shape = QueryShape.from_call(stmt.tables[0].name, call, stmt.where)
            if shape is None or shape.func not in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
                continue
            name = f"{prefix}_{i}"
            definition = SequenceViewDefinition(
                name=name,
                base_table=shape.base_table,
                value_col=shape.value_col,
                order_by=shape.order_by,
                partition_by=shape.partition_by,
                window=shape.window,
                aggregate_name=shape.func,
                where=stmt.where,
            )
            created.append(self.create_view(name, definition, complete=complete))
        if not created:
            raise ViewError(
                "no materializable reporting function found in the statement"
            )
        return created

    def drop_view(self, name: str) -> None:
        self._assert_exclusive("drop_view")
        view = self.views.pop(name, None)
        if view is None:
            raise CatalogError(f"no view {name!r}")
        self.db.drop_table(view.definition.storage_table, if_exists=True)

    def view(self, name: str) -> MaterializedSequenceView:
        try:
            return self.views[name]
        except KeyError:
            raise CatalogError(f"no view {name!r} (have {sorted(self.views)})") from None

    def refresh_view(self, name: str) -> None:
        """Fully rebuild one view; quarantines it when the rebuild fails.

        Refresh is atomic (shadow table + swap-on-commit), so a failed
        refresh leaves the view *readable* at the old epoch — but the
        caller asked for a rebuild because base data may have moved, so
        the old epoch can no longer be trusted: the view is quarantined
        and queries route to base data until :meth:`repair` succeeds.
        """
        self._assert_exclusive("refresh_view")
        view = self.view(name)
        try:
            view.refresh()
        except Exception as exc:
            self.quarantine_view(name, f"refresh failed: {exc}")
            raise
        self.db.analyze(view.definition.storage_table)

    # -- quarantine & repair -----------------------------------------------------

    def healthy_views(self) -> List[MaterializedSequenceView]:
        """Views currently eligible for query routing."""
        return [v for v in self.views.values() if not v.quarantined]

    def quarantined_views(self) -> List[str]:
        return sorted(n for n, v in self.views.items() if v.quarantined)

    def quarantine_view(self, name: str, reason: str) -> None:
        """Take one view out of routing; cache-created views are evicted.

        A quarantined *user* view stays registered (its definition is the
        contract for ``repair()``); a view the query cache created has no
        owner to repair it, so it is dropped outright rather than served.
        """
        self._assert_exclusive("quarantine_view")
        view = self.view(name)
        view.quarantine(reason)
        self.incidents.append(f"quarantined view {name!r}: {reason}")
        if self.cache is not None:
            self.cache.on_quarantine(name)

    def repair(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Re-refresh, re-verify and reinstate quarantined views.

        Args:
            name: one view, or ``None`` for every quarantined view.

        Returns:
            ``{view_name: ConsistencyReport}`` for every repair attempt;
            a view is reinstated only when its report is clean.
        """
        self._assert_exclusive("repair")
        if name is not None:
            targets = [self.view(name)]
        else:
            targets = [v for v in self.views.values() if v.quarantined]
        reports: Dict[str, Any] = {}
        for view in targets:
            reports[view.name] = view.repair()
            if not view.quarantined:
                self.incidents.append(f"repaired view {view.name!r}")
        return reports

    # -- querying ----------------------------------------------------------------------

    def query(
        self,
        sql: str,
        *,
        use_views: bool = True,
        require_rewrite: bool = False,
        algorithm: str = "auto",
        variant: str = "disjunctive",
        mode: str = "auto",
        window_strategy: str = "native",
        use_index: Any = "auto",
        planner: Optional[str] = None,
    ) -> QueryResult:
        """Run a SELECT, preferring materialized views when possible.

        Args:
            use_views: attempt view-based rewriting first.
            require_rewrite: raise :class:`NoRewriteError` instead of
                falling back to base tables.
            algorithm: derivation algorithm (``"auto"``/``"maxoa"``/
                ``"minoa"``).
            variant: relational pattern variant (``"disjunctive"``/
                ``"union"``).
            mode: rewrite execution mode (``"auto"``/``"relational"``/
                ``"memory"``).
            window_strategy / use_index: forwarded to the native planner
                (Table 1's execution alternatives).
            planner: ``"rule"`` or ``"cost"``; ``None`` uses the
                warehouse default set at construction.
        """
        import time

        from repro.obs import runtime

        started = time.perf_counter()
        tracer = runtime.get_tracer()
        span = tracer.span("warehouse.query", sql=sql) if tracer.enabled else None
        try:
            result = self._query(
                sql,
                use_views=use_views,
                require_rewrite=require_rewrite,
                algorithm=algorithm,
                variant=variant,
                mode=mode,
                window_strategy=window_strategy,
                use_index=use_index,
                planner=planner or self.planner,
            )
        finally:
            if span is not None:
                span.finish()
        if span is not None and span.sampled:
            result.trace_id = span.trace_id
        elapsed = time.perf_counter() - started
        runtime.get_registry().histogram(
            "repro_engine_query_seconds",
            help="Warehouse query() wall time",
        ).observe(elapsed)
        # Adaptive re-costing: each executed window operator reports its
        # strategy and size in the cost model's charging basis (rows, or
        # rows x width for the vectorized kernel) so calibration compares
        # seconds-per-unit against the same quantity the planner multiplies.
        for strategy, units in getattr(result, "window_feedback", ()) or ():
            self.db.stats.adaptive.record(strategy, units, elapsed)
        if self.slow_queries is not None:
            info = result.rewrite
            self.slow_queries.record(
                sql,
                elapsed,
                rewrite=info.description if info is not None else None,
                summary=result.stats.summary(),
                q_error=result.q_error,
                trace_id=result.trace_id,
            )
        return result

    def _query(
        self,
        sql: str,
        *,
        use_views: bool,
        require_rewrite: bool,
        algorithm: str,
        variant: str,
        mode: str,
        window_strategy: str,
        use_index: Any,
        planner: str,
    ) -> "QueryResult":
        from repro.sql.ast_nodes import CompoundSelect
        from repro.sql.parser import parse_query

        stmt = parse_query(sql)
        if isinstance(stmt, CompoundSelect):
            # UNION ALL compounds are evaluated natively (branch rewriting
            # would need per-branch provenance; run them against base data).
            return self._run_native(
                stmt,
                window_strategy=window_strategy,
                use_index=use_index,
                planner=planner,
            )
        healthy = self.healthy_views()
        if use_views and healthy:
            try:
                rewritten = try_rewrite(
                    self.db,
                    stmt,
                    healthy,
                    algorithm=algorithm,
                    variant=variant,
                    mode=mode,
                    planner=planner,
                )
            except ReproError as exc:
                # Self-healing routing: a rewrite that blows up mid-flight
                # must not fail the query — fall back to base data.
                self.incidents.append(
                    f"rewrite failed ({exc}); query routed to base data"
                )
                rewritten = None
            if rewritten is not None:
                result, info = rewritten
                if self.cache is not None:
                    for name in info.view.split("+"):
                        self.cache.note_hit(name)
                return QueryResult.wrap(result, info)
        if use_views and self.cache is not None:
            admitted = self._cache_admit(stmt)
            if admitted:
                rewritten = try_rewrite(
                    self.db, stmt, self.healthy_views(),
                    algorithm=algorithm, variant=variant, mode=mode,
                    planner=planner)
                if rewritten is not None:
                    return QueryResult.wrap(*rewritten)
        if require_rewrite:
            raise NoRewriteError(
                "no materialized view can answer this query "
                f"(registered: {sorted(self.views)})"
            )
        return self._run_native(
            stmt,
            window_strategy=window_strategy,
            use_index=use_index,
            planner=planner,
        )

    def _run_native(
        self, stmt, *, window_strategy: str, use_index: Any, planner: str
    ) -> "QueryResult":
        """Plan and run a statement natively, capturing planner feedback.

        Attaches the root-operator cardinality q-error (estimated vs
        returned rows) and, for every executed window operator, a
        ``(strategy, rows)`` sample destined for the adaptive cost table.
        """
        plan = build_plan(
            self.db,
            stmt,
            window_strategy=window_strategy,
            use_index=use_index,
            exec_config=self.execution,
            planner=planner,
        )
        result = QueryResult.wrap(self.db.run(plan), None)
        est = getattr(plan, "analyze_est", None)
        if est is not None:
            est_rows = max(float(est["est_rows"]), 1.0)
            actual = max(float(len(result.rows)), 1.0)
            result.q_error = max(est_rows / actual, actual / est_rows)
        feedback = []
        stack = [plan]
        while stack:
            node = stack.pop()
            extra = getattr(node, "analyze_extra", None)
            if extra is not None and "strategy" in extra:
                feedback.append(
                    (
                        extra["strategy"],
                        extra.get("cost_units", extra.get("rows", 0)),
                    )
                )
            stack.extend(node.children())
        result.window_feedback = feedback
        return result

    def explain(self, sql: str, **options: Any) -> str:
        """Describe how a query would be answered (rewrite or native plan)."""
        stmt = parse_select(sql)
        if self.healthy_views():
            from repro.sql.rewriter import describe_rewrite

            info = describe_rewrite(
                self.db,
                stmt,
                self.healthy_views(),
                algorithm=options.get("algorithm", "auto"),
                variant=options.get("variant", "disjunctive"),
                mode=options.get("mode", "auto"),
                planner=options.get("planner", self.planner),
            )
            if info is not None:
                return (
                    f"REWRITE using view {info.view!r} [{info.kind}, "
                    f"{info.algorithm}, {info.mode}"
                    + (f", {info.variant}" if info.variant else "")
                    + f"]: {info.description}"
                )
        plan = build_plan(
            self.db,
            stmt,
            window_strategy=options.get("window_strategy", "native"),
            use_index=options.get("use_index", "auto"),
            exec_config=self.execution,
            planner=options.get("planner", self.planner),
        )
        return "NATIVE PLAN:\n" + plan.explain()

    def explain_analyze(self, sql: str, **options: Any) -> str:
        """Run the query under a fresh tracer and describe what happened.

        A rewritten query reports the rewrite provenance (view, MaxOA vs
        MinOA, execution mode) plus the recorded span tree — including the
        ``view.derive`` span and any operator spans of the relational
        pattern; a native query falls through to the engine's annotated
        operator tree (actual rows and per-operator wall time).
        """
        import time

        from repro.obs import runtime
        from repro.obs.trace import Tracer

        use_views = options.pop("use_views", True)
        if use_views and self.healthy_views():
            from repro.sql.rewriter import describe_rewrite

            stmt = parse_select(sql)
            info = describe_rewrite(
                self.db,
                stmt,
                self.healthy_views(),
                algorithm=options.get("algorithm", "auto"),
                variant=options.get("variant", "disjunctive"),
                mode=options.get("mode", "auto"),
                planner=options.get("planner", self.planner),
            )
            if info is not None:
                tracer = Tracer()
                started = time.perf_counter()
                with runtime.use(tracer=tracer):
                    result = self.query(sql, use_views=True, **options)
                elapsed = time.perf_counter() - started
                lines = [
                    f"REWRITE using view {info.view!r} [{info.kind}, "
                    f"{info.algorithm}, {info.mode}"
                    + (f", {info.variant}" if info.variant else "")
                    + f"]: {info.description}",
                    tracer.render_tree(),
                    f"Execution time: {elapsed * 1000:.3f} ms",
                    f"Stats: {result.stats.summary()}",
                ]
                return "\n".join(line for line in lines if line)
        planner_options = {
            k: v
            for k, v in options.items()
            if k in ("window_strategy", "use_index", "planner")
        }
        planner_options.setdefault("planner", self.planner)
        return self.db.explain_analyze(
            sql, exec_config=self.execution, **planner_options
        )

    def value_at(
        self,
        view_name: str,
        order_key,
        *,
        window=None,
        partition_key=(),
        algorithm: str = "auto",
    ) -> float:
        """Point lookup: one derived sequence value from a view.

        Evaluates ``ỹ_k`` for the row identified by ``order_key`` (and
        ``partition_key`` for partitioned views) using the single-position
        explicit derivation forms — O(k/Wx) view lookups instead of a full
        sequence derivation.

        Args:
            window: target window (defaults to the view's own window —
                an O(1) lookup).
            algorithm: ``"auto"`` (planner choice), ``"maxoa"`` or ``"minoa"``.

        Raises:
            MaintenanceError: unknown order/partition key.
            DerivationError: window not derivable from the view.
        """
        from repro.core import derivation as core_derivation
        from repro.core import maxoa as core_maxoa
        from repro.core import minoa as core_minoa
        from repro.views.maintenance import position_of

        view = self.view(view_name)
        if view.quarantined:
            raise QuarantinedViewError(
                f"view {view_name!r} is quarantined "
                f"({view.quarantine_reason}); run repair() to reinstate it"
            )
        pkey = tuple(partition_key) if not isinstance(partition_key, tuple) else partition_key
        okey = order_key if isinstance(order_key, tuple) else (order_key,)
        k = position_of(view, pkey, okey)
        seq = view.sequence(pkey)
        target = window or view.definition.window
        dplan = core_derivation.plan(
            seq.window,
            target,
            minmax=view.definition.aggregate.duplicate_insensitive,
            algorithm=algorithm,
        )
        if dplan.algorithm == "identity":
            return seq.value(k)
        if dplan.algorithm == "maxoa":
            return core_maxoa.derive_at(seq, target, k)
        if dplan.algorithm == "minoa":
            return core_minoa.derive_at(seq, target, k)
        # Remaining plans (cumulative source, prefix, reconstruct) are all
        # single-position computable through the generic facade.
        return core_derivation.derive(seq, target, chosen=dplan)[k - 1]

    def verify(self, *, quarantine: bool = True):
        """Cross-check every view against base data; see
        :func:`repro.views.verify.verify_warehouse`.

        Args:
            quarantine: take views with discrepancies out of query routing
                (detection → degradation); pass ``False`` for a pure
                read-only check.
        """
        from repro.views.verify import verify_warehouse

        self._assert_exclusive("verify")
        reports = verify_warehouse(self)
        if quarantine:
            for name, report in reports.items():
                if not report.ok and name in self.views:
                    self.quarantine_view(
                        name,
                        f"verification found {len(report.discrepancies)} "
                        "discrepancies",
                    )
        return reports

    # -- persistence ----------------------------------------------------------------------

    def save(
        self,
        directory: str,
        *,
        storage_format: Optional[int] = None,
        page_size: Optional[int] = None,
    ) -> None:
        """Persist base tables, indexes and view definitions to a directory.

        Args:
            storage_format: dump format version (3 = columnar, the
                default; 4 = paged columnar for out-of-core loads;
                2 = row JSON-lines for older readers).
            page_size: fixed page size in bytes for v4 dumps (ignored for
                other formats; default 4096).

        Views are stored as definitions and re-materialized on load (the
        dump also contains their storage tables, which load() replaces with
        a fresh refresh — guaranteeing base/view consistency).
        """
        import json
        import os

        from repro.relational.persist import save_database

        self._assert_exclusive("save")

        kwargs = {}
        if storage_format is not None:
            kwargs["format_version"] = storage_format
        if page_size is not None:
            kwargs["page_size"] = page_size
        save_database(self.db, directory, **kwargs)
        views = []
        for view in self.views.values():
            d = view.definition
            entry = {
                "name": d.name,
                "base_table": d.base_table,
                "value_col": d.value_col,
                "order_by": list(d.order_by),
                "partition_by": list(d.partition_by),
                "window": {
                    "kind": d.window.kind,
                    "l": d.window.l,
                    "h": d.window.h,
                },
                "aggregate": d.aggregate_name,
                "where": d.where_text,
                "complete": view.complete,
            }
            views.append(entry)
        # Atomic publish: never leave a torn views.json next to a good dump.
        path = os.path.join(directory, "views.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"views": views}, fh, indent=2)
        os.replace(tmp, path)

    @classmethod
    def load(
        cls,
        directory: str,
        *,
        rehydrate: bool = False,
        memory_budget_bytes: Optional[int] = None,
    ) -> "DataWarehouse":
        """Rebuild a warehouse saved with :meth:`save`.

        Args:
            rehydrate: wrap each view's *dumped* storage table instead of
                refreshing it.  The default refresh guarantees base/view
                consistency; rehydration guarantees **bit-identity** with
                the warehouse that called ``save`` (incrementally
                maintained values differ from a recompute in the last
                ulp), which is what WAL recovery needs before it replays
                digest-checked records on top.
            memory_budget_bytes: buffer-pool + operator memory budget for
                v4 (paged) dumps; ignored for in-memory formats.  ``None``
                uses the storage layer's default budget.
        """
        import json
        import os

        from repro.core.window import WindowSpec
        from repro.relational.persist import load_database
        from repro.sql.parser import parse_expression

        wh = cls()
        wh.db = load_database(directory, memory_budget_bytes=memory_budget_bytes)
        views_path = os.path.join(directory, "views.json")
        entries = []
        if os.path.exists(views_path):
            with open(views_path, encoding="utf-8") as fh:
                entries = json.load(fh).get("views", [])
        for entry in entries:
            w = entry["window"]
            window = (
                WindowSpec.cumulative()
                if w["kind"] == "cumulative"
                else WindowSpec.sliding(w["l"], w["h"], allow_point=True)
            )
            definition = SequenceViewDefinition(
                name=entry["name"],
                base_table=entry["base_table"],
                value_col=entry["value_col"],
                order_by=tuple(entry["order_by"]),
                partition_by=tuple(entry["partition_by"]),
                window=window,
                aggregate_name=entry["aggregate"],
                where=parse_expression(entry["where"]) if entry["where"] else None,
            )
            if rehydrate:
                wh.views[entry["name"]] = MaterializedSequenceView.from_storage(
                    wh.db, definition, complete=entry["complete"]
                )
            else:
                wh.create_view(
                    entry["name"], definition, complete=entry["complete"]
                )
        return wh

    def _cache_admit(self, stmt: SelectStmt) -> bool:
        """Admit a missed, rewritable reporting-function shape into the cache."""
        from repro.sql.rewriter import _rewritable_shape

        shape_info = _rewritable_shape(stmt)
        if shape_info is None:
            return False
        return self.cache.admit(shape_info[0]) is not None

    # -- workload-driven view advice ------------------------------------------------------

    def advise(self, queries: Sequence, *, top: int = 3):
        """Recommend view windows for a workload of reporting-function SQL.

        Args:
            queries: SQL strings, or ``(sql, weight)`` pairs.
            top: recommendations per query group.

        Returns:
            dict mapping a group key ``(base_table, value_col, partition_by,
            order_by, where_text)`` to a ranked list of
            :class:`~repro.views.advisor.Recommendation`.

        Queries that are not rewritable reporting-function shapes (joins,
        GROUP BY, expression arguments, ...) are ignored.

        When the base table has collected statistics, each group's costs
        are evaluated at the real row count rather than the advisor's
        normalised length.
        """
        from repro.views.advisor import WorkloadQuery, recommend
        from repro.views.matcher import QueryShape

        groups: Dict[tuple, List[WorkloadQuery]] = {}
        for entry in queries:
            sql, weight = entry if isinstance(entry, tuple) else (entry, 1.0)
            stmt = parse_select(sql)
            calls = stmt.window_calls()
            if len(stmt.tables) != 1 or len(calls) != 1:
                continue
            shape = QueryShape.from_call(stmt.tables[0].name, calls[0], stmt.where)
            if shape is None:
                continue
            key = (
                shape.base_table,
                shape.value_col,
                shape.partition_by,
                shape.order_by,
                shape.where_text,
            )
            groups.setdefault(key, []).append(
                WorkloadQuery(
                    shape.window,
                    weight=weight,
                    minmax=shape.func in ("MIN", "MAX"),
                )
            )
        def _rows(base_table: str) -> Optional[int]:
            stats = self.db.stats.get(base_table)
            if stats is not None:
                return stats.row_count
            try:
                return len(self.db.table(base_table))
            except CatalogError:
                return None

        return {
            key: recommend(workload, top=top, row_count=_rows(key[0]))
            for key, workload in groups.items()
        }

    # -- base-data modification with incremental view maintenance ------------------------

    def _dependent_views(self, table: str) -> List[MaterializedSequenceView]:
        return [
            v for v in self.views.values() if v.definition.base_table == table
        ]

    def _locate_base_slot(self, table: str, match: Dict[str, Any]) -> int:
        tbl = self.db.table(table)
        idx = {c: tbl.schema.resolve(c) for c in match}
        slots = [
            i
            for i, row in enumerate(tbl.rows)
            if all(row[idx[c]] == v for c, v in match.items())
        ]
        if len(slots) != 1:
            raise ViewError(
                f"expected exactly one row in {table!r} matching {match!r}, "
                f"found {len(slots)}"
            )
        return slots[0]

    def update_measure(
        self,
        table: str,
        *,
        keys: Dict[str, Any],
        value_col: str,
        new_value: float,
    ) -> List[Any]:
        """Point-update a measure and incrementally maintain dependent views.

        ``keys`` must identify exactly one base row (e.g. the partition and
        ordering column values).  Returns the per-view
        :class:`~repro.core.maintenance.MaintenanceResult` list; a view
        whose propagation *failed* contributes the exception instead and
        is quarantined (the base update stands — queries route to base
        data until ``repair()``).
        """
        self._assert_exclusive("update_measure")
        tbl = self.db.table(table)
        slot = self._locate_base_slot(table, keys)
        row = list(tbl.row(slot))
        row[tbl.schema.resolve(value_col)] = float(new_value)
        tbl.update_slot(slot, row)
        results = []
        for view in self._dependent_views(table):
            d = view.definition
            if d.value_col != value_col:
                continue
            if not self._row_in_view(view, dict(zip(tbl.schema.names(), row))):
                continue
            pkey = tuple(keys[c] for c in d.partition_by)
            okey = tuple(keys[c] for c in d.order_by)
            results.append(
                self._propagate(
                    view, propagate_update, view, okey, new_value,
                    partition_key=pkey,
                )
            )
        return results

    def insert_row(self, table: str, values: Sequence[Any]) -> List[Any]:
        """Insert one base row and incrementally maintain dependent views."""
        self._assert_exclusive("insert_row")
        tbl = self.db.table(table)
        tbl.insert(values)
        row = dict(zip(tbl.schema.names(), values))
        results = []
        for view in self._dependent_views(table):
            if not self._row_in_view(view, row):
                continue
            d = view.definition
            pkey = tuple(row[c] for c in d.partition_by)
            okey = tuple(row[c] for c in d.order_by)
            results.append(
                self._propagate(
                    view, propagate_insert, view, okey,
                    float(row[d.value_col]), partition_key=pkey,
                )
            )
        return results

    def delete_row(self, table: str, *, keys: Dict[str, Any]) -> List[Any]:
        """Delete one base row and incrementally maintain dependent views."""
        self._assert_exclusive("delete_row")
        tbl = self.db.table(table)
        slot = self._locate_base_slot(table, keys)
        row = dict(zip(tbl.schema.names(), tbl.row(slot)))
        tbl.delete_slots([slot])
        results = []
        for view in self._dependent_views(table):
            if not self._row_in_view(view, row):
                continue
            d = view.definition
            pkey = tuple(row[c] for c in d.partition_by)
            okey = tuple(row[c] for c in d.order_by)
            results.append(
                self._propagate(
                    view, propagate_delete, view, okey, partition_key=pkey
                )
            )
        return results

    def _propagate(self, view: MaterializedSequenceView, rule, *args, **kwargs):
        """Run one maintenance rule; on failure quarantine the view and
        return the exception (graceful degradation, the base change
        stands)."""
        try:
            return rule(*args, **kwargs)
        except ReproError as exc:
            self.quarantine_view(view.name, f"maintenance failed: {exc}")
            return exc

    def _row_in_view(self, view: MaterializedSequenceView, row: Dict[str, Any]) -> bool:
        """Does the view's selection cover this base row?"""
        d = view.definition
        if d.where is None:
            return True
        schema = self.db.table(d.base_table).schema
        compiled = d.where.bind(schema)
        ordered = tuple(row[c.name] for c in schema)
        return compiled(ordered) is True
