"""Data warehouse environment: facade, view registry, synthetic workloads."""

from repro.warehouse.cache import CacheStats, QueryCache
from repro.warehouse.warehouse import DataWarehouse, QueryResult
from repro.warehouse.workload import (
    create_credit_card_schema,
    densify_daily,
    create_sequence_table,
    generate_locations,
    generate_transactions,
    load_credit_card_warehouse,
    sequence_values,
)

__all__ = [
    "CacheStats",
    "DataWarehouse",
    "QueryCache",
    "QueryResult",
    "create_credit_card_schema",
    "densify_daily",
    "create_sequence_table",
    "generate_locations",
    "generate_transactions",
    "load_credit_card_warehouse",
    "sequence_values",
]
