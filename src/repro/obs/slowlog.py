"""Slow-query log: a bounded ring buffer of over-threshold query records.

Attached to :class:`~repro.warehouse.warehouse.DataWarehouse` via
``enable_slow_query_log``; every ``query()`` call reports its wall time
here and entries at or above the threshold are kept (newest evicts oldest
once ``capacity`` is reached).  Dumpable as JSON for offline triage.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Ring buffer of slow queries (threshold in milliseconds)."""

    def __init__(
        self,
        threshold_ms: float = 100.0,
        capacity: int = 128,
        q_error_threshold: float = 2.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        # Queries whose cardinality q-error reaches this are kept even when
        # fast: misestimates are a planner bug signal, not a latency one.
        self.q_error_threshold = float(q_error_threshold)
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_queries = 0

    def record(
        self,
        sql: str,
        seconds: float,
        *,
        rewrite: Optional[str] = None,
        summary: Optional[str] = None,
        q_error: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> bool:
        """Report one query; returns True when it was kept (slow, or with a
        cardinality estimate off by at least ``q_error_threshold``x).

        ``trace_id`` links the entry to its span tree: with the ops
        endpoint running, ``/trace/<trace_id>`` shows exactly where the
        slow query spent its time.
        """
        with self._lock:
            self.total_queries += 1
            ms = seconds * 1000.0
            misestimated = (
                q_error is not None and q_error >= self.q_error_threshold
            )
            if ms < self.threshold_ms and not misestimated:
                return False
            entry = {
                "sql": sql,
                "ms": round(ms, 3),
                "when": time.time(),
                "rewrite": rewrite,
                "stats": summary,
            }
            if q_error is not None:
                entry["q_error"] = round(q_error, 2)
            if trace_id is not None:
                entry["trace_id"] = trace_id
            self._entries.append(entry)
            return True

    def note(self, kind: str, /, **detail: Any) -> Dict[str, Any]:
        """Append a structured non-query event (always kept).

        The SLO evaluator files its alerts here — ``kind`` like
        ``"slo_alert"`` plus arbitrary JSON-safe detail — so one ring
        buffer tells the whole latency story: the slow queries and the
        burn-rate alarms they tripped.
        """
        entry = {"event": kind, "when": time.time(), **detail}
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """Oldest-to-newest snapshot of the retained slow queries."""
        with self._lock:
            return [dict(e) for e in self._entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def to_json(self) -> str:
        doc = {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "total_queries": self.total_queries,
            "slow_queries": self.entries(),
        }
        return json.dumps(doc, indent=2)

    def dump(self, path: str) -> int:
        """Write the JSON document to ``path``; returns entries written."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        return len(self)
