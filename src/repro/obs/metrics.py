"""Metrics: named counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds instruments keyed by ``(name, labels)``.
Instruments are created lazily (``registry.counter("repro_cache_hits_total")``
returns the existing instrument on every later call), mutate cheaply, and
merge associatively across registries — the same discipline
:class:`~repro.relational.stats.ExecutionStats` already follows across
process-pool workers, and indeed ExecutionStats is now a *view* over one of
these registries.

Naming follows ``repro_<layer>_<name>`` (see DESIGN.md §5f); exporters
produce Prometheus text exposition format and plain JSON.  Everything is
stdlib-only and picklable (locks are dropped and re-created, exactly like
ExecutionStats always did).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

Labels = Tuple[Tuple[str, str], ...]

# Latency-ish default buckets (seconds).  Fixed at instrument creation so
# histograms from different workers merge bucket-by-bucket.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _freeze_labels(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared plumbing: identity, help text, pickling without the lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: Labels, help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__["_lock"] = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count.

    ``value`` is a plain attribute: an owner-exclusive hot loop may read it,
    accumulate locally and assign once at the end (the pattern the scan and
    join operators use); concurrent writers must go through :meth:`inc`.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def _merge(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value


class Gauge(_Instrument):
    """A value that can go up and down (merge sums, keeping associativity)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def _merge(self, other: "Gauge") -> None:
        # Sum rather than last-write-wins: merge stays associative and
        # commutative, which the cross-worker fold relies on.
        with self._lock:
            self.value += other.value


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative ``le`` buckets, Prometheus-style).

    Bucket bounds are fixed at creation; two histograms with the same name
    must share bounds to merge (enforced), which keeps worker-side and
    parent-side observations foldable bucket-by-bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        with self._lock:
            lo, hi = 0, len(self.bounds)
            while lo < hi:  # first bound >= value (bisect_left on bounds)
                mid = (lo + hi) // 2
                if self.bounds[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            self.counts[lo] += 1
            self.sum += value
            self.count += 1

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs ending with ``(+Inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def _merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ, cannot merge"
            )
        with self._lock:
            for i, n in enumerate(other.counts):
                self.counts[i] += n
            self.sum += other.sum
            self.count += other.count


_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process-local set of instruments, mergeable across workers."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], _Instrument] = {}
        self._lock = threading.Lock()

    # -- instrument access ---------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None, *, help: str = ""
    ) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Optional[Dict[str, str]] = None, *, help: str = ""
    ) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        *,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, _freeze_labels(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = Histogram(name, key[1], help, buckets)
                self._instruments[key] = inst
            elif not isinstance(inst, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}"
                )
        return inst

    def _get(self, cls, name, labels, help):
        key = (name, _freeze_labels(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, key[1], help)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}"
                )
        return inst

    # -- inspection ----------------------------------------------------------

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def get(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get((name, _freeze_labels(labels)))

    def value(self, name: str, labels: Optional[Dict[str, str]] = None) -> float:
        """Counter/gauge value (0 when the instrument does not exist yet)."""
        inst = self.get(name, labels)
        return 0 if inst is None else getattr(inst, "value", 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (associative, commutative for
        counters/gauges/histograms; safe under concurrent mutation of self)."""
        for inst in other.instruments():
            if isinstance(inst, Histogram):
                mine = self.histogram(
                    inst.name, dict(inst.labels), help=inst.help,
                    buckets=inst.bounds,
                )
            elif isinstance(inst, Gauge):
                mine = self.gauge(inst.name, dict(inst.labels), help=inst.help)
            else:
                mine = self.counter(inst.name, dict(inst.labels), help=inst.help)
            mine._merge(inst)

    def merge_json(self, doc: Dict[str, Any]) -> int:
        """Fold a :meth:`to_json` document into this registry.

        The over-the-wire counterpart of :meth:`merge`: the serve tier's
        ``stats`` op ships ``to_json()`` snapshots, and ``repro stats
        --addr`` folds one per node into a cluster-wide view.  Histogram
        buckets arrive cumulative (Prometheus-style) and are de-cumulated
        back into per-bucket counts before merging; same-name histograms
        with different bounds raise, exactly like :meth:`merge`.

        Returns the number of instruments folded in.
        """
        folded = 0
        for name, entries in doc.items():
            for entry in entries:
                kind = entry.get("kind", "counter")
                labels = entry.get("labels") or None
                if kind == "histogram":
                    buckets = entry.get("buckets", [])
                    bounds = [
                        float(b["le"]) for b in buckets
                        if b["le"] != "+Inf"
                        and not (isinstance(b["le"], float)
                                 and math.isinf(b["le"]))
                    ]
                    if not bounds:
                        continue
                    mine = self.histogram(name, labels, buckets=bounds)
                    other = Histogram(name, mine.labels, buckets=bounds)
                    prev = 0
                    counts: List[int] = []
                    for b in buckets:
                        n = int(b["count"])
                        counts.append(max(n - prev, 0))
                        prev = n
                    # to_json always emits len(bounds)+1 buckets (+Inf
                    # last); pad defensively against truncated documents.
                    counts += [0] * (len(bounds) + 1 - len(counts))
                    other.counts = counts[: len(bounds) + 1]
                    other.sum = float(entry.get("sum", 0.0))
                    other.count = int(entry.get("count", 0))
                    mine._merge(other)
                elif kind == "gauge":
                    self.gauge(name, labels).inc(float(entry.get("value", 0)))
                else:
                    self.counter(name, labels).inc(float(entry.get("value", 0)))
                folded += 1
        return folded

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_json` document."""
        registry = cls()
        registry.merge_json(doc)
        return registry

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    # -- exporters -----------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for inst in sorted(self.instruments(), key=lambda i: (i.name, i.labels)):
            entry: Dict[str, Any] = {"kind": inst.kind}
            if inst.labels:
                entry["labels"] = dict(inst.labels)
            if isinstance(inst, Histogram):
                entry["sum"] = inst.sum
                entry["count"] = inst.count
                entry["buckets"] = [
                    {"le": "+Inf" if math.isinf(le) else le, "count": n}
                    for le, n in inst.bucket_counts()
                ]
            else:
                entry["value"] = inst.value
            out.setdefault(inst.name, []).append(entry)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        by_name: Dict[str, List[_Instrument]] = {}
        for inst in self.instruments():
            by_name.setdefault(inst.name, []).append(inst)
        lines: List[str] = []
        for name in sorted(by_name):
            family = sorted(by_name[name], key=lambda i: i.labels)
            head = family[0]
            # HELP/TYPE exactly once per family, even when labeled series
            # interleave and only some carry help text: take the first
            # non-empty help in the family, not the first member's.
            help_text = next((i.help for i in family if i.help), "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {head.kind}")
            for inst in family:
                if isinstance(inst, Histogram):
                    for le, n in inst.bucket_counts():
                        le_text = "+Inf" if math.isinf(le) else _fmt_value(le)
                        label_text = _render_labels(
                            list(inst.labels) + [("le", le_text)]
                        )
                        lines.append(f"{name}_bucket{label_text} {n}")
                    base = _render_labels(list(inst.labels))
                    lines.append(f"{name}_sum{base} {_fmt_value(inst.sum)}")
                    lines.append(f"{name}_count{base} {inst.count}")
                else:
                    label_text = _render_labels(list(inst.labels))
                    lines.append(f"{name}{label_text} {_fmt_value(inst.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__["_lock"] = threading.Lock()


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    # Prometheus text format spells non-finite values +Inf/-Inf/NaN;
    # repr(float) would emit 'inf'/'nan', which scrapers reject.
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")
    )


def _render_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = [f'{k}="{_escape_label_value(str(v))}"' for k, v in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""
