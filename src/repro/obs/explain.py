"""EXPLAIN ANALYZE: execute a statement and render the annotated plan.

Two entry points mirror the two query front doors:

* :func:`explain_analyze_plan` — probe and run an already-built physical
  plan (what ``Database.explain_analyze`` uses);
* warehouse-level EXPLAIN ANALYZE lives on
  :meth:`repro.warehouse.warehouse.DataWarehouse.explain_analyze`, which
  first consults the view rewriter and renders the derivation trace
  (``view.derive`` span: MaxOA/MinOA choice) when a view answers the query.

Output format (one plan node per line, postgres-flavoured)::

    Sort(pos ASC)  (actual rows=40, time=0.210 ms)
      Project(...)  (actual rows=40, time=0.180 ms)
        WindowOperator(...)  (actual rows=40, time=0.150 ms, strategy=pipelined)
          TableScan(seq)  (actual rows=40, time=0.020 ms)
    Execution time: 0.412 ms
    Stats: scanned=40 pairs=0 ...
"""

from __future__ import annotations

import time
from typing import Any, Tuple

from repro.obs.instrument import PlanProbe
from repro.obs.trace import NULL_TRACER

__all__ = ["explain_analyze_plan"]


def explain_analyze_plan(
    db: Any,
    plan: Any,
    *,
    tracer: Any = NULL_TRACER,
    stats: Any = None,
) -> Tuple[str, Any]:
    """Execute ``plan`` under a probe; return (rendered text, Result).

    ``stats=None`` lets ``db.run`` create (and publish) the stats block,
    exactly as a normal query would.
    """
    start = time.perf_counter()
    with PlanProbe(plan, tracer) as probe:
        result = db.run(plan, stats)
    elapsed = time.perf_counter() - start
    lines = [probe.render()]
    mode = getattr(plan, "planner_mode", None)
    if mode is not None:
        lines.append(f"Planner: {mode}")
        for note in getattr(plan, "planner_notes", ()) or ():
            lines.append(f"  {note}")
    lines.append(f"Execution time: {elapsed * 1000:.3f} ms")
    lines.append(f"Stats: {result.stats.summary()}")
    text = "\n".join(lines)
    return text, result
