"""Per-operator probes: span + row/batch accounting over a physical plan.

:class:`PlanProbe` walks an operator tree and monkey-patches each node's
``execute`` / ``execute_batches`` *instance* attribute with a wrapper that

* opens a span named after the operator kind (``table.scan``,
  ``join.index``, ``window.evaluate``, …) when the tracer is enabled;
* counts rows/batches out and inclusive wall time into a per-node
  :class:`NodeMeasure` regardless of the tracer.

Patching is instance-level and fully restored on exit, so plans remain
reusable and un-probed executions pay nothing.  Spans nest naturally: in a
pull pipeline the child generator's body first runs inside the parent's
iteration, which is exactly when its span is pushed under the parent's.

``render_annotated`` then prints the ``EXPLAIN``-style tree with actual
rows, wall time and any strategy attributes the operator published via its
``analyze_extra`` dict (the window operator records the chosen strategy
there, the rewriter records MaxOA/MinOA on the result instead).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.trace import NULL_TRACER

__all__ = ["NodeMeasure", "PlanProbe", "span_name_for", "render_annotated"]

# Operator class name -> span name (span taxonomy, DESIGN.md §5f).
_SPAN_NAMES = {
    "TableScan": "table.scan",
    "Alias": "op.alias",
    "Filter": "op.filter",
    "Project": "op.project",
    "Sort": "op.sort",
    "Limit": "op.limit",
    "UnionAll": "op.union",
    "Distinct": "op.distinct",
    "NestedLoopJoin": "join.nested",
    "IndexNestedLoopJoin": "join.index",
    "HashJoin": "join.hash",
    "SortMergeJoin": "join.sortmerge",
    "HashAggregate": "op.aggregate",
    "WindowOperator": "window.evaluate",
}


def span_name_for(node: Any) -> str:
    """Span name for an operator node (``op.<classname>`` when unmapped)."""
    return _SPAN_NAMES.get(type(node).__name__, f"op.{type(node).__name__.lower()}")


def _span_attrs(node: Any, ordinal: int) -> Dict[str, Any]:
    # Pre-order ordinal, not id(node): stable across runs and readable.
    attrs: Dict[str, Any] = {"node": ordinal}
    table = getattr(node, "table", None)
    if table is not None and hasattr(table, "name"):
        attrs["table"] = table.name
    inner = getattr(node, "inner_table", None)
    if inner is not None and hasattr(inner, "name"):
        attrs["inner_table"] = inner.name
    return attrs


class NodeMeasure:
    """What one probed node actually did during one (or more) executions."""

    __slots__ = ("rows_out", "batches_out", "wall", "calls")

    def __init__(self) -> None:
        self.rows_out = 0
        self.batches_out = 0
        self.wall = 0.0
        self.calls = 0


def _walk(node: Any) -> Iterator[Any]:
    yield node
    for child in node.children():
        yield from _walk(child)


class PlanProbe:
    """Context manager that instruments every node of a plan tree."""

    def __init__(self, plan: Any, tracer: Any = NULL_TRACER) -> None:
        self.plan = plan
        self.tracer = tracer
        self.measures: Dict[int, NodeMeasure] = {}
        self._patched: List[Any] = []

    def __enter__(self) -> "PlanProbe":
        for ordinal, node in enumerate(_walk(self.plan)):
            if id(node) in self.measures:  # shared sub-plan: probe once
                continue
            measure = self.measures[id(node)] = NodeMeasure()
            self._patch(node, measure, ordinal)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for node in self._patched:
            for attr in ("execute", "execute_batches"):
                try:
                    delattr(node, attr)
                except AttributeError:
                    pass
        self._patched.clear()

    def _patch(self, node: Any, measure: NodeMeasure, ordinal: int) -> None:
        tracer = self.tracer
        name = span_name_for(node)
        attrs = _span_attrs(node, ordinal)
        orig_execute = node.execute
        orig_batches = node.execute_batches

        def execute(stats: Any) -> Iterator[Any]:
            span = tracer.span(name, **attrs) if tracer.enabled else None
            measure.calls += 1
            start = time.perf_counter()
            n = 0
            try:
                for row in orig_execute(stats):
                    n += 1
                    yield row
            finally:
                measure.rows_out += n
                measure.wall += time.perf_counter() - start
                if span is not None:
                    span.set(rows_out=n)
                    span.finish()

        def execute_batches(stats: Any, chunk_rows: int = 65536) -> Iterator[Any]:
            span = tracer.span(name, **attrs) if tracer.enabled else None
            measure.calls += 1
            start = time.perf_counter()
            rows = batches = 0
            try:
                for batch in orig_batches(stats, chunk_rows):
                    rows += batch.num_rows
                    batches += 1
                    yield batch
            finally:
                measure.rows_out += rows
                measure.batches_out += batches
                measure.wall += time.perf_counter() - start
                if span is not None:
                    span.set(rows_out=rows, batches_out=batches)
                    span.finish()

        node.execute = execute
        node.execute_batches = execute_batches
        self._patched.append(node)

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        return render_annotated(self.plan, self.measures)


def render_annotated(
    plan: Any, measures: Dict[int, NodeMeasure], indent: int = 0
) -> str:
    """EXPLAIN-style tree annotated with the probe's actual measurements."""
    measure = measures.get(id(plan))
    note = ""
    est = getattr(plan, "analyze_est", None)
    est_parts = (
        [f"est rows={est['est_rows']}", f"est cost={est['est_cost']}"]
        if est
        else []
    )
    if measure is not None and measure.calls:
        parts = est_parts + [
            f"actual rows={measure.rows_out}",
            f"time={measure.wall * 1000:.3f} ms",
        ]
        if measure.batches_out:
            parts.append(f"batches={measure.batches_out}")
        if measure.calls > 1:
            parts.append(f"calls={measure.calls}")
        extra = getattr(plan, "analyze_extra", None)
        if extra:
            parts.extend(f"{k}={v}" for k, v in sorted(extra.items()))
        note = "  (" + ", ".join(parts) + ")"
    elif measure is not None:
        note = "  (" + ", ".join(est_parts + ["never executed"]) + ")"
    lines = ["  " * indent + plan.label() + note]
    for child in plan.children():
        lines.append(render_annotated(child, measures, indent + 1))
    return "\n".join(lines)
