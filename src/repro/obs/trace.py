"""Tracing: nested spans with monotonic-clock durations.

A :class:`Tracer` hands out :class:`Span` context managers.  Parent links
come from a per-thread span stack, so the volcano-style pull pipeline —
where a parent operator's generator advances its child's generator — nests
spans exactly as the operators nest.  Span durations are therefore
*inclusive* wall time (everything that happens while the operator is live),
the same convention ``EXPLAIN ANALYZE`` uses in mainstream engines.

Distributed traces (DESIGN.md §5k): every span carries a ``trace_id``
(inherited from its parent; a fresh one per root span) and a globally
unique random ``span_id``, so spans recorded by *different* tracers — a
client process, a serve worker thread, a process-pool child — stitch into
one tree.  A remote parent is adopted by passing a
:class:`~repro.obs.context.TraceContext` as ``parent_context``; spans
recorded in a worker process come back as dicts and are folded in with
:meth:`Tracer.ingest`.  Sampling is decided once per root span
(``sample_rate``) and propagates with the context; unsampled spans keep
the stack honest but are never recorded.

The default tracer everywhere is :data:`NULL_TRACER`: ``enabled`` is False
and ``span()`` returns a shared do-nothing context manager, so the
instrumented hot paths cost one attribute check when tracing is off (the
bench-smoke gate enforces this stays ≤ a few percent).

Exports: ``to_json()`` (flat span list with parent ids),
``to_chrome_trace()`` (Chrome ``trace_event`` "X" complete events — load
the file in ``chrome://tracing`` / Perfetto), and ``trace_tree()`` (the
nested JSON span tree of one trace id, what ``/trace/<id>`` serves).
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.context import TraceContext, new_span_id, new_trace_id

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed operation: name, attributes, events, parent link."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "trace_id", "sampled",
        "thread_id", "start", "end", "attributes", "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: Dict[str, Any],
        *,
        trace_id: str,
        sampled: bool = True,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.sampled = sampled
        self.thread_id = threading.get_ident()
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attributes = attributes
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []

    # -- mutation ------------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach structured attributes (last write wins per key)."""
        self.attributes.update(attributes)
        return self

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append((name, time.perf_counter(), attributes))

    def context(self) -> TraceContext:
        """The propagable identity of this span (see ``repro.obs.context``)."""
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id, sampled=self.sampled
        )

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()
            self.tracer._finish(self)

    @property
    def duration(self) -> float:
        """Seconds from start to finish (to *now* while still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [
                {"name": n, "at": t, "attributes": dict(a)}
                for n, t, a in self.events
            ],
        }

    @classmethod
    def from_dict(cls, tracer: "Tracer", doc: Dict[str, Any]) -> "Span":
        """Rebuild a finished span from its exported dict (never touches the
        tracer's stack — used to fold worker-process spans into a parent).

        Cross-process ``start`` values are each process's own
        ``perf_counter`` epoch; durations and parent links are exact, the
        absolute placement on a shared timeline is not.
        """
        span = cls.__new__(cls)
        span.tracer = tracer
        span.name = str(doc.get("name", ""))
        span.span_id = doc.get("span_id")
        span.parent_id = doc.get("parent_id")
        span.trace_id = doc.get("trace_id")
        span.sampled = bool(doc.get("sampled", True))
        span.thread_id = int(doc.get("thread_id", 0))
        span.start = float(doc.get("start", 0.0))
        span.end = span.start + float(doc.get("duration", 0.0))
        span.attributes = dict(doc.get("attributes") or {})
        span.events = [
            (
                str(e.get("name", "")),
                float(e.get("at", span.start)),
                dict(e.get("attributes") or {}),
            )
            for e in (doc.get("events") or [])
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration:.6f})"


class Tracer:
    """Collects finished spans; hands out nested span context managers.

    Args:
        sample_rate: probability that a *root* span (and therefore its
            whole trace) is recorded.  1.0 records everything; 0.0 keeps
            the stack bookkeeping but records nothing.  Non-root spans
            always inherit their parent's decision.
        seed: seeds the sampling RNG for deterministic tests.
    """

    enabled = True

    def __init__(self, *, sample_rate: float = 1.0,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self._rng = random.Random(seed)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.finished: List[Span] = []
        # Events emitted with no span open (e.g. a fault armed between
        # queries) land here instead of being dropped.
        self.loose_events: List[Tuple[str, float, Dict[str, Any]]] = []
        self._epoch = time.perf_counter()

    # -- span creation -------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self,
        name: str,
        parent_context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; use as a context manager (or call ``finish()``).

        ``parent_context`` adopts a remote parent (a span living in another
        process or thread): the new span joins that trace under that span
        id, inheriting its sampling decision.  An explicit remote parent
        wins over the thread-local stack — it names the *causal* parent
        even when some unrelated span happens to be open locally.  With
        neither, the span roots a brand-new trace and this tracer's
        ``sample_rate`` decides whether the trace is recorded.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent_context is not None:
            trace_id = parent_context.trace_id
            parent_id = parent_context.span_id
            sampled = parent_context.sampled
        elif parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        else:
            trace_id = new_trace_id()
            parent_id = None
            sampled = (
                self.sample_rate >= 1.0
                or self._rng.random() < self.sample_rate
            )
        span = Span(
            self, name, new_span_id(), parent_id, attributes,
            trace_id=trace_id, sampled=sampled,
        )
        stack.append(span)
        return span

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> Optional[TraceContext]:
        """The context of the innermost open span on this thread (or None)."""
        span = self.current_span()
        return span.context() if span is not None else None

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the current span (or the loose-event list)."""
        span = self.current_span()
        if span is not None:
            span.add_event(name, **attributes)
        else:
            with self._lock:
                self.loose_events.append((name, time.perf_counter(), attributes))

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate out-of-order finishes (a generator closed early): pop the
        # span wherever it sits instead of corrupting the stack.
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if not span.sampled:
            return  # unsampled traces keep the stack honest, nothing else
        with self._lock:
            self.finished.append(span)

    def ingest(self, span_docs: List[Dict[str, Any]]) -> int:
        """Fold spans exported by another tracer (a worker process) into
        this one; returns how many were added.  Span/trace ids are globally
        unique random values, so no remapping is needed."""
        added = [
            Span.from_dict(self, doc)
            for doc in span_docs
            if isinstance(doc, dict)
        ]
        if added:
            with self._lock:
                self.finished.extend(added)
        return len(added)

    # -- queries -------------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self.finished)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def slowest(self, n: int = 5) -> List[Span]:
        return sorted(self.spans(), key=lambda s: s.duration, reverse=True)[:n]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans():
            if span.trace_id is not None and span.trace_id not in seen:
                seen[span.trace_id] = None
        return list(seen)

    def spans_for(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    def trace_tree(self, trace_id: str) -> Dict[str, Any]:
        """The nested span tree of one trace (what ``/trace/<id>`` serves).

        ``roots`` holds every span whose parent is not itself part of the
        trace; a *connected* trace has exactly one.
        """
        spans = self.spans_for(trace_id)
        children: Dict[Optional[str], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        for kids in children.values():
            kids.sort(key=lambda s: s.start)
        by_id = {s.span_id: s for s in spans}

        def node(span: Span) -> Dict[str, Any]:
            doc = span.to_dict()
            doc["children"] = [
                node(child) for child in children.get(span.span_id, [])
            ]
            return doc

        roots = [s for s in spans if s.parent_id not in by_id]
        roots.sort(key=lambda s: s.start)
        return {
            "trace_id": trace_id,
            "span_count": len(spans),
            "connected": len(roots) == 1 if spans else False,
            "roots": [node(r) for r in roots],
        }

    def is_connected(self, trace_id: str) -> bool:
        """True when the trace has spans and they form a single-root tree."""
        tree = self.trace_tree(trace_id)
        return bool(tree["span_count"]) and tree["connected"]

    # -- exporters -----------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "spans": [s.to_dict() for s in self.spans()],
            "loose_events": [
                {"name": n, "at": t, "attributes": dict(a)}
                for n, t, a in list(self.loose_events)
            ],
        }
        return json.dumps(doc, indent=2, default=str)

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON (complete "X" events, µs timestamps)."""
        events: List[Dict[str, Any]] = []
        for span in self.spans():
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - self._epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": span.thread_id % 1_000_000,
                "args": {str(k): str(v) for k, v in span.attributes.items()},
            })
            for name, at, attrs in span.events:
                events.append({
                    "name": name,
                    "ph": "i",
                    "ts": (at - self._epoch) * 1e6,
                    "pid": 1,
                    "tid": span.thread_id % 1_000_000,
                    "s": "t",
                    "args": {str(k): str(v) for k, v in attrs.items()},
                })
        return json.dumps({"traceEvents": events}, default=str)

    def render_tree(self, *, min_duration: float = 0.0) -> str:
        """Indented text rendering of the span forest (for ``--profile``)."""
        spans = self.spans()
        children: Dict[Optional[str], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        for kids in children.values():
            kids.sort(key=lambda s: s.start)
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id not in by_id]
        roots.sort(key=lambda s: s.start)
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            if span.duration < min_duration:
                return
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            lines.append(
                "  " * depth
                + f"{span.name}  {span.duration * 1000:.3f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            for name, _at, _attrs in span.events:
                lines.append("  " * (depth + 1) + f"* {name}")
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op span: every method is a cheap no-op returning self."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    trace_id = None
    sampled = False
    attributes: Dict[str, Any] = {}
    events: List[Any] = []
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def add_event(self, name: str, **attributes: Any) -> None:
        return None

    def context(self) -> None:
        return None

    def finish(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The off switch: hot paths pay one attribute check and nothing else."""

    enabled = False
    sample_rate = 0.0

    def span(
        self,
        name: str,
        parent_context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def current_context(self) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def ingest(self, span_docs: List[Dict[str, Any]]) -> int:
        return 0

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def slowest(self, n: int = 5) -> List[Span]:
        return []

    def trace_ids(self) -> List[str]:
        return []

    def spans_for(self, trace_id: str) -> List[Span]:
        return []

    def trace_tree(self, trace_id: str) -> Dict[str, Any]:
        return {
            "trace_id": trace_id, "span_count": 0,
            "connected": False, "roots": [],
        }

    def is_connected(self, trace_id: str) -> bool:
        return False


NULL_TRACER = NullTracer()
