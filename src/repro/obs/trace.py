"""Tracing: nested spans with monotonic-clock durations.

A :class:`Tracer` hands out :class:`Span` context managers.  Parent links
come from a per-thread span stack, so the volcano-style pull pipeline —
where a parent operator's generator advances its child's generator — nests
spans exactly as the operators nest.  Span durations are therefore
*inclusive* wall time (everything that happens while the operator is live),
the same convention ``EXPLAIN ANALYZE`` uses in mainstream engines.

The default tracer everywhere is :data:`NULL_TRACER`: ``enabled`` is False
and ``span()`` returns a shared do-nothing context manager, so the
instrumented hot paths cost one attribute check when tracing is off (the
bench-smoke gate enforces this stays ≤ a few percent).

Exports: ``to_json()`` (flat span list with parent ids) and
``to_chrome_trace()`` (Chrome ``trace_event`` "X" complete events — load
the file in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed operation: name, attributes, events, parent link."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "thread_id",
        "start", "end", "attributes", "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = threading.get_ident()
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attributes = attributes
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []

    # -- mutation ------------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach structured attributes (last write wins per key)."""
        self.attributes.update(attributes)
        return self

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append((name, time.perf_counter(), attributes))

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()
            self.tracer._finish(self)

    @property
    def duration(self) -> float:
        """Seconds from start to finish (to *now* while still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [
                {"name": n, "at": t, "attributes": dict(a)}
                for n, t, a in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration:.6f})"


class Tracer:
    """Collects finished spans; hands out nested span context managers."""

    enabled = True

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.finished: List[Span] = []
        # Events emitted with no span open (e.g. a fault armed between
        # queries) land here instead of being dropped.
        self.loose_events: List[Tuple[str, float, Dict[str, Any]]] = []
        self._epoch = time.perf_counter()

    # -- span creation -------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; use as a context manager (or call ``finish()``)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            self,
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            attributes,
        )
        stack.append(span)
        return span

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the current span (or the loose-event list)."""
        span = self.current_span()
        if span is not None:
            span.add_event(name, **attributes)
        else:
            with self._lock:
                self.loose_events.append((name, time.perf_counter(), attributes))

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate out-of-order finishes (a generator closed early): pop the
        # span wherever it sits instead of corrupting the stack.
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            self.finished.append(span)

    # -- queries -------------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self.finished)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def slowest(self, n: int = 5) -> List[Span]:
        return sorted(self.spans(), key=lambda s: s.duration, reverse=True)[:n]

    # -- exporters -----------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "spans": [s.to_dict() for s in self.spans()],
            "loose_events": [
                {"name": n, "at": t, "attributes": dict(a)}
                for n, t, a in list(self.loose_events)
            ],
        }
        return json.dumps(doc, indent=2, default=str)

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON (complete "X" events, µs timestamps)."""
        events: List[Dict[str, Any]] = []
        for span in self.spans():
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - self._epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": span.thread_id % 1_000_000,
                "args": {str(k): str(v) for k, v in span.attributes.items()},
            })
            for name, at, attrs in span.events:
                events.append({
                    "name": name,
                    "ph": "i",
                    "ts": (at - self._epoch) * 1e6,
                    "pid": 1,
                    "tid": span.thread_id % 1_000_000,
                    "s": "t",
                    "args": {str(k): str(v) for k, v in attrs.items()},
                })
        return json.dumps({"traceEvents": events}, default=str)

    def render_tree(self, *, min_duration: float = 0.0) -> str:
        """Indented text rendering of the span forest (for ``--profile``)."""
        spans = self.spans()
        children: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        for kids in children.values():
            kids.sort(key=lambda s: s.start)
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id not in by_id]
        roots.sort(key=lambda s: s.start)
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            if span.duration < min_duration:
                return
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            lines.append(
                "  " * depth
                + f"{span.name}  {span.duration * 1000:.3f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            for name, _at, _attrs in span.events:
                lines.append("  " * (depth + 1) + f"* {name}")
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op span: every method is a cheap no-op returning self."""

    __slots__ = ()
    name = ""
    attributes: Dict[str, Any] = {}
    events: List[Any] = []
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def add_event(self, name: str, **attributes: Any) -> None:
        return None

    def finish(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The off switch: hot paths pay one attribute check and nothing else."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def slowest(self, n: int = 5) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
