"""SLO evaluation: availability and latency burn rates over the time series.

An :class:`Slo` names a target (``availability`` >= 99.9%, or latency
``p99`` <= 250 ms) for one request stream — a counter pair
(total/errors) for availability, a histogram for latency.  The
:class:`SloEvaluator` checks each SLO against the sampled
:class:`~repro.obs.timeseries.TimeSeriesRegistry` using the standard
multi-window multi-burn-rate recipe (Google SRE workbook ch. 5):

* **burn rate** = observed badness / allowed badness.  For availability
  the observed badness is the error ratio over the window and the
  allowance is the error budget ``1 - target``; burn 1.0 means errors
  arriving exactly fast enough to spend the whole budget by the end of
  the SLO period.  For latency, badness is the fraction of requests over
  the latency target (from cumulative histogram-bucket deltas) against
  the same budget.
* **two windows** — an alert fires only when *both* the fast window
  (pages quickly, resets quickly) and the slow window (filters blips)
  exceed ``burn_threshold``.

Alerts are emitted as structured events: a
``repro_slo_alerts_total{slo=...}`` counter increment in the metrics
registry and a ``slowlog.note("slo_alert", ...)`` entry, so both
``/metrics`` scrapes and the slow-query log tell the story.  Evaluation
is pull-based (``evaluate()``), typically driven by the ops endpoint or a
bench loop; there is no background thread of its own.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRegistry

__all__ = ["Slo", "SloEvaluator", "SloStatus"]


@dataclass(frozen=True)
class Slo:
    """One objective over one request stream.

    ``kind`` is ``"availability"`` (error ratio vs. ``target`` success
    ratio, from ``total_metric``/``error_metric`` counters) or
    ``"latency"`` (fraction of ``histogram_metric`` observations over
    ``latency_target_s`` vs. the same ``1 - target`` budget, at the
    quantile ``quantile`` for reporting).
    """

    name: str
    kind: str  # "availability" | "latency"
    target: float  # e.g. 0.999 -> 0.1% error budget
    total_metric: str = ""
    error_metric: str = ""
    histogram_metric: str = ""
    latency_target_s: float = 0.25
    quantile: float = 0.99
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    burn_threshold: float = 1.0
    labels: Optional[Dict[str, str]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "availability" and not self.total_metric:
            raise ValueError("availability SLO needs total_metric")
        if self.kind == "latency" and not self.histogram_metric:
            raise ValueError("latency SLO needs histogram_metric")

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad-request ratio."""
        return 1.0 - self.target


@dataclass
class SloStatus:
    """One evaluation result for one SLO."""

    slo: str
    kind: str
    healthy: bool
    burn_fast: float
    burn_slow: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "healthy": self.healthy,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            **self.detail,
        }


class SloEvaluator:
    """Evaluates SLOs against a time series; emits alerts on breach.

    Alerts edge-trigger: a breach emits one alert event and further
    evaluations stay silent until the SLO recovers (both windows back
    under threshold), which then emits an ``slo_recovered`` event.
    """

    def __init__(
        self,
        timeseries: TimeSeriesRegistry,
        *,
        registry: Optional[MetricsRegistry] = None,
        slowlog: Optional[Any] = None,
    ) -> None:
        self.timeseries = timeseries
        self.registry = registry
        self.slowlog = slowlog
        self._slos: List[Slo] = []
        self._breached: Dict[str, bool] = {}
        self._lock = threading.Lock()

    def add(self, slo: Slo) -> "SloEvaluator":
        with self._lock:
            if any(s.name == slo.name for s in self._slos):
                raise ValueError(f"duplicate SLO name {slo.name!r}")
            self._slos.append(slo)
            self._breached[slo.name] = False
        return self

    def slos(self) -> List[Slo]:
        with self._lock:
            return list(self._slos)

    # -- burn-rate math ------------------------------------------------------

    def _availability_burn(
        self, slo: Slo, window: float, now: Optional[float]
    ) -> Dict[str, float]:
        ts = self.timeseries
        total = ts.delta(slo.total_metric, slo.labels, window=window, now=now)
        errors = (
            ts.delta(slo.error_metric, slo.labels, window=window, now=now)
            if slo.error_metric
            else 0.0
        )
        ratio = (errors / total) if total > 0 else 0.0
        return {
            "total": total,
            "errors": errors,
            "error_ratio": ratio,
            "burn": ratio / slo.budget,
        }

    def _latency_burn(
        self, slo: Slo, window: float, now: Optional[float]
    ) -> Dict[str, Any]:
        ts = self.timeseries
        hist = ts._hist_delta(slo.histogram_metric, slo.labels, window, now)
        if hist is None:
            return {"total": 0.0, "slow_ratio": 0.0, "burn": 0.0, "p": None}
        bounds, cum, _count = hist
        total = float(cum[-1]) if cum else 0.0
        if total <= 0:
            return {"total": 0.0, "slow_ratio": 0.0, "burn": 0.0, "p": None}
        # Requests at or under the latency target: the cumulative count at
        # the first bound >= target (conservative when the target falls
        # between bounds — everything in the straddling bucket counts as
        # slow).
        under = 0.0
        for i, bound in enumerate(bounds):
            if bound <= slo.latency_target_s:
                under = float(cum[i])
            else:
                break
        slow_ratio = (total - under) / total
        p = ts.percentile(
            slo.histogram_metric, slo.quantile, slo.labels,
            window=window, now=now,
        )
        return {
            "total": total,
            "slow_ratio": slow_ratio,
            "burn": slow_ratio / slo.budget,
            "p": p,
        }

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> List[SloStatus]:
        """Evaluate every SLO once; emits alert/recovery events on edges."""
        statuses: List[SloStatus] = []
        for slo in self.slos():
            if slo.kind == "availability":
                fast = self._availability_burn(slo, slo.fast_window_s, now)
                slow = self._availability_burn(slo, slo.slow_window_s, now)
                detail = {
                    "target": slo.target,
                    "error_ratio_fast": round(fast["error_ratio"], 6),
                    "error_ratio_slow": round(slow["error_ratio"], 6),
                }
            else:
                fast = self._latency_burn(slo, slo.fast_window_s, now)
                slow = self._latency_burn(slo, slo.slow_window_s, now)
                detail = {
                    "target": slo.target,
                    "latency_target_s": slo.latency_target_s,
                    "quantile": slo.quantile,
                    "p_fast": fast["p"],
                    "p_slow": slow["p"],
                }
            breached = (
                fast["burn"] > slo.burn_threshold
                and slow["burn"] > slo.burn_threshold
            )
            status = SloStatus(
                slo=slo.name,
                kind=slo.kind,
                healthy=not breached,
                burn_fast=fast["burn"],
                burn_slow=slow["burn"],
                detail=detail,
            )
            statuses.append(status)
            self._transition(slo, status)
        return statuses

    def _transition(self, slo: Slo, status: SloStatus) -> None:
        with self._lock:
            was = self._breached.get(slo.name, False)
            now_breached = not status.healthy
            if was == now_breached:
                return
            self._breached[slo.name] = now_breached
        event = "slo_alert" if now_breached else "slo_recovered"
        if self.registry is not None:
            self.registry.counter(
                "repro_slo_alerts_total",
                {"slo": slo.name, "event": event},
                help="SLO burn-rate alert transitions",
            ).inc()
        if self.slowlog is not None:
            self.slowlog.note(event, **status.to_dict())

    def breached(self) -> List[str]:
        """Names of SLOs currently in breach."""
        with self._lock:
            return [name for name, bad in self._breached.items() if bad]

    def to_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        return {"slos": [s.to_dict() for s in self.evaluate(now)]}
