"""Ring-buffer time series over the metrics registry.

A :class:`TimeSeriesRegistry` periodically snapshots every instrument of a
:class:`~repro.obs.metrics.MetricsRegistry` into per-instrument ring
buffers (bounded ``capacity`` points each), turning the registry's
point-in-time values into short windows of history that the SLO evaluator
and ``/healthz`` can query:

* :meth:`rate` — per-second increase of a counter over a window (clamped
  at zero across restarts/resets);
* :meth:`percentile` — a quantile estimate from the *delta* of a
  histogram's cumulative buckets over a window (linear interpolation
  inside the winning bucket, the same estimator Prometheus'
  ``histogram_quantile`` uses);
* :meth:`window` — the raw ``(t, value)`` points for a gauge/counter.

Sampling is either manual (``sample()`` — deterministic tests pass an
explicit ``now``) or a daemon thread (``start(interval)``).  Everything is
stdlib-only; memory is bounded by ``capacity × instruments``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["TimeSeriesRegistry"]

Key = Tuple[str, Tuple[Tuple[str, str], ...]]

# A histogram sample: (count, sum, cumulative bucket counts).
HistPoint = Tuple[int, float, Tuple[int, ...]]


class TimeSeriesRegistry:
    """Sampled history of one metrics registry, bounded per instrument."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        interval: float = 1.0,
        capacity: int = 600,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = capacity
        self._series: Dict[Key, deque] = {}
        self._bounds: Dict[Key, Tuple[float, ...]] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- sampling ------------------------------------------------------------

    def sample(self, now: Optional[float] = None) -> int:
        """Snapshot every instrument once; returns instruments sampled.

        ``now`` defaults to ``time.time()``; tests pass explicit times to
        make window queries deterministic.
        """
        from repro.obs import runtime

        registry = self.registry
        if registry is None:
            registry = runtime.get_registry()
        t = time.time() if now is None else float(now)
        sampled = 0
        for inst in registry.instruments():
            key = (inst.name, inst.labels)
            if isinstance(inst, Histogram):
                value: Any = (
                    inst.count, inst.sum,
                    tuple(n for _le, n in inst.bucket_counts()),
                )
                bounds = inst.bounds
            else:
                value = float(inst.value)
                bounds = None
            with self._lock:
                ring = self._series.get(key)
                if ring is None:
                    ring = self._series[key] = deque(maxlen=self.capacity)
                if bounds is not None:
                    self._bounds[key] = bounds
                ring.append((t, value))
            sampled += 1
        return sampled

    def start(self, interval: Optional[float] = None) -> "TimeSeriesRegistry":
        """Start the background sampler thread (idempotent)."""
        if interval is not None:
            self.interval = float(interval)
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.sample()
                except Exception:  # pragma: no cover - sampler must survive
                    pass

        self._thread = threading.Thread(
            target=loop, name="repro-ts-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)

    def __enter__(self) -> "TimeSeriesRegistry":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- window queries ------------------------------------------------------

    def _points(
        self, name: str, labels: Optional[Dict[str, str]], window: float,
        now: Optional[float],
    ) -> List[Tuple[float, Any]]:
        key = (name, _freeze(labels))
        with self._lock:
            ring = self._series.get(key)
            points = list(ring) if ring is not None else []
        if not points:
            return []
        end = points[-1][0] if now is None else float(now)
        lo = end - float(window)
        return [(t, v) for t, v in points if lo <= t <= end]

    def window(
        self, name: str, labels: Optional[Dict[str, str]] = None, *,
        window: float, now: Optional[float] = None,
    ) -> List[Tuple[float, Any]]:
        """The raw sampled ``(t, value)`` points inside the window."""
        return self._points(name, labels, window, now)

    def rate(
        self, name: str, labels: Optional[Dict[str, str]] = None, *,
        window: float, now: Optional[float] = None,
    ) -> float:
        """Per-second increase of a counter over the window (>= 0).

        Needs at least two points in the window; a decrease (process
        restart) clamps to zero rather than going negative.
        """
        points = self._points(name, labels, window, now)
        if len(points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        if t1 <= t0:
            return 0.0
        return max(float(v1) - float(v0), 0.0) / (t1 - t0)

    def delta(
        self, name: str, labels: Optional[Dict[str, str]] = None, *,
        window: float, now: Optional[float] = None,
    ) -> float:
        """Absolute increase of a counter over the window (>= 0)."""
        points = self._points(name, labels, window, now)
        if len(points) < 2:
            return 0.0
        return max(float(points[-1][1]) - float(points[0][1]), 0.0)

    def gauge_stats(
        self, name: str, labels: Optional[Dict[str, str]] = None, *,
        window: float, now: Optional[float] = None,
    ) -> Optional[Dict[str, float]]:
        """min/max/avg/last of a gauge over the window (None when empty)."""
        points = self._points(name, labels, window, now)
        values = [float(v) for _t, v in points]
        if not values:
            return None
        return {
            "min": min(values), "max": max(values),
            "avg": sum(values) / len(values), "last": values[-1],
        }

    # -- histogram-window quantiles ------------------------------------------

    def _hist_delta(
        self, name: str, labels: Optional[Dict[str, str]], window: float,
        now: Optional[float],
    ) -> Optional[Tuple[Tuple[float, ...], List[int], int]]:
        key = (name, _freeze(labels))
        points = self._points(name, labels, window, now)
        hist_points = [
            (t, v) for t, v in points
            if isinstance(v, tuple) and len(v) == 3
        ]
        if len(hist_points) < 2:
            return None
        bounds = self._bounds.get(key)
        if bounds is None:
            return None
        first, last = hist_points[0][1], hist_points[-1][1]
        if len(first[2]) != len(last[2]):
            return None  # bucket layout changed mid-window
        cum = [max(b - a, 0) for a, b in zip(first[2], last[2])]
        total = max(last[0] - first[0], 0)
        return bounds, cum, total

    def percentile(
        self, name: str, q: float,
        labels: Optional[Dict[str, str]] = None, *,
        window: float, now: Optional[float] = None,
    ) -> Optional[float]:
        """Quantile (``q`` in [0, 1]) of a histogram's observations that
        fell inside the window, from cumulative-bucket deltas.

        Linear interpolation inside the winning bucket; values in the
        +Inf bucket report the largest finite bound.  ``None`` when the
        window holds fewer than two samples or saw no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        hist = self._hist_delta(name, labels, window, now)
        if hist is None:
            return None
        bounds, cum, _total = hist
        observations = cum[-1] if cum else 0
        if observations <= 0:
            return None
        rank = q * observations
        prev_cum = 0
        prev_bound = 0.0
        for i, bound in enumerate(bounds):
            if cum[i] >= rank:
                in_bucket = cum[i] - prev_cum
                if in_bucket <= 0:
                    return float(bound)
                frac = (rank - prev_cum) / in_bucket
                return float(prev_bound + (bound - prev_bound) * frac)
            prev_cum = cum[i]
            prev_bound = float(bound)
        return float(bounds[-1]) if bounds else None

    # -- inspection ----------------------------------------------------------

    def series_names(self) -> List[Tuple[str, Dict[str, str]]]:
        with self._lock:
            return [(name, dict(labels)) for name, labels in self._series]

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)


def _freeze(labels: Optional[Dict[str, str]]):
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# Re-exported for the SLO evaluator's latency math.
INF = math.inf
