"""Ops endpoint: a stdlib HTTP server exposing metrics, health and traces.

:class:`OpsServer` wraps :class:`http.server.ThreadingHTTPServer` and
serves:

* ``GET /metrics``   — Prometheus text exposition of the registry;
* ``GET /healthz``   — JSON health: serve role, per-replica lag,
  quarantine/divergence, buffer-pool pressure and SLO status, with 200
  when healthy and 503 when degraded;
* ``GET /trace/<id>`` — the exported span tree for one trace id (404
  when the tracer has no spans for it);
* ``GET /traces``    — the known trace ids;
* ``GET /slo``       — the SLO evaluator's current statuses;
* ``GET /``          — an index of the above.

Runnable standalone (``repro ops``) or alongside ``repro serve
--ops-port``.  Everything is read-only and stdlib-only; the request
threads only take snapshots (``registry.to_prometheus()``,
``tracer.trace_tree()``) so they never block the serve path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["OpsServer"]


class OpsServer:
    """The ops HTTP endpoint; bind with ``port=0`` for an ephemeral port.

    ``registry``/``tracer`` default to the process-global runtime objects
    at *request* time, so an OpsServer started before ``runtime.use(...)``
    still sees whatever is installed when the scrape arrives.  ``health``
    is an optional callable returning extra health fields (the serve tier
    passes its ``_status`` payload); ``slo`` an optional
    :class:`~repro.obs.slo.SloEvaluator`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Any] = None,
        slo: Optional[Any] = None,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.host = host
        self._port = port
        self._registry = registry
        self._tracer = tracer
        self.slo = slo
        self.health = health
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "OpsServer":
        if self._httpd is not None:
            return self
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-ops-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- view helpers (also used by tests, no HTTP required) -----------------

    def registry(self) -> MetricsRegistry:
        if self._registry is not None:
            return self._registry
        from repro.obs import runtime

        return runtime.get_registry()

    def tracer(self) -> Any:
        if self._tracer is not None:
            return self._tracer
        from repro.obs import runtime

        return runtime.get_tracer()

    def healthz(self) -> Dict[str, Any]:
        """The health document; ``status`` is ``"ok"`` or ``"degraded"``.

        Degraded when the role payload reports divergence/quarantine, the
        buffer pool is past its budget, or any SLO is in breach — the
        conditions an operator must act on, as opposed to load signals
        (lag, queue depth) which are reported but do not flip the status.
        """
        registry = self.registry()
        doc: Dict[str, Any] = {"status": "ok"}
        degraded = []

        role: Dict[str, Any] = {}
        if self.health is not None:
            try:
                role = dict(self.health() or {})
            except Exception as exc:  # health probe itself failing is news
                role = {"error": str(exc)}
                degraded.append("health_probe")
        doc["role"] = role
        if role.get("diverged"):
            degraded.append("diverged")
        if role.get("quarantined"):
            degraded.append("quarantined")

        lag = {
            dict(inst.labels).get("replica", ""): inst.value
            for inst in registry.instruments()
            if inst.name == "repro_replica_lag_epochs"
        }
        doc["replica_lag_epochs"] = lag

        occupancy = registry.value("repro_buffer_pool_occupancy_bytes")
        budget = registry.value("repro_buffer_pool_budget_bytes")
        pressure = (occupancy / budget) if budget else 0.0
        doc["buffer_pool"] = {
            "occupancy_bytes": occupancy,
            "budget_bytes": budget,
            "pressure": round(pressure, 4),
        }
        if pressure > 1.0:
            degraded.append("buffer_pool_over_budget")

        if self.slo is not None:
            statuses = self.slo.evaluate()
            doc["slo"] = [s.to_dict() for s in statuses]
            for s in statuses:
                if not s.healthy:
                    degraded.append(f"slo:{s.slo}")

        if degraded:
            doc["status"] = "degraded"
            doc["degraded"] = degraded
        return doc

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        tracer = self.tracer()
        if not getattr(tracer, "enabled", False):
            return None
        if trace_id not in tracer.trace_ids():
            return None
        return tracer.trace_tree(trace_id)


def _make_handler(ops: OpsServer):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-ops/1.0"

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # ops scrapes should not spam stderr

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            try:
                self._route()
            except (BrokenPipeError, ConnectionResetError):
                pass
            except Exception as exc:  # never kill the listener thread
                try:
                    self._send_json({"error": str(exc)}, status=500)
                except Exception:
                    pass

        def _route(self) -> None:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/metrics":
                body = ops.registry().to_prometheus()
                self._send(
                    body.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/healthz":
                doc = ops.healthz()
                status = 200 if doc["status"] == "ok" else 503
                self._send_json(doc, status=status)
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                doc = ops.trace(trace_id)
                if doc is None:
                    self._send_json(
                        {"error": f"unknown trace {trace_id!r}"}, status=404
                    )
                else:
                    self._send_json(doc)
            elif path == "/traces":
                tracer = ops.tracer()
                ids = (
                    tracer.trace_ids()
                    if getattr(tracer, "enabled", False)
                    else []
                )
                self._send_json({"trace_ids": ids})
            elif path == "/slo":
                if ops.slo is None:
                    self._send_json({"slos": []})
                else:
                    self._send_json(ops.slo.to_dict())
            elif path == "/":
                self._send_json({
                    "endpoints": [
                        "/metrics", "/healthz", "/trace/<id>",
                        "/traces", "/slo",
                    ],
                })
            else:
                self._send_json(
                    {"error": f"no such endpoint {path!r}"}, status=404
                )

        def _send_json(self, doc: Dict[str, Any], status: int = 200) -> None:
            body = json.dumps(doc, indent=2, default=str).encode("utf-8")
            self._send(body, "application/json", status=status)

        def _send(
            self, body: bytes, content_type: str, status: int = 200
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return Handler
