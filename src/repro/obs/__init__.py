"""Engine-wide observability plane: tracing spans, metrics, EXPLAIN ANALYZE.

Zero-dependency building blocks:

* :mod:`repro.obs.trace` — nested spans (monotonic durations, attributes,
  parent links; JSON + Chrome ``trace_event`` export) behind a near-free
  null tracer;
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms in a
  mergeable :class:`MetricsRegistry` with Prometheus-text and JSON export;
* :mod:`repro.obs.runtime` — the process-global active tracer/registry and
  the single-publication rule for per-query stats;
* :mod:`repro.obs.instrument` — per-operator probes over a physical plan;
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE`` rendering;
* :mod:`repro.obs.slowlog` — the warehouse slow-query ring buffer;
* :mod:`repro.obs.context` — W3C-traceparent-style context propagation;
* :mod:`repro.obs.timeseries` — ring-buffer sampling of the registry with
  windowed rate/percentile queries;
* :mod:`repro.obs.slo` — multi-window burn-rate SLO evaluation;
* :mod:`repro.obs.httpd` — the ``/metrics`` · ``/healthz`` · ``/trace/<id>``
  ops endpoint.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.obs.context import TraceContext
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs import runtime
from repro.obs.slowlog import SlowQueryLog
from repro.obs.timeseries import TimeSeriesRegistry
from repro.obs.slo import Slo, SloEvaluator, SloStatus
from repro.obs.httpd import OpsServer

__all__ = [
    "TraceContext",
    "TimeSeriesRegistry",
    "Slo",
    "SloEvaluator",
    "SloStatus",
    "OpsServer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "runtime",
    "SlowQueryLog",
]
