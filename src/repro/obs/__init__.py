"""Engine-wide observability plane: tracing spans, metrics, EXPLAIN ANALYZE.

Zero-dependency building blocks:

* :mod:`repro.obs.trace` — nested spans (monotonic durations, attributes,
  parent links; JSON + Chrome ``trace_event`` export) behind a near-free
  null tracer;
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms in a
  mergeable :class:`MetricsRegistry` with Prometheus-text and JSON export;
* :mod:`repro.obs.runtime` — the process-global active tracer/registry and
  the single-publication rule for per-query stats;
* :mod:`repro.obs.instrument` — per-operator probes over a physical plan;
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE`` rendering;
* :mod:`repro.obs.slowlog` — the warehouse slow-query ring buffer.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs import runtime
from repro.obs.slowlog import SlowQueryLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "runtime",
    "SlowQueryLog",
]
