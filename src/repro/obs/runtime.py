"""Process-global observability runtime: the active tracer and registry.

Every instrumented layer asks this module for the current
:class:`~repro.obs.trace.Tracer` and :class:`~repro.obs.metrics.MetricsRegistry`
instead of holding its own reference, so

* the default is always the shared :data:`~repro.obs.trace.NULL_TRACER`
  (tracing off ⇒ near-zero overhead), and
* tests and the CLI can swap a real tracer/registry in for one scope via
  :func:`use` and assert exact emissions.

The *registry* default is a real (cheap) :class:`MetricsRegistry`, not a
null object: counters are a few nanoseconds and ``repro stats`` must work
without any prior opt-in.

Publication discipline (prevents double counting, see DESIGN.md §5f):
:func:`publish_stats` folds one query's :class:`ExecutionStats`-backed
registry into the global registry, and is called exactly once per stats
block — by ``Database.run``/``run_batches`` when *they* created the block,
or by ``ExecutorPool.close()`` when the pool owns its stats.  Callers that
received a stats block never publish it.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = [
    "get_tracer",
    "get_registry",
    "set_tracer",
    "set_registry",
    "use",
    "event",
    "current_context",
    "publish_stats",
]

_tracer = NULL_TRACER
_registry = MetricsRegistry()


def get_tracer():
    """The active tracer (the shared null tracer unless one is installed)."""
    return _tracer


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def set_tracer(tracer) -> None:
    """Install a tracer process-wide (``None`` restores the null tracer)."""
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install a registry process-wide (``None`` installs a fresh one)."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()


@contextlib.contextmanager
def use(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[None]:
    """Install a tracer and/or registry for the dynamic extent of a block."""
    global _tracer, _registry
    prev_tracer, prev_registry = _tracer, _registry
    if tracer is not None:
        _tracer = tracer
    if registry is not None:
        _registry = registry
    try:
        yield
    finally:
        _tracer, _registry = prev_tracer, prev_registry


def event(name: str, **attributes) -> None:
    """Emit an event on the current span (no-op when tracing is off)."""
    tracer = _tracer
    if tracer.enabled:
        tracer.event(name, **attributes)


def current_context():
    """The active span's :class:`~repro.obs.context.TraceContext`, or None
    (tracing off, or no span open on this thread)."""
    tracer = _tracer
    if not tracer.enabled:
        return None
    return tracer.current_context()


def publish_stats(stats, registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one owned ExecutionStats block into the global registry.

    The stats block's backing registry already uses the final global metric
    names (``repro_engine_*`` / ``repro_parallel_*``), so publication is a
    plain associative merge.
    """
    (registry if registry is not None else _registry).merge(stats.registry)
