"""Trace context: the W3C-traceparent-shaped identity of one distributed trace.

A :class:`TraceContext` is the portable part of a span — ``trace_id``
(32 lowercase hex chars, shared by every span of one request), ``span_id``
(16 hex chars naming the span that is the remote parent), and the
``sampled`` flag (whether the originating tracer decided to record this
trace).  It crosses three kinds of boundary in this codebase:

* the **serve protocol** — encoded as a ``traceparent`` header field in the
  request object (``{"trace": {"traceparent": "00-<trace>-<span>-01"}}``);
* the **process-pool executor** — pickled into each task as a plain dict so
  worker-side spans parent correctly across ``fork`` *and* ``spawn``;
* the **replication path** — captured at commit time so shipments that
  drain later (lag buffering, ``catch_up``) still carry the originating
  commit's context.

The wire format follows the W3C Trace Context ``traceparent`` layout
(``version "00"``, flags ``01`` = sampled / ``00`` = unsampled).  Parsing
is strict on shape but never raises on garbage from the network: malformed
input decodes to ``None`` so a bad client cannot crash the server's
dispatch loop.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "parse_traceparent",
]

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

_ALL_ZERO_TRACE = "0" * 32
_ALL_ZERO_SPAN = "0" * 16


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars, never all-zero)."""
    while True:
        tid = os.urandom(16).hex()
        if tid != _ALL_ZERO_TRACE:  # pragma: no branch - astronomically rare
            return tid


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars, never all-zero)."""
    while True:
        sid = os.urandom(8).hex()
        if sid != _ALL_ZERO_SPAN:  # pragma: no branch - astronomically rare
            return sid


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one trace: ids plus the sampling decision."""

    trace_id: str
    span_id: str
    sampled: bool = True

    # -- wire format ---------------------------------------------------------

    def to_traceparent(self) -> str:
        """``00-<trace_id>-<span_id>-<flags>`` (flags: 01 sampled, 00 not)."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, text: str) -> Optional["TraceContext"]:
        """Parse a traceparent string; ``None`` when malformed or all-zero."""
        if not isinstance(text, str):
            return None
        # Strict per the W3C spec: uppercase hex is invalid, not normalized.
        match = _TRACEPARENT_RE.match(text.strip())
        if match is None:
            return None
        trace_id = match.group("trace_id")
        span_id = match.group("span_id")
        if trace_id == _ALL_ZERO_TRACE or span_id == _ALL_ZERO_SPAN:
            return None
        sampled = bool(int(match.group("flags"), 16) & 0x01)
        return cls(trace_id=trace_id, span_id=span_id, sampled=sampled)

    # -- dict codec (for pickling into tasks / JSON protocol fields) ---------

    def to_dict(self) -> Dict[str, Any]:
        return {"traceparent": self.to_traceparent()}

    @classmethod
    def from_dict(cls, doc: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        """Decode the ``{"traceparent": ...}`` shape; tolerant of garbage."""
        if not isinstance(doc, dict):
            return None
        return cls.from_traceparent(doc.get("traceparent"))


def parse_traceparent(text: Any) -> Optional[TraceContext]:
    """Module-level alias of :meth:`TraceContext.from_traceparent`."""
    return TraceContext.from_traceparent(text)
