"""Durable replication: WAL, recovery, epoch shipping, failover.

The robustness capstone over the serving tier (DESIGN.md §5h):

* :mod:`repro.replicate.wal` — CRC32-framed, fsync'd write-ahead epoch
  log; every commit is durable *before* it publishes.
* :mod:`repro.replicate.recovery` — replay the log over the last
  checkpointed snapshot; digest-verified, then view-verified.
* :mod:`repro.replicate.replica` / :mod:`repro.replicate.shipper` — warm
  replicas applying the primary's epoch stream in commit order, with lag
  buffering, partition catch-up and optional ``min_insync`` acks.
* :mod:`repro.replicate.failover` — health-probed promotion of the
  freshest replica and a retry/redirect client.

Submodules import the serving tier, which may itself need
:mod:`repro.replicate.wal`; exports resolve lazily (PEP 562) so the
package never participates in an import cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "EpochRecord": ("repro.replicate.wal", "EpochRecord"),
    "WriteAheadLog": ("repro.replicate.wal", "WriteAheadLog"),
    "state_digest": ("repro.replicate.wal", "state_digest"),
    "RecoveryReport": ("repro.replicate.recovery", "RecoveryReport"),
    "recover": ("repro.replicate.recovery", "recover"),
    "wal_path": ("repro.replicate.recovery", "wal_path"),
    "Replica": ("repro.replicate.replica", "Replica"),
    "LocalLink": ("repro.replicate.shipper", "LocalLink"),
    "RemoteLink": ("repro.replicate.shipper", "RemoteLink"),
    "Shipper": ("repro.replicate.shipper", "Shipper"),
    "Endpoint": ("repro.replicate.failover", "Endpoint"),
    "FailoverCoordinator": ("repro.replicate.failover", "FailoverCoordinator"),
    "ReplicatedClient": ("repro.replicate.failover", "ReplicatedClient"),
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.replicate.failover import (  # noqa: F401
        Endpoint,
        FailoverCoordinator,
        ReplicatedClient,
    )
    from repro.replicate.recovery import RecoveryReport, recover, wal_path  # noqa: F401
    from repro.replicate.replica import Replica  # noqa: F401
    from repro.replicate.shipper import LocalLink, RemoteLink, Shipper  # noqa: F401
    from repro.replicate.wal import EpochRecord, WriteAheadLog, state_digest  # noqa: F401


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
