"""Warm replicas: warehouses that apply shipped epoch records.

A :class:`Replica` wraps its own :class:`ConcurrentWarehouse` (optionally
with its own WAL, for chained durability) and applies
:class:`~repro.replicate.wal.EpochRecord` shipments in commit order.  The
replica stays *warm*: every applied epoch is published to its epoch
store, so reads can be served at any moment — the failover path promotes
the freshest replica and it starts accepting writes with no rebuild step.

Divergence safety: each record carries the primary's post-commit content
digest; :meth:`ConcurrentWarehouse.apply_record` recomputes it after the
local re-execution.  A mismatch marks the replica *diverged* — it keeps
serving reads (flagged) but refuses further applies and promotion, since
promoting a diverged replica would silently fork history.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.errors import DivergenceError, ReplicationError
from repro.replicate.wal import EpochRecord
from repro.serve.concurrent import ConcurrentWarehouse

__all__ = ["Replica"]


class Replica:
    """One warm standby applying the primary's epoch stream.

    Args:
        warehouse: the replica's own serving wrapper (fresh by default —
            primary and replicas must start from the same empty state; a
            replica seeded from a snapshot should be built via
            :func:`repro.replicate.recovery.recover`).
        name: identity used in shipping acks, metrics and failover.
    """

    def __init__(self, warehouse: Optional[ConcurrentWarehouse] = None, *,
                 name: str = "replica", execution=None) -> None:
        self.name = name
        self.warehouse = (
            warehouse if warehouse is not None
            else ConcurrentWarehouse(execution=execution)
        )
        self._lock = threading.Lock()
        self._promoted = False
        self._diverged: Optional[str] = None

    # -- the apply path ------------------------------------------------------

    def apply(self, record: EpochRecord) -> Dict[str, Any]:
        """Apply one shipped record; returns the ack the shipper records.

        Raises:
            ReplicationError: the replica is diverged (applies refused) or
                the record does not advance its epoch.
            DivergenceError: this apply diverged; the replica marks itself
                un-promotable before re-raising.
        """
        with self._lock:
            if self._diverged is not None:
                raise ReplicationError(
                    f"replica {self.name!r} is diverged and refuses applies: "
                    f"{self._diverged}"
                )
            try:
                self.warehouse.apply_record(record)
            except DivergenceError as exc:
                self._diverged = str(exc)
                raise
            return {"replica": self.name, "applied": record.epoch}

    # -- role ----------------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self._promoted

    @property
    def diverged(self) -> Optional[str]:
        return self._diverged

    @property
    def applied_epoch(self) -> int:
        """Highest epoch this replica serves (== last applied record)."""
        return self.warehouse.epochs.latest_epoch

    def promote(self) -> Dict[str, Any]:
        """Accept the primary role: local writes are legal from now on.

        Idempotent.  Refuses when diverged — the coordinator must pick
        another replica.
        """
        with self._lock:
            if self._diverged is not None:
                raise ReplicationError(
                    f"cannot promote diverged replica {self.name!r}: "
                    f"{self._diverged}"
                )
            self._promoted = True
        from repro.obs import runtime

        runtime.event("replica.promoted", replica=self.name,
                      epoch=self.applied_epoch)
        return self.status()

    def status(self) -> Dict[str, Any]:
        """Health/lag probe payload (the failover coordinator's input)."""
        return {
            "replica": self.name,
            "applied": self.applied_epoch,
            "primary": self._promoted,
            "diverged": self._diverged,
        }
