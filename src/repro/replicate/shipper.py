"""Epoch shipping: stream committed records from the primary to replicas.

The :class:`Shipper` registers as a commit listener on the primary's
:class:`~repro.serve.concurrent.ConcurrentWarehouse`; every logged commit
hands it the just-published :class:`EpochRecord`, which it forwards to
each link **in commit order**.  A link that fails (or is faulted) buffers
its backlog and catches up on a later commit or an explicit
:meth:`catch_up` — replicas therefore see a gap-free prefix of the
primary's history at all times, just possibly a stale one.

Two transports:

* :class:`LocalLink` — in-process, wraps a :class:`Replica` directly.
  Deterministic and fast; the fault-matrix tests use it.
* :class:`RemoteLink` — ships over the serving tier's NDJSON protocol
  (``ship``/``promote``/``status`` ops) to a replica-role
  :class:`~repro.serve.server.ServeServer`; redials after failures.

Fault site ``ship`` (per-link): a ``replica_lag`` spec defers this
shipment (buffered, acked later); a ``ship_partition`` spec drops the
link entirely until it heals.  Both leave the primary's commit intact.

Synchronous replication: with ``min_insync=k`` a commit whose record was
acked by fewer than *k* replicas raises
:class:`~repro.errors.ReplicationError` back to the writer.  The local
write stands (it is WAL-durable); the error tells the writer its
redundancy guarantee was not met.

The per-replica gauge ``repro_replica_lag_epochs`` tracks how many epochs
each link's ack trails the primary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReplicationError
from repro.replicate.wal import EpochRecord

__all__ = ["LocalLink", "RemoteLink", "Shipper"]


class LocalLink:
    """In-process transport to a :class:`~repro.replicate.replica.Replica`."""

    def __init__(self, replica) -> None:
        self.replica = replica

    @property
    def name(self) -> str:
        return self.replica.name

    def ship(self, record: EpochRecord) -> Dict[str, Any]:
        return self.replica.apply(record)

    def status(self) -> Dict[str, Any]:
        return self.replica.status()

    def close(self) -> None:  # symmetric with RemoteLink
        pass


class RemoteLink:
    """Transport to a replica-role serve server over the NDJSON protocol.

    The connection is dialled lazily and redialled after any failure, so
    a partitioned link heals by itself once the replica is reachable.
    """

    def __init__(self, host: str, port: int, *, name: str = "",
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.timeout = timeout
        self._client = None

    def _connect(self):
        if self._client is None:
            from repro.serve.client import ServeClient

            self._client = ServeClient(self.host, self.port,
                                       timeout=self.timeout)
        return self._client

    def ship(self, record: EpochRecord) -> Dict[str, Any]:
        try:
            return self._connect().ship(record.to_dict())
        except Exception:
            self.close()
            raise

    def status(self) -> Dict[str, Any]:
        try:
            return self._connect().status()
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except Exception:
                pass


@dataclass
class _LinkState:
    pending: List[EpochRecord] = field(default_factory=list)
    down: bool = False
    acked_epoch: int = 0
    last_error: Optional[str] = None


class Shipper:
    """Commit-order record streaming from one primary to N links."""

    def __init__(self, warehouse, links: Sequence[Any], *,
                 min_insync: int = 0) -> None:
        if min_insync > len(links):
            raise ReplicationError(
                f"min_insync={min_insync} exceeds replica count {len(links)}"
            )
        self.warehouse = warehouse
        self.links = list(links)
        self.min_insync = min_insync
        self._state: Dict[str, _LinkState] = {
            link.name: _LinkState() for link in self.links
        }
        # Originating commit's trace context per epoch, so a shipment that
        # drains *later* (lag buffering, catch_up) still joins the commit's
        # trace instead of whichever unrelated span is open at drain time.
        self._commit_ctx: Dict[int, Any] = {}
        self._commit_ctx_cap = 512
        self._lock = threading.Lock()
        warehouse.add_commit_listener(self.on_commit)

    # -- the shipping path ---------------------------------------------------

    def on_commit(self, record: EpochRecord) -> None:
        """Ship one committed record to every link (called under the
        primary's write lock, so shipments observe commit order)."""
        from repro.faults import injector
        from repro.obs import runtime

        acked = 0
        with self._lock:
            ctx = runtime.current_context()
            if ctx is not None and ctx.sampled:
                self._commit_ctx[record.epoch] = ctx
                while len(self._commit_ctx) > self._commit_ctx_cap:
                    self._commit_ctx.pop(next(iter(self._commit_ctx)))
            for link in self.links:
                state = self._state[link.name]
                state.pending.append(record)
                kinds = {spec.kind for spec in injector.ship_hook(link.name)}
                if "ship_partition" in kinds:
                    state.down = True
                    state.last_error = "injected ship_partition"
                elif "replica_lag" in kinds:
                    pass  # defer: stays buffered until a later commit drains it
                elif self._drain_locked(link, state):
                    acked += 1
                self._update_gauge(link.name, state)
        if acked < self.min_insync:
            raise ReplicationError(
                f"epoch {record.epoch} replicated to {acked} of "
                f"{len(self.links)} replicas; min_insync={self.min_insync} "
                "not met (write is locally durable)"
            )

    def _drain_locked(self, link, state: _LinkState) -> bool:
        """Ship the link's backlog in order; True when fully drained.

        Any failure marks the link down and keeps the unacked suffix
        buffered; a later commit (or catch_up) retries from there — the
        replica never observes an out-of-order or gapped stream.
        """
        from repro.obs import runtime

        tracer = runtime.get_tracer()
        while state.pending:
            record = state.pending[0]
            span = None
            if tracer.enabled:
                span = tracer.span(
                    "replicate.ship",
                    parent_context=self._commit_ctx.get(record.epoch),
                    replica=link.name, epoch=record.epoch, op=record.op,
                )
            try:
                link.ship(record)
            except Exception as exc:
                state.down = True
                state.last_error = f"{type(exc).__name__}: {exc}"
                if span is not None:
                    span.set(acked=False, error=state.last_error)
                    span.finish()
                return False
            if span is not None:
                span.set(acked=True)
                span.finish()
            state.pending.pop(0)
            state.acked_epoch = record.epoch
            state.down = False
            state.last_error = None
        return True

    def catch_up(self, name: Optional[str] = None) -> Dict[str, bool]:
        """Retry shipping buffered records (all links, or one by name).

        Heals partitions and drains lag without waiting for the next
        commit; returns ``{link_name: fully_caught_up}``.
        """
        out: Dict[str, bool] = {}
        with self._lock:
            for link in self.links:
                if name is not None and link.name != name:
                    continue
                state = self._state[link.name]
                out[link.name] = self._drain_locked(link, state)
                self._update_gauge(link.name, state)
        return out

    # -- inspection ----------------------------------------------------------

    def lag(self, name: str) -> int:
        """How many committed epochs the link's last ack trails the primary."""
        with self._lock:
            state = self._state[name]
            if not state.pending:
                return 0
            return len(state.pending)

    def insync_count(self) -> int:
        """Links whose backlog is empty (fully caught up)."""
        with self._lock:
            return sum(
                1 for s in self._state.values() if not s.pending and not s.down
            )

    def link_status(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                name: {
                    "pending": len(s.pending),
                    "down": s.down,
                    "acked_epoch": s.acked_epoch,
                    "last_error": s.last_error,
                }
                for name, s in self._state.items()
            }

    def _update_gauge(self, name: str, state: _LinkState) -> None:
        from repro.obs import runtime

        runtime.get_registry().gauge(
            "repro_replica_lag_epochs", {"replica": name},
            help="Committed epochs the replica's last ack trails the primary",
        ).set(float(len(state.pending)))

    def close(self) -> None:
        """Detach from the primary and close every link."""
        self.warehouse.remove_commit_listener(self.on_commit)
        for link in self.links:
            link.close()
