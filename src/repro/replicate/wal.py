"""Write-ahead epoch log: durability for every warehouse commit.

Every :class:`~repro.serve.concurrent.ConcurrentWarehouse` mutation appends
one :class:`EpochRecord` — the epoch id it will publish, the *logical*
operation (op name + JSON-safe arguments), and a content digest of the
post-commit state — to the log, fsync'd, **before** the epoch becomes
visible to readers.  Replaying the log over the last durable snapshot
therefore reconstructs every committed epoch; the digest lets recovery and
replicas prove each replayed epoch is bit-identical to what the primary
published.

On-disk layout (one directory per warehouse)::

    <wal_dir>/segment-000000000002.wal     frames; name = first epoch inside
    <wal_dir>/segment-000000000047.wal
    <wal_dir>/checkpoint.json              {"epoch": N} written by save()

Frame format (binary, little-endian)::

    [length: u32] [crc32(payload): u32] [payload: length bytes of JSON]

The framing makes torn writes self-identifying: a crash mid-append leaves
a frame whose length header runs past EOF or whose CRC32 disagrees with
its payload.  :class:`WriteAheadLog` truncates such a tail on open — at
most the *un*committed torn record is lost, never a committed epoch,
because commits only publish after the frame's fsync returned.  A bad
frame *followed by good frames* is not a torn tail but real corruption and
raises :class:`~repro.errors.WalCorruptionError`.

Segments rotate at ``segment_bytes``; ``checkpoint(epoch)`` (called by
``ConcurrentWarehouse.save`` after the dump lands) records the snapshot
epoch and deletes segments every record of which is covered by it.

The ``wal_append`` fault site (kind ``wal_torn_write``) simulates the
crash-mid-append: the log writes *half* a frame, fsyncs, and raises — the
exact bytes a power cut would leave.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReplicationError, WalCorruptionError

__all__ = [
    "EpochRecord",
    "WriteAheadLog",
    "decode_args",
    "decode_view_definition",
    "encode_args",
    "encode_view_definition",
    "state_digest",
]

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"
_CHECKPOINT_FILE = "checkpoint.json"


# ---------------------------------------------------------------------------
# Argument codec: logical-op arguments must survive a JSON round trip
# ---------------------------------------------------------------------------


def encode_args(value: Any) -> Any:
    """Deep-encode op arguments into JSON-safe structures.

    Dates become ``{"$date": iso}`` (the persistence codec's convention);
    tuples become lists; relational type objects degrade to their names.
    """
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, dict):
        return {k: encode_args(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_args(v) for v in value]
    if hasattr(value, "name") and type(value).__module__.startswith("repro."):
        return value.name  # a relational DataType in a column spec
    return value


def decode_args(value: Any) -> Any:
    """Inverse of :func:`encode_args` (type names stay strings — the
    relational layer resolves them on use)."""
    if isinstance(value, dict):
        if "$date" in value and len(value) == 1:
            return datetime.date.fromisoformat(value["$date"])
        return {k: decode_args(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_args(v) for v in value]
    return value


def encode_view_definition(definition) -> Dict[str, Any]:
    """Serialize a SequenceViewDefinition for the replication log (the
    same shape ``DataWarehouse.save`` writes to views.json)."""
    d = definition
    return {
        "name": d.name,
        "base_table": d.base_table,
        "value_col": d.value_col,
        "order_by": list(d.order_by),
        "partition_by": list(d.partition_by),
        "window": {"kind": d.window.kind, "l": d.window.l, "h": d.window.h},
        "aggregate": d.aggregate_name,
        "where": d.where_text,
    }


def decode_view_definition(doc: Dict[str, Any]):
    """Rebuild a SequenceViewDefinition from its logged form."""
    from repro.core.window import WindowSpec
    from repro.sql.parser import parse_expression
    from repro.views.definition import SequenceViewDefinition

    w = doc["window"]
    window = (
        WindowSpec.cumulative()
        if w["kind"] == "cumulative"
        else WindowSpec.sliding(w["l"], w["h"], allow_point=True)
    )
    return SequenceViewDefinition(
        name=doc["name"],
        base_table=doc["base_table"],
        value_col=doc["value_col"],
        order_by=tuple(doc["order_by"]),
        partition_by=tuple(doc["partition_by"]),
        window=window,
        aggregate_name=doc["aggregate"],
        where=parse_expression(doc["where"]) if doc["where"] else None,
    )


# ---------------------------------------------------------------------------
# Content digest: the bit-identity contract between primary and replica
# ---------------------------------------------------------------------------


def state_digest(warehouse) -> str:
    """SHA-256 over every table's schema and rows, in catalog-name order.

    Covers base tables *and* view storage tables (the in-memory reporting
    mirrors are derived from storage, so hashing storage suffices).  Two
    warehouses with equal digests return bit-identical answers for every
    query, which is the replication acceptance bar.  Quarantine flags and
    epoch counters are deliberately excluded — they are advisory routing
    state, not data.
    """
    h = hashlib.sha256()
    for table in sorted(warehouse.db.catalog.tables(), key=lambda t: t.name):
        h.update(table.name.encode("utf-8"))
        h.update(b"\x00")
        for column in table.schema:
            h.update(f"{column.name}:{column.type.name};".encode("utf-8"))
        h.update(b"\x01")
        for row in table.rows:
            h.update(
                json.dumps(encode_args(list(row)), separators=(",", ":"))
                .encode("utf-8")
            )
            h.update(b"\x02")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EpochRecord:
    """One logged commit: what op produced which epoch, and its digest."""

    epoch: int
    op: str
    args: Dict[str, Any] = field(default_factory=dict)
    digest: str = ""

    def to_payload(self) -> bytes:
        doc = {"epoch": self.epoch, "op": self.op, "args": self.args,
               "digest": self.digest}
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "EpochRecord":
        doc = json.loads(payload.decode("utf-8"))
        return cls(epoch=int(doc["epoch"]), op=str(doc["op"]),
                   args=dict(doc.get("args", {})),
                   digest=str(doc.get("digest", "")))

    def to_dict(self) -> Dict[str, Any]:
        """Wire form for the NDJSON ``ship`` op."""
        return {"epoch": self.epoch, "op": self.op, "args": self.args,
                "digest": self.digest}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "EpochRecord":
        try:
            return cls(epoch=int(doc["epoch"]), op=str(doc["op"]),
                       args=dict(doc.get("args", {})),
                       digest=str(doc.get("digest", "")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(f"malformed epoch record: {exc}") from None


def _frame(record: EpochRecord) -> bytes:
    payload = record.to_payload()
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_frames(data: bytes) -> Tuple[List[EpochRecord], int, str]:
    """Parse frames; return (records, good_bytes, tail_problem).

    ``good_bytes`` is the offset of the first bad/incomplete frame (== len
    when the buffer is fully intact); ``tail_problem`` describes what ended
    the scan ('' when intact).
    """
    records: List[EpochRecord] = []
    offset = 0
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            return records, offset, "incomplete frame header"
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        if start + length > len(data):
            return records, offset, "frame payload runs past EOF"
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return records, offset, "frame CRC32 mismatch"
        try:
            records.append(EpochRecord.from_payload(payload))
        except (ValueError, KeyError, json.JSONDecodeError):
            return records, offset, "frame payload is not a record"
        offset = start + length
    return records, offset, ""


class WriteAheadLog:
    """CRC32-framed, fsync'd, segment-rotated epoch log.

    Args:
        directory: the log's home (created if missing).
        segment_bytes: rotate to a new segment once the active one exceeds
            this size (checked after each append).
        fsync: flush to stable storage on every append.  Leave on for
            durability; tests may disable it for speed.

    Opening an existing log validates every segment in order.  A bad frame
    at the very tail of the *last* segment is a torn write: it is truncated
    (``truncated_bytes`` reports how much) and the log is usable.  A bad
    frame anywhere else raises :class:`WalCorruptionError`.
    """

    def __init__(self, directory: str, *, segment_bytes: int = 1 << 20,
                 fsync: bool = True) -> None:
        if segment_bytes < 64:
            raise ReplicationError(
                f"segment_bytes must be >= 64, got {segment_bytes}"
            )
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.truncated_bytes = 0
        self.last_epoch = 0
        self._handle = None  # lazily opened append handle on the active segment
        self._active: Optional[str] = None
        os.makedirs(directory, exist_ok=True)
        self._open_and_repair()

    # -- open / repair -------------------------------------------------------

    def _segments(self) -> List[str]:
        names = [
            n for n in os.listdir(self.directory)
            if n.startswith(_SEGMENT_PREFIX) and n.endswith(_SEGMENT_SUFFIX)
        ]
        return sorted(names)

    def _open_and_repair(self) -> None:
        segments = self._segments()
        for i, name in enumerate(segments):
            path = os.path.join(self.directory, name)
            with open(path, "rb") as fh:
                data = fh.read()
            records, good, problem = _scan_frames(data)
            if problem:
                if i != len(segments) - 1:
                    raise WalCorruptionError(
                        f"segment {name!r} is corrupt mid-log ({problem}); "
                        "only the final segment's tail may be torn"
                    )
                torn = len(data) - good
                with open(path, "r+b") as fh:
                    fh.truncate(good)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                self.truncated_bytes += torn
            for record in records:
                if record.epoch <= self.last_epoch:
                    raise WalCorruptionError(
                        f"segment {name!r}: epoch {record.epoch} does not "
                        f"advance past {self.last_epoch}"
                    )
                self.last_epoch = record.epoch
        self._active = segments[-1] if segments else None

    # -- appending -----------------------------------------------------------

    def append(self, record: EpochRecord) -> None:
        """Frame, write, and fsync one record (then maybe rotate).

        Raises:
            ReplicationError: non-monotonic epoch.
            InjectedFault: a ``wal_torn_write`` fault fired — half the frame
                is on disk (exactly a crash mid-write) and the caller must
                treat the warehouse as dead until recovery replays the log.
        """
        from repro.errors import InjectedFault
        from repro.faults import injector

        if record.epoch <= self.last_epoch:
            raise ReplicationError(
                f"WAL append out of order: epoch {record.epoch} after "
                f"{self.last_epoch}"
            )
        frame = _frame(record)
        handle = self._handle_for(record.epoch)
        if injector.wal_torn_hook(record.op):
            handle.write(frame[: max(1, len(frame) // 2)])
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            raise InjectedFault(
                f"injected wal_torn_write during epoch {record.epoch} "
                f"({record.op}); recover from the log"
            )
        handle.write(frame)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.last_epoch = record.epoch
        self._count_metric("repro_wal_records_total")
        if handle.tell() >= self.segment_bytes:
            self._close_handle()
            self._active = None  # next append opens a fresh segment

    def _handle_for(self, epoch: int):
        if self._handle is None:
            if self._active is None:
                self._active = (
                    f"{_SEGMENT_PREFIX}{epoch:012d}{_SEGMENT_SUFFIX}"
                )
            path = os.path.join(self.directory, self._active)
            self._handle = open(path, "ab")
        return self._handle

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def _count_metric(name: str) -> None:
        from repro.obs import runtime

        runtime.get_registry().counter(
            name, help="Records appended to the write-ahead epoch log"
        ).inc()

    # -- reading -------------------------------------------------------------

    def records(self, since: int = 0) -> Iterator[EpochRecord]:
        """Yield records with ``epoch > since``, oldest first."""
        self._flush()
        for name in self._segments():
            path = os.path.join(self.directory, name)
            with open(path, "rb") as fh:
                data = fh.read()
            segment_records, _, problem = _scan_frames(data)
            if problem and name != self._segments()[-1]:
                raise WalCorruptionError(
                    f"segment {name!r} is corrupt mid-log ({problem})"
                )
            for record in segment_records:
                if record.epoch > since:
                    yield record

    def _flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self, epoch: int) -> int:
        """Record that a durable snapshot covers everything up to ``epoch``
        and delete fully-covered segments; returns how many were deleted.

        A segment is deletable when every record in it has ``epoch <=``
        the checkpoint — i.e. the *next* segment starts at or below
        ``epoch + 1``.  The active (last) segment is always kept so the
        append handle stays valid.
        """
        tmp = os.path.join(self.directory, _CHECKPOINT_FILE + ".tmp")
        final = os.path.join(self.directory, _CHECKPOINT_FILE)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"epoch": int(epoch)}, fh)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, final)
        segments = self._segments()
        removed = 0
        for i, name in enumerate(segments[:-1]):
            next_first = int(
                segments[i + 1][len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            )
            if next_first <= epoch + 1:
                os.remove(os.path.join(self.directory, name))
                removed += 1
            else:
                break
        return removed

    def checkpoint_epoch(self) -> int:
        """The epoch of the last durable snapshot (0 = replay everything)."""
        path = os.path.join(self.directory, _CHECKPOINT_FILE)
        if not os.path.exists(path):
            return 0
        with open(path, encoding="utf-8") as fh:
            return int(json.load(fh).get("epoch", 0))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({self.directory!r}, last_epoch={self.last_epoch}, "
            f"segments={len(self._segments())})"
        )
