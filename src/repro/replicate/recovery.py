"""Crash recovery: replay the write-ahead epoch log over the last snapshot.

``recover(directory)`` rebuilds a serving warehouse after a crash:

1. open the WAL at ``<directory>/wal`` — this itself repairs a torn tail
   (truncating at most the record whose fsync never completed, never a
   committed epoch);
2. load the last durable snapshot (``save()`` wrote it together with a
   WAL checkpoint; with no checkpoint the log is replayed from scratch
   against an empty warehouse);
3. re-execute every logged epoch after the checkpoint through
   :meth:`ConcurrentWarehouse.apply_record` — each replayed epoch's
   content digest is checked against what the primary recorded at commit
   time, so silent replay divergence cannot slip through;
4. re-verify every materialized view against its definition with the
   existing :mod:`repro.views.verify` machinery;
5. attach the log so new writes continue appending where the old primary
   stopped.

The result is bit-identical to the pre-crash warehouse for every query:
the acceptance tests compare answers against a never-faulted run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.replicate.wal import WriteAheadLog
from repro.serve.concurrent import ConcurrentWarehouse
from repro.warehouse.warehouse import DataWarehouse

__all__ = ["RecoveryReport", "recover", "wal_path"]


def wal_path(directory: str) -> str:
    """The conventional WAL location for a warehouse homed at ``directory``."""
    return os.path.join(directory, "wal")


@dataclass
class RecoveryReport:
    """What recovery found and rebuilt."""

    directory: str
    base_epoch: int                 # snapshot epoch replay started from (0 = none)
    replayed: List[int] = field(default_factory=list)
    truncated_bytes: int = 0        # torn tail removed from the log
    last_epoch: int = 0             # epoch the recovered warehouse serves
    verified: Dict[str, Any] = field(default_factory=dict)
    clean: bool = True              # every view re-verified consistent
    warehouse: Optional[ConcurrentWarehouse] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "base_epoch": self.base_epoch,
            "replayed": list(self.replayed),
            "truncated_bytes": self.truncated_bytes,
            "last_epoch": self.last_epoch,
            "verified": {k: bool(v) for k, v in self.verified.items()},
            "clean": self.clean,
        }


def recover(directory: str, *, execution=None, verify: bool = True,
            fsync: bool = True) -> RecoveryReport:
    """Rebuild a :class:`ConcurrentWarehouse` from ``directory`` + its WAL.

    Args:
        directory: warehouse home; the log lives at ``<directory>/wal``.
        execution: ExecutionConfig for the recovered warehouse's writes.
        verify: re-check every view against its definition after replay.
        fsync: durability mode for the re-attached log.

    Returns:
        A :class:`RecoveryReport` whose ``warehouse`` is live, WAL-attached
        and ready to serve.

    Raises:
        WalCorruptionError: corruption *before* the log's tail — the log
            cannot be trusted and recovery refuses to guess.
        DivergenceError: a replayed epoch's content digest disagrees with
            what the primary recorded when it committed.
    """
    from repro.obs import runtime

    with runtime.get_tracer().span("replicate.recover", directory=directory):
        wal = WriteAheadLog(wal_path(directory), fsync=fsync)
        base_epoch = wal.checkpoint_epoch()
        has_snapshot = os.path.exists(os.path.join(directory, "catalog.json"))
        if base_epoch > 0 and has_snapshot:
            # Rehydrate views from their dumped storage bits: the WAL's
            # digests describe the primary's live (incrementally
            # maintained) state, which a fresh recompute would miss by an
            # ulp.
            inner = DataWarehouse.load(directory, rehydrate=True)
            inner.execution = execution
            cw = ConcurrentWarehouse(inner, initial_epoch=base_epoch)
        else:
            # No checkpointed snapshot: the log is the full history.
            base_epoch = 0
            cw = ConcurrentWarehouse(execution=execution)
        report = RecoveryReport(
            directory=directory, base_epoch=base_epoch,
            truncated_bytes=wal.truncated_bytes,
        )
        for record in wal.records(since=cw.epochs.latest_epoch):
            cw.apply_record(record)
            report.replayed.append(record.epoch)
        cw.attach_wal(wal)
        report.last_epoch = cw.epochs.latest_epoch
        report.warehouse = cw
        if verify:
            reports = cw.verify(quarantine=False)
            report.verified = {
                name: not r.discrepancies for name, r in reports.items()
            }
            report.clean = all(report.verified.values())
        runtime.event(
            "recover.done", base_epoch=report.base_epoch,
            replayed=len(report.replayed),
            truncated_bytes=report.truncated_bytes, clean=report.clean,
        )
        return report
