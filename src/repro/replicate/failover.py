"""Automatic failover: health probes, freshest-replica promotion, redirect.

Three cooperating pieces sit on top of the serving tier:

* :class:`Endpoint` — a named ``host:port`` of one serve server (primary
  or replica role).
* :class:`FailoverCoordinator` — probes endpoints with the ``status`` op,
  tracks which one currently holds the primary role, and — when the
  primary stops answering — promotes the *freshest* healthy replica (the
  one with the highest applied epoch; diverged replicas are never
  eligible).  Promotion is idempotent, so rerunning the decision against
  an already-promoted replica is safe.
* :class:`ReplicatedClient` — a client that survives the primary dying
  mid-workload.  Writes go to the coordinator's current primary and are
  retried through re-election on :class:`ServeConnectionError` /
  :class:`NotPrimaryError`.  Reads prefer the primary but degrade to any
  healthy replica — such answers carry ``stale=True`` (last replicated
  epoch), keeping read availability through the outage window.

This is deliberately a *coordinator*, not a consensus protocol: the
reproduction's serving tier has a single writer by design (serialized
writers over one warehouse), so failover only needs failure detection +
a deterministic choice of successor, not quorum agreement.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ReplicationError, ServeConnectionError
from repro.serve.client import ServeClient

__all__ = ["Endpoint", "FailoverCoordinator", "ReplicatedClient"]


@dataclass(frozen=True)
class Endpoint:
    """Address of one serve server participating in the replica set."""

    name: str
    host: str
    port: int


class FailoverCoordinator:
    """Failure detection + freshest-replica promotion over endpoints.

    Args:
        endpoints: the replica set; the first entry is the initial primary.
        timeout: per-probe connection/request timeout in seconds.
    """

    def __init__(self, endpoints: List[Endpoint], *,
                 timeout: float = 5.0) -> None:
        if not endpoints:
            raise ReplicationError("a replica set needs at least one endpoint")
        self.endpoints = list(endpoints)
        self.timeout = timeout
        self._primary = endpoints[0].name
        self._lock = threading.Lock()

    # -- probing -------------------------------------------------------------

    def probe(self, endpoint: Endpoint) -> Optional[Dict[str, Any]]:
        """One ``status`` round trip; None when the endpoint is dead."""
        try:
            with ServeClient(endpoint.host, endpoint.port,
                             timeout=self.timeout) as client:
                return client.status()
        except (ServeConnectionError, OSError):
            return None

    def survey(self) -> Dict[str, Optional[Dict[str, Any]]]:
        """Probe every endpoint; ``{name: status-or-None}``."""
        return {ep.name: self.probe(ep) for ep in self.endpoints}

    # -- election ------------------------------------------------------------

    @property
    def primary_name(self) -> str:
        with self._lock:
            return self._primary

    def primary(self) -> Endpoint:
        name = self.primary_name
        for ep in self.endpoints:
            if ep.name == name:
                return ep
        raise ReplicationError(f"primary {name!r} is not in the replica set")

    def ensure_primary(self) -> Endpoint:
        """Return a live primary, promoting a successor if needed.

        The current primary is probed first; while it answers, nothing
        changes.  Otherwise the healthiest candidate — alive, not
        diverged, highest applied epoch (endpoint order breaks ties) — is
        promoted and recorded.

        Raises:
            ReplicationError: no endpoint is both alive and promotable.
        """
        current = self.primary()
        status = self.probe(current)
        if status is not None and not status.get("diverged"):
            if not status.get("primary"):
                self._promote(current)
            return current
        best: Optional[Endpoint] = None
        best_epoch = -1
        for ep in self.endpoints:
            if ep.name == current.name:
                continue
            st = self.probe(ep)
            if st is None or st.get("diverged"):
                continue
            applied = int(st.get("applied", 0))
            if applied > best_epoch:
                best, best_epoch = ep, applied
        if best is None:
            raise ReplicationError(
                "failover impossible: no live, non-diverged replica to promote"
            )
        self._promote(best)
        with self._lock:
            self._primary = best.name
        from repro.obs import runtime

        runtime.event("failover.promoted", replica=best.name,
                      epoch=best_epoch, previous=current.name)
        runtime.get_registry().counter(
            "repro_failovers_total", help="Primary promotions performed"
        ).inc()
        return best

    def _promote(self, endpoint: Endpoint) -> None:
        from repro.obs import runtime

        tracer = runtime.get_tracer()
        if not tracer.enabled:
            return self._promote_inner(endpoint)
        # The promote RPC roots (or joins) a trace: the client.request span
        # inside ServeClient and the replica-side replica.promote span both
        # hang off this one, so /trace/<id> shows the whole election.
        with tracer.span("failover.promote", replica=endpoint.name):
            return self._promote_inner(endpoint)

    def _promote_inner(self, endpoint: Endpoint) -> None:
        with ServeClient(endpoint.host, endpoint.port,
                         timeout=self.timeout) as client:
            client.promote()


class ReplicatedClient:
    """Retry/redirect client over a coordinator-managed replica set.

    One cached connection per endpoint, invalidated on any transport
    error.  Not thread-safe (same contract as :class:`ServeClient`); open
    one per worker.
    """

    def __init__(self, coordinator: FailoverCoordinator, *,
                 timeout: float = 10.0, max_attempts: int = 4) -> None:
        self.coordinator = coordinator
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._clients: Dict[str, ServeClient] = {}

    # -- connection cache ----------------------------------------------------

    def _client(self, endpoint: Endpoint) -> ServeClient:
        client = self._clients.get(endpoint.name)
        if client is None:
            client = ServeClient(endpoint.host, endpoint.port,
                                 timeout=self.timeout)
            self._clients[endpoint.name] = client
        return client

    def _invalidate(self, endpoint: Endpoint) -> None:
        client = self._clients.pop(endpoint.name, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # -- calls ---------------------------------------------------------------

    def write(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one write op to the live primary, failing over as needed."""
        from repro.errors import NotPrimaryError

        last: Optional[Exception] = None
        for _ in range(self.max_attempts):
            try:
                endpoint = self.coordinator.ensure_primary()
            except ReplicationError as exc:
                last = exc
                continue
            try:
                return self._client(endpoint).call(op, **fields)
            except ServeConnectionError as exc:
                last = exc
                self._invalidate(endpoint)
            except NotPrimaryError as exc:
                # Stale routing: this endpoint lost (or never had) the
                # role; re-probe and retry against the real primary.
                last = exc
        raise ReplicationError(
            f"write {op!r} failed after {self.max_attempts} attempts: {last}"
        )

    def query(self, sql: str, **fields: Any) -> Dict[str, Any]:
        """Run a read, degrading to stale replica answers if the primary
        is unreachable (the response's ``stale`` flag says which)."""
        order = [self.coordinator.primary()] + [
            ep for ep in self.coordinator.endpoints
            if ep.name != self.coordinator.primary_name
        ]
        last: Optional[Exception] = None
        for endpoint in order:
            try:
                response = self._client(endpoint).query(sql, **fields)
                response.setdefault("stale", False)
                response["served_by"] = endpoint.name
                return response
            except ServeConnectionError as exc:
                last = exc
                self._invalidate(endpoint)
        raise ReplicationError(
            f"no endpoint could answer the read: {last}"
        )

    def close(self) -> None:
        for name in list(self._clients):
            client = self._clients.pop(name)
            try:
                client.close()
            except Exception:
                pass

    def __enter__(self) -> "ReplicatedClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
